//! An HTTP/1.1 server over TCP, with two interchangeable transports.
//!
//! The default **reactor** transport (Linux) multiplexes every
//! connection over an epoll event loop — see [`crate::reactor`] — so
//! tens of thousands of idle keep-alive connections cost file
//! descriptors, not threads. The original **threaded** transport
//! (blocking accept, one pool task per connection) is kept both as the
//! portable fallback and as a differential-testing baseline: the two
//! share the `Handler` trait, the codec, the connection-cap shedding
//! semantics, and the stats surface, so every suite can run against
//! either via [`ServerTransport`] or `SOC_HTTP_TRANSPORT`.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use soc_parallel::ThreadPool;

use crate::codec::{self, DEFAULT_BODY_LIMIT};
use crate::types::{HttpResult, Request, Response, Status};

/// A request handler: the single interface every service binding
/// (REST router, SOAP endpoint, web app) implements.
pub trait Handler: Send + Sync + 'static {
    /// Turn a request into a response. Must not panic; panics are caught
    /// and converted to 500s by the server.
    fn handle(&self, req: Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: Request) -> Response {
        self(req)
    }
}

/// Server statistics (exposed so availability experiments can watch a
/// provider's load, per the paper's complaints about overloaded free
/// services).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests fully served.
    pub served: AtomicU64,
    /// Requests that produced a 5xx (including handler panics).
    pub failed: AtomicU64,
    /// Connections shed at the capacity cap (503 + `Retry-After`).
    pub shed: AtomicU64,
}

/// Which I/O engine a server runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerTransport {
    /// Readiness-driven epoll event loop (Linux). Handlers still run on
    /// the worker pool; the reactor owns only I/O. Falls back to
    /// `Threaded` on platforms without the reactor.
    Reactor,
    /// One blocking pool task per connection.
    Threaded,
}

impl ServerTransport {
    /// The default transport: `Reactor` on Linux, `Threaded` elsewhere;
    /// overridable with `SOC_HTTP_TRANSPORT=reactor|threaded` so whole
    /// test suites can be replayed against either engine.
    pub fn default_for_platform() -> ServerTransport {
        match std::env::var("SOC_HTTP_TRANSPORT").as_deref() {
            Ok("threaded") => ServerTransport::Threaded,
            Ok("reactor") => ServerTransport::Reactor,
            _ if cfg!(target_os = "linux") => ServerTransport::Reactor,
            _ => ServerTransport::Threaded,
        }
    }
}

/// Tunables for [`HttpServer::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pool threads serving connections (running handlers, on either
    /// transport).
    pub workers: usize,
    /// Concurrent-connection cap: further connections are shed with a
    /// 503 + `Retry-After` instead of queueing unboundedly.
    pub max_connections: usize,
    /// I/O engine; see [`ServerTransport::default_for_platform`].
    pub transport: ServerTransport,
    /// How long a read or write may stall mid-message before the
    /// connection is dropped.
    pub io_timeout: Duration,
    /// How long an idle keep-alive connection is retained between
    /// requests. The reactor honors this in full (an idle connection
    /// costs only a file descriptor); the threaded transport caps the
    /// idle wait at a short grace period, because there every open
    /// connection pins a worker thread and parked keep-alive
    /// connections would starve new ones.
    pub keep_alive_timeout: Duration,
    /// Maximum accepted request-body size.
    pub body_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_connections: 1024,
            transport: ServerTransport::default_for_platform(),
            io_timeout: Duration::from_secs(30),
            keep_alive_timeout: Duration::from_secs(30),
            body_limit: DEFAULT_BODY_LIMIT,
        }
    }
}

/// Decrements the live-connection count when a connection finishes.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// A running HTTP server; dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Present when the reactor transport runs: waking its poller is
    /// how `shutdown` interrupts the event loop.
    #[cfg(target_os = "linux")]
    waker: Option<Arc<crate::poller::Waker>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `handler` on `workers` pool threads with the default
    /// connection cap.
    pub fn bind(addr: &str, workers: usize, handler: impl Handler) -> HttpResult<HttpServer> {
        HttpServer::bind_with(addr, ServerConfig { workers, ..ServerConfig::default() }, handler)
    }

    /// Bind `addr` with explicit [`ServerConfig`] tunables.
    pub fn bind_with(
        addr: &str,
        config: ServerConfig,
        handler: impl Handler,
    ) -> HttpResult<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let handler: Arc<dyn Handler> = Arc::new(handler);

        #[cfg(target_os = "linux")]
        if config.transport == ServerTransport::Reactor {
            let reactor_cfg = crate::reactor::ReactorConfig {
                workers: config.workers.max(1),
                max_connections: config.max_connections.max(1),
                io_timeout: config.io_timeout,
                keep_alive_timeout: config.keep_alive_timeout,
                body_limit: config.body_limit,
            };
            let (thread, waker) =
                crate::reactor::spawn(listener, reactor_cfg, handler, stats.clone(), stop.clone())?;
            return Ok(HttpServer {
                addr: local,
                stop,
                stats,
                accept_thread: Some(thread),
                waker: Some(waker),
            });
        }

        let pool = ThreadPool::new(config.workers.max(1));
        let max_connections = config.max_connections.max(1);
        let io_timeout = config.io_timeout;
        let keep_alive_timeout = config.keep_alive_timeout;
        let body_limit = config.body_limit;

        let stop2 = stop.clone();
        let stats2 = stats.clone();
        let accept_thread = std::thread::Builder::new()
            .name("soc-http-accept".into())
            .spawn(move || {
                // The pool lives inside the accept thread so dropping the
                // server joins everything deterministically.
                listener.set_ttl(64).ok();
                let live = Arc::new(AtomicUsize::new(0));
                let shed_counter =
                    soc_observe::metrics().counter("soc_http_connections_shed_total", &[]);
                // Blocking accept: zero idle wakeups. `shutdown` stores
                // the stop flag and then opens a throwaway connection to
                // this listener, which unblocks `accept` so the flag is
                // observed immediately.
                while let Ok((stream, _peer)) = listener.accept() {
                    if stop2.load(Ordering::Acquire) {
                        // `stream` is the wake-up connection (or a
                        // client that raced shutdown); drop it.
                        break;
                    }
                    // Backpressure: shed on the accept thread itself
                    // rather than queueing unboundedly in the pool, so
                    // an overloaded server answers "come back later"
                    // instead of going silent.
                    if live.load(Ordering::Acquire) >= max_connections {
                        stats2.shed.fetch_add(1, Ordering::Relaxed);
                        shed_counter.inc();
                        shed_connection(stream);
                        continue;
                    }
                    live.fetch_add(1, Ordering::AcqRel);
                    let guard = ConnGuard(live.clone());
                    let handler = handler.clone();
                    let stats = stats2.clone();
                    pool.spawn_detached(move || {
                        let _live = guard;
                        serve_connection(
                            stream,
                            handler,
                            stats,
                            io_timeout,
                            keep_alive_timeout,
                            body_limit,
                        );
                    });
                }
            })
            .map_err(|e| crate::types::HttpError::Io(e.to_string()))?;

        Ok(HttpServer {
            addr: local,
            stop,
            stats,
            accept_thread: Some(accept_thread),
            #[cfg(target_os = "linux")]
            waker: None,
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL of the server.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.stats.served.load(Ordering::Relaxed)
    }

    /// Requests that ended in a 5xx so far.
    pub fn failed(&self) -> u64 {
        self.stats.failed.load(Ordering::Relaxed)
    }

    /// Connections shed at the capacity cap so far.
    pub fn shed(&self) -> u64 {
        self.stats.shed.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        #[cfg(target_os = "linux")]
        if let Some(waker) = &self.waker {
            // Reactor transport: one eventfd write unblocks the loop.
            waker.wake();
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
            return;
        }
        if let Some(t) = self.accept_thread.take() {
            // Wake the blocking `accept` with a throwaway connection; if
            // the accept thread already exited the connect just fails.
            let ip = self.addr.ip();
            let wake_ip = if ip.is_unspecified() {
                match ip {
                    std::net::IpAddr::V4(_) => {
                        std::net::IpAddr::from(std::net::Ipv4Addr::LOCALHOST)
                    }
                    std::net::IpAddr::V6(_) => {
                        std::net::IpAddr::from(std::net::Ipv6Addr::LOCALHOST)
                    }
                }
            } else {
                ip
            };
            let wake = SocketAddr::new(wake_ip, self.addr.port());
            let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(250));
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Refuse one connection politely: a quick 503 + `Retry-After` written
/// from the accept path (bounded by a short write timeout so a
/// slow-reading peer cannot stall accepting). Shared by both
/// transports.
pub(crate) fn shed_connection(mut stream: TcpStream) {
    stream.set_write_timeout(Some(Duration::from_millis(250))).ok();
    stream.set_nodelay(true).ok();
    let resp = Response::error(Status::SERVICE_UNAVAILABLE, "server at connection capacity")
        .with_header("Retry-After", "1")
        .with_header("Connection", "close");
    let _ = codec::write_response(&mut stream, &resp);
}

/// The longest the threaded transport lets a keep-alive connection sit
/// idle between requests. Every open connection pins one worker thread
/// here, so honoring a 30 s idle window would let a handful of parked
/// pooled-client connections starve the whole worker pool — the exact
/// failure mode the reactor transport exists to eliminate.
const THREADED_IDLE_GRACE: Duration = Duration::from_millis(250);

fn serve_connection(
    stream: TcpStream,
    handler: Arc<dyn Handler>,
    stats: Arc<ServerStats>,
    io_timeout: Duration,
    keep_alive_timeout: Duration,
    body_limit: usize,
) {
    stream.set_read_timeout(Some(io_timeout)).ok();
    stream.set_write_timeout(Some(io_timeout)).ok();
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Keep-alive loop: serve requests until the peer closes, asks to
    // close, idles past the grace window, or errors.
    let mut first = true;
    loop {
        if !first {
            // Wait for the first byte of the next request under the
            // (capped) idle window, then restore the mid-message
            // timeout once bytes are flowing. `fill_buf` returns
            // already-buffered pipelined bytes without touching the
            // socket.
            let idle = keep_alive_timeout.min(THREADED_IDLE_GRACE);
            reader.get_ref().set_read_timeout(Some(idle)).ok();
            match std::io::BufRead::fill_buf(&mut reader) {
                Ok([]) => return,
                Ok(_) => {}
                // Idle timeout: a silent close, same as the reactor's
                // keep-alive sweep.
                Err(_) => return,
            }
            reader.get_ref().set_read_timeout(Some(io_timeout)).ok();
        }
        first = false;
        let (req, version) = match codec::read_request_versioned(&mut reader, body_limit) {
            Ok(pair) => pair,
            Err(crate::types::HttpError::UnexpectedEof) => return,
            Err(e) => {
                let resp = Response::error(Status::BAD_REQUEST, &e.to_string())
                    .with_header("Connection", "close");
                let _ = codec::write_response(&mut writer, &resp);
                return;
            }
        };
        // HTTP/1.1 defaults to keep-alive (closed by a `close` token in
        // the Connection list); HTTP/1.0 defaults to close (kept open
        // only by an explicit `keep-alive`). Token-list parsing matters:
        // `Connection: close, TE` is legal and means close.
        let close = codec::wants_close(version, &req.headers);

        // Serve inside a server span: the remote parent (if any) comes
        // from the request's `traceparent` header.
        let mut resp =
            crate::observe::serve_with_span(
                req,
                "http.server",
                |req| match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handler.handle(req)
                })) {
                    Ok(resp) => resp,
                    Err(_) => Response::error(Status::INTERNAL_SERVER_ERROR, "handler panicked"),
                },
            );
        if resp.status.0 >= 500 {
            stats.failed.fetch_add(1, Ordering::Relaxed);
        }
        stats.served.fetch_add(1, Ordering::Relaxed);
        // The handler may also demand teardown; either way the decision
        // goes on the wire so pooled clients don't reuse a dying
        // connection.
        let close = close || resp.headers.has_token("Connection", "close");
        if close && !resp.headers.has_token("Connection", "close") {
            resp.headers.set("Connection", "close");
        }
        if codec::write_response(&mut writer, &resp).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::types::Method;

    fn echo_server() -> HttpServer {
        HttpServer::bind("127.0.0.1:0", 2, |req: Request| {
            Response::text(format!("{} {}", req.method, req.path()))
                .with_header("X-Echo-Len", &req.body.len().to_string())
        })
        .unwrap()
    }

    #[test]
    fn serves_get_over_tcp() {
        let server = echo_server();
        let client = HttpClient::new();
        let resp = client.send(Request::get(format!("{}/hello", server.url()))).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.text_body().unwrap(), "GET /hello");
        assert_eq!(server.served(), 1);
    }

    #[test]
    fn serves_post_with_body() {
        let server = echo_server();
        let client = HttpClient::new();
        let resp = client
            .send(
                Request::new(Method::Post, format!("{}/data", server.url()))
                    .with_body_bytes(vec![7; 321]),
            )
            .unwrap();
        assert_eq!(resp.headers.get("X-Echo-Len"), Some("321"));
    }

    #[test]
    fn keep_alive_reuses_connection_semantics() {
        // The blocking client opens a fresh connection each call, but the
        // server must survive many sequential requests.
        let server = echo_server();
        let client = HttpClient::new();
        for i in 0..20 {
            let resp = client.send(Request::get(format!("{}/r{i}", server.url()))).unwrap();
            assert!(resp.status.is_success());
        }
        assert_eq!(server.served(), 20);
    }

    #[test]
    fn panicking_handler_becomes_500() {
        let server = HttpServer::bind("127.0.0.1:0", 1, |_req: Request| -> Response {
            panic!("service bug");
        })
        .unwrap();
        let client = HttpClient::new();
        let resp = client.send(Request::get(format!("{}/x", server.url()))).unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        assert_eq!(server.failed(), 1);
        // Server still alive after the panic.
        let resp = client.send(Request::get(format!("{}/y", server.url()))).unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
    }

    #[test]
    fn concurrent_clients() {
        let server = Arc::new(echo_server());
        let mut handles = Vec::new();
        for t in 0..4 {
            let url = server.url();
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new();
                for i in 0..10 {
                    let resp = client.send(Request::get(format!("{url}/t{t}/{i}"))).unwrap();
                    assert!(resp.status.is_success());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.served(), 40);
    }

    #[test]
    fn connection_cap_sheds_with_503_retry_after() {
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            ServerConfig { workers: 2, max_connections: 1, ..ServerConfig::default() },
            |_req: Request| Response::text("ok"),
        )
        .unwrap();
        // First connection occupies the single slot (the worker blocks
        // reading a request that never comes).
        let held = TcpStream::connect(server.addr()).unwrap();
        // The accept loop processes connections in order, so by the
        // time the second is accepted the first has already been
        // counted live: the second must be shed immediately.
        let shed = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(shed);
        let resp = codec::read_response(&mut reader, DEFAULT_BODY_LIMIT).unwrap();
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers.get("Retry-After"), Some("1"));
        assert_eq!(server.shed(), 1);

        // Releasing the held slot lets new connections through again.
        drop(held);
        let client = HttpClient::with_timeout(Duration::from_secs(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match client.send(Request::get(format!("{}/x", server.url()))) {
                Ok(resp) if resp.status.is_success() => break,
                _ if std::time::Instant::now() > deadline => {
                    panic!("server never recovered after shed connection closed")
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let url = server.url();
        server.shutdown();
        let client = HttpClient::with_timeout(Duration::from_millis(200));
        // Either refused or times out — must not succeed.
        assert!(client.send(Request::get(format!("{url}/x"))).is_err());
    }
}
