//! The deterministic-replay contract: a [`StateMachine`] applies
//! logged commands, and [`Durable`] pairs one with a [`Wal`] so the
//! machine reopens to its exact pre-crash state.

use parking_lot::Mutex;

use crate::wal::{Lsn, Wal, WalConfig};
use crate::{StoreError, StoreResult};

/// A component whose every mutation is a logged command.
///
/// `apply` must be **deterministic**: replaying the same commands in
/// the same LSN order from the same snapshot must rebuild the same
/// state. Anything non-deterministic (clocks, randomness, external
/// calls) must be resolved *before* logging, with the result — not the
/// inputs — in the command (see the submission ledger, which logs the
/// decided response rather than re-running the decision).
pub trait StateMachine: Send + 'static {
    /// Apply one command. `lsn` is the command's position in the log —
    /// machines that expose per-key versions use it as the version.
    fn apply(&mut self, lsn: Lsn, command: &[u8]);

    /// Serialize the full state for compaction.
    fn snapshot(&self) -> Vec<u8>;

    /// Rebuild state from a [`StateMachine::snapshot`] payload.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String>;
}

/// A [`StateMachine`] bound to a [`Wal`]: commands are logged before
/// the response is acknowledged, so a crash at any point loses only
/// writes that were never confirmed.
pub struct Durable<M> {
    wal: Wal,
    machine: Mutex<(M, Lsn)>,
}

impl<M: StateMachine> Durable<M> {
    /// Open the log in `dir`, restore the newest snapshot into
    /// `machine`, and replay every record after it.
    pub fn open(dir: impl AsRef<std::path::Path>, cfg: WalConfig, machine: M) -> StoreResult<Self> {
        let (wal, recovery) = Wal::open_with(dir, cfg)?;
        let mut machine = machine;
        let mut applied = 0;
        if let Some((lsn, snap)) = &recovery.snapshot {
            machine.restore(snap).map_err(StoreError::Corrupt)?;
            applied = *lsn;
        }
        for (lsn, payload) in &recovery.records {
            machine.apply(*lsn, payload);
            applied = *lsn;
        }
        Ok(Durable { wal, machine: Mutex::new((machine, applied)) })
    }

    /// Log `command`, apply it, and wait for durability. Returns the
    /// command's LSN — the version a writer can later demand from a
    /// replica read.
    ///
    /// The in-memory effect becomes visible to concurrent readers
    /// before the fsync completes (standard group-commit visibility);
    /// the *caller's acknowledgment* is what waits for durability.
    pub fn execute(&self, command: &[u8]) -> StoreResult<Lsn> {
        let mut m = self.machine.lock();
        let lsn = self.wal.submit(command)?;
        m.0.apply(lsn, command);
        m.1 = lsn;
        drop(m);
        self.wal.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// Apply a record shipped from a primary, asserting it lands at
    /// the same LSN locally — replicas replay the primary's exact
    /// sequence, so local and source LSNs must coincide.
    pub fn execute_shipped(&self, source_lsn: Lsn, command: &[u8]) -> StoreResult<Lsn> {
        let mut m = self.machine.lock();
        if m.1 >= source_lsn {
            // Already applied (idempotent redelivery).
            return Ok(source_lsn);
        }
        if source_lsn != m.1 + 1 {
            return Err(StoreError::Behind { have: m.1, want: source_lsn });
        }
        let lsn = self.wal.submit(command)?;
        if lsn != source_lsn {
            return Err(StoreError::Corrupt(format!(
                "replica log diverged: shipping lsn {source_lsn} but local log is at {lsn}"
            )));
        }
        m.0.apply(lsn, command);
        m.1 = lsn;
        drop(m);
        self.wal.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// Apply a whole shipped batch under one durability wait: every
    /// record is submitted and applied in order (same idempotent-
    /// redelivery and gap checks as [`Durable::execute_shipped`]), then
    /// the log is synced **once** for the batch — so a replica catching
    /// up on N records pays one group commit, not N fsyncs. Returns the
    /// highest applied LSN.
    pub fn execute_shipped_batch(&self, records: &[(Lsn, Vec<u8>)]) -> StoreResult<Lsn> {
        let mut m = self.machine.lock();
        let mut last_submitted = None;
        for (source_lsn, command) in records {
            if m.1 >= *source_lsn {
                // Already applied (idempotent redelivery).
                continue;
            }
            if *source_lsn != m.1 + 1 {
                return Err(StoreError::Behind { have: m.1, want: *source_lsn });
            }
            let lsn = self.wal.submit(command)?;
            if lsn != *source_lsn {
                return Err(StoreError::Corrupt(format!(
                    "replica log diverged: shipping lsn {source_lsn} but local log is at {lsn}"
                )));
            }
            m.0.apply(lsn, command);
            m.1 = lsn;
            last_submitted = Some(lsn);
        }
        let applied = m.1;
        drop(m);
        if let Some(lsn) = last_submitted {
            self.wal.wait_durable(lsn)?;
        }
        Ok(applied)
    }

    /// Conditionally log a command decided *under the machine lock*:
    /// `decide` inspects the current state and either returns the
    /// command to log (plus a value read from the pre-apply state, e.g.
    /// the queue head a `recv` will pop) or `None` to do nothing. The
    /// check, the logging, and the apply are one atomic step, so a
    /// guard like "only if there is space" cannot race another writer.
    pub fn execute_when<R>(
        &self,
        decide: impl FnOnce(&M) -> Option<(Vec<u8>, R)>,
    ) -> StoreResult<Option<(Lsn, R)>> {
        let mut m = self.machine.lock();
        let Some((command, out)) = decide(&m.0) else {
            return Ok(None);
        };
        let lsn = self.wal.submit(&command)?;
        m.0.apply(lsn, &command);
        m.1 = lsn;
        drop(m);
        self.wal.wait_durable(lsn)?;
        Ok(Some((lsn, out)))
    }

    /// Read the machine under the lock.
    pub fn query<R>(&self, f: impl FnOnce(&M) -> R) -> R {
        f(&self.machine.lock().0)
    }

    /// Highest LSN applied to the machine.
    pub fn applied_lsn(&self) -> Lsn {
        self.machine.lock().1
    }

    /// The applied LSN and a state snapshot taken atomically under the
    /// machine lock — the payload a peer bootstraps from, and the
    /// input to anti-entropy checksums (snapshot serialization is
    /// deterministic, so equal bytes at equal LSNs means equal state).
    pub fn snapshot_state(&self) -> (Lsn, Vec<u8>) {
        let m = self.machine.lock();
        (m.1, m.0.snapshot())
    }

    /// Snapshot-then-truncate compaction: serialize the machine and
    /// hand the bytes to [`Wal::snapshot`] while holding the machine
    /// lock, so the snapshot reflects exactly the applied prefix.
    pub fn compact(&self) -> StoreResult<Lsn> {
        let m = self.machine.lock();
        let state = m.0.snapshot();
        self.wal.snapshot(&state)
    }

    /// Install a snapshot taken on another node — the bootstrap path
    /// when this machine is so far behind that the source's log has
    /// been compacted past our watermark. Restores `state` into the
    /// machine and forward-jumps the local log to `lsn` (see
    /// [`Wal::install_snapshot`]). A no-op when we are already at or
    /// past `lsn`.
    pub fn install_snapshot(&self, lsn: Lsn, state: &[u8]) -> StoreResult<()> {
        let mut m = self.machine.lock();
        if m.1 >= lsn {
            return Ok(());
        }
        self.wal.install_snapshot(lsn, state)?;
        m.0.restore(state).map_err(StoreError::Corrupt)?;
        m.1 = lsn;
        Ok(())
    }

    /// The underlying log (for shipping and introspection).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    /// A machine that sums logged integers — trivially deterministic.
    #[derive(Default)]
    struct Summer {
        total: i64,
        applied: u64,
    }

    impl StateMachine for Summer {
        fn apply(&mut self, _lsn: Lsn, command: &[u8]) {
            let n: i64 = std::str::from_utf8(command).unwrap().parse().unwrap();
            self.total += n;
            self.applied += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            format!("{} {}", self.total, self.applied).into_bytes()
        }
        fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
            let s = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
            let (total, applied) = s.split_once(' ').ok_or("bad snapshot")?;
            self.total = total.parse().map_err(|_| "bad total")?;
            self.applied = applied.parse().map_err(|_| "bad applied")?;
            Ok(())
        }
    }

    #[test]
    fn replay_restores_state() {
        let tmp = TempDir::new("durable");
        {
            let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
            d.execute(b"5").unwrap();
            d.execute(b"7").unwrap();
            d.execute(b"-2").unwrap();
            assert_eq!(d.query(|m| m.total), 10);
            assert_eq!(d.applied_lsn(), 3);
        }
        let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
        assert_eq!(d.query(|m| m.total), 10);
        assert_eq!(d.applied_lsn(), 3);
    }

    #[test]
    fn compaction_preserves_state_and_continues() {
        let tmp = TempDir::new("durable-compact");
        {
            let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
            for i in 1..=10 {
                d.execute(format!("{i}").as_bytes()).unwrap();
            }
            assert_eq!(d.compact().unwrap(), 10);
            d.execute(b"100").unwrap();
        }
        let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
        assert_eq!(d.query(|m| m.total), 155);
        // Snapshot restored 10 commands' worth; only one was replayed.
        assert_eq!(d.applied_lsn(), 11);
    }

    #[test]
    fn install_snapshot_bootstraps_a_lagging_machine() {
        let tmp = TempDir::new("durable-install");
        {
            let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
            d.execute(b"1").unwrap();
            // State "95 9" as of a remote lsn 9: total 95 from 9 cmds.
            d.install_snapshot(9, b"95 9").unwrap();
            assert_eq!(d.query(|m| m.total), 95);
            assert_eq!(d.applied_lsn(), 9);
            // Shipped records continue from the installed point.
            d.execute_shipped(10, b"5").unwrap();
            assert_eq!(d.query(|m| m.total), 100);
            // Installing at or below the applied LSN is a no-op.
            d.install_snapshot(10, b"0 0").unwrap();
            assert_eq!(d.query(|m| m.total), 100);
        }
        let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
        assert_eq!(d.query(|m| m.total), 100);
        assert_eq!(d.applied_lsn(), 10);
    }

    #[test]
    fn shipped_records_enforce_contiguity() {
        let tmp = TempDir::new("durable-ship");
        let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
        d.execute_shipped(1, b"5").unwrap();
        // Redelivery is idempotent.
        d.execute_shipped(1, b"5").unwrap();
        assert_eq!(d.query(|m| m.total), 5);
        // A gap is refused with the catch-up hint.
        match d.execute_shipped(3, b"9") {
            Err(StoreError::Behind { have: 1, want: 3 }) => {}
            other => panic!("expected Behind, got {other:?}"),
        }
        d.execute_shipped(2, b"7").unwrap();
        assert_eq!(d.query(|m| m.total), 12);
    }

    #[test]
    fn shipped_batches_apply_under_one_commit() {
        let tmp = TempDir::new("durable-ship-batch");
        let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
        d.execute_shipped(1, b"5").unwrap();
        // Overlapping redelivery is skipped; the fresh tail applies.
        let batch: Vec<(Lsn, Vec<u8>)> =
            vec![(1, b"5".to_vec()), (2, b"7".to_vec()), (3, b"9".to_vec())];
        assert_eq!(d.execute_shipped_batch(&batch).unwrap(), 3);
        assert_eq!(d.query(|m| m.total), 21);
        assert_eq!(d.applied_lsn(), 3);
        // A gap inside a batch is refused with the catch-up hint.
        let gapped: Vec<(Lsn, Vec<u8>)> = vec![(5, b"1".to_vec())];
        match d.execute_shipped_batch(&gapped) {
            Err(StoreError::Behind { have: 3, want: 5 }) => {}
            other => panic!("expected Behind, got {other:?}"),
        }
        // An empty batch is a no-op.
        assert_eq!(d.execute_shipped_batch(&[]).unwrap(), 3);

        // The batch survives a reopen like any logged records.
        drop(d);
        let d = Durable::open(tmp.path(), WalConfig::default(), Summer::default()).unwrap();
        assert_eq!(d.query(|m| m.total), 21);
        assert_eq!(d.applied_lsn(), 3);
    }
}
