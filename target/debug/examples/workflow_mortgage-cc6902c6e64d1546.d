/root/repo/target/debug/examples/workflow_mortgage-cc6902c6e64d1546.d: examples/workflow_mortgage.rs

/root/repo/target/debug/examples/workflow_mortgage-cc6902c6e64d1546: examples/workflow_mortgage.rs

examples/workflow_mortgage.rs:
