//! Deployment-over-TCP integration tests: the same services that run on
//! the in-memory network are hosted on real sockets with `HttpServer`
//! and consumed with `HttpClient`/`UniClient` — the platform
//! independence SOA promises ("application deployment into a Web
//! server is emphasized").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use soc::gateway::{Gateway, GatewayConfig, HedgeConfig, OutlierConfig};
use soc::http::mem::{MemNetwork, Transport, UniClient};
use soc::http::{HttpClient, HttpServer, Request, Response};
use soc::json::{json, Value};
use soc::rest::RestClient;
use soc::soap::client::SoapClient;

#[test]
fn rest_services_over_real_sockets() {
    let server =
        HttpServer::bind("127.0.0.1:0", 2, soc::services::bindings::ServiceHost::new(77)).unwrap();
    let rest = RestClient::new(Arc::new(HttpClient::new()));
    let base = server.url();

    let health = rest.get(&format!("{base}/health")).unwrap();
    assert_eq!(health.get("status").and_then(Value::as_str), Some("up"));

    let enc = rest
        .post(
            &format!("{base}/crypto/encrypt"),
            &json!({ "passphrase": "pw", "plaintext": "over tcp" }),
        )
        .unwrap();
    let cipher = enc.get("ciphertext").and_then(Value::as_str).unwrap().to_string();
    let dec = rest
        .post(
            &format!("{base}/crypto/decrypt"),
            &json!({ "passphrase": "pw", "ciphertext": cipher }),
        )
        .unwrap();
    assert_eq!(dec.get("plaintext").and_then(Value::as_str), Some("over tcp"));
    assert!(server.served() >= 3);
}

#[test]
fn soap_service_over_real_sockets() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        2,
        soc::services::bindings::credit_score_soap("http://dynamic/credit"),
    )
    .unwrap();
    let soap = SoapClient::new(Arc::new(HttpClient::new()));
    // Discover fetches WSDL over TCP; the advertised endpoint is the
    // placeholder, so call the real address directly.
    let parsed = soap.discover(&server.url()).unwrap();
    assert_eq!(parsed.contract.name, "CreditScore");
    let out =
        soap.call(&server.url(), &parsed.contract, "GetScore", &[("ssn", "123-45-6789")]).unwrap();
    let score: u32 = out["score"].parse().unwrap();
    assert_eq!(score, soc::services::mortgage::CreditScoreService::score("123-45-6789"));
}

#[test]
fn robot_service_over_real_sockets() {
    let server =
        HttpServer::bind("127.0.0.1:0", 2, soc::robotics::raas::RaasService::new()).unwrap();
    let rest = RestClient::new(Arc::new(HttpClient::new()));
    let session = rest
        .post(&format!("{}/sessions", server.url()), &json!({ "width": 9, "height": 9, "seed": 8 }))
        .unwrap();
    let id = session.get("id").and_then(Value::as_i64).unwrap();
    let run = rest
        .post(
            &format!("{}/sessions/{id}/run", server.url()),
            &json!({ "algorithm": "wall-follow-right", "max_ticks": 4000 }),
        )
        .unwrap();
    assert_eq!(run.get("reached").and_then(Value::as_bool), Some(true));
}

#[test]
fn uniclient_spans_tcp_and_memory() {
    // Provider A on TCP, provider B in memory: one client reaches both,
    // so composition code never cares where a service is deployed.
    let server =
        HttpServer::bind("127.0.0.1:0", 1, soc::services::bindings::ServiceHost::new(5)).unwrap();
    let net = MemNetwork::new();
    net.host("local", |_req: Request| soc::http::Response::json("{\"where\":\"memory\"}"));
    let uni = UniClient::new(net);

    let over_tcp = uni.send(Request::get(format!("{}/health", server.url()))).unwrap();
    assert!(over_tcp.status.is_success());
    let over_mem = uni.send(Request::get("mem://local/")).unwrap();
    assert_eq!(
        Value::parse(over_mem.text_body().unwrap()).unwrap().get("where").and_then(Value::as_str),
        Some("memory")
    );
}

#[test]
fn server_survives_malformed_clients() {
    let server =
        HttpServer::bind("127.0.0.1:0", 1, soc::services::bindings::ServiceHost::new(6)).unwrap();
    // Raw garbage over the socket.
    {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
        // The server answers 400 and closes; drain to EOF.
        let mut buf = Vec::new();
        let _ = std::io::Read::read_to_end(&mut stream, &mut buf);
        let head = String::from_utf8_lossy(&buf);
        assert!(head.contains("400"), "{head}");
    }
    // The server still answers well-formed requests afterwards.
    let rest = RestClient::new(Arc::new(HttpClient::new()));
    assert!(rest.get(&format!("{}/health", server.url())).is_ok());
}

#[test]
fn concurrent_tcp_consumers_hit_one_provider() {
    let server = Arc::new(
        HttpServer::bind("127.0.0.1:0", 4, soc::services::bindings::ServiceHost::new(13)).unwrap(),
    );
    let mut handles = Vec::new();
    for t in 0..4 {
        let url = server.url();
        handles.push(std::thread::spawn(move || {
            let rest = RestClient::new(Arc::new(HttpClient::new()));
            for i in 0..5 {
                let enc = rest
                    .post(
                        &format!("{url}/crypto/encrypt"),
                        &json!({ "passphrase": "k", "plaintext": (format!("m-{t}-{i}")) }),
                    )
                    .unwrap();
                assert!(enc.get("ciphertext").is_some());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.served(), 20);
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    use std::io::{BufRead, BufReader, Write};
    let server =
        HttpServer::bind("127.0.0.1:0", 1, soc::services::bindings::ServiceHost::new(9)).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3 {
        write!(stream, "GET /health HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        stream.flush().unwrap();
        // Read the status line + headers, then the announced body.
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.contains("200"), "request {i}: {status}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut reader, &mut body).unwrap();
        assert!(String::from_utf8_lossy(&body).contains("up"));
    }
    assert_eq!(server.served(), 3, "all three requests on one connection");
}

#[test]
fn http10_client_is_answered_and_closed() {
    use std::io::{Read, Write};
    let server =
        HttpServer::bind("127.0.0.1:0", 1, soc::services::bindings::ServiceHost::new(11)).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    write!(stream, "GET /health HTTP/1.0\r\nHost: h\r\n\r\n").unwrap();
    stream.flush().unwrap();
    // An HTTP/1.0 peer without `Connection: keep-alive` expects the
    // server to close after one response; a server that holds the
    // connection open hangs this read until a timeout kills it.
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("server must close the HTTP/1.0 connection");
    let head = String::from_utf8_lossy(&buf);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("up"), "{head}");
}

#[test]
fn http10_keep_alive_is_honored_when_asked_for() {
    use std::io::{BufRead, BufReader, Write};
    let server =
        HttpServer::bind("127.0.0.1:0", 1, soc::services::bindings::ServiceHost::new(12)).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Explicit keep-alive flips the 1.0 default: the same connection
    // serves a second request.
    for i in 0..2 {
        write!(stream, "GET /health HTTP/1.0\r\nHost: h\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.contains("200"), "request {i}: {status}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut reader, &mut body).unwrap();
    }
    assert_eq!(server.served(), 2, "keep-alive must reuse the 1.0 connection");
}

/// The gateway's whole tail-latency layer over real sockets: three
/// TCP-hosted replicas, one of which starts stalling; hedges mask the
/// stall immediately, and once the stalled sends complete and report
/// their latency, the outlier ejector pulls the replica entirely.
#[test]
fn gateway_hedges_and_ejects_over_real_sockets() {
    let fast0 = HttpServer::bind("127.0.0.1:0", 2, |_req: Request| Response::text("r0")).unwrap();
    let fast1 = HttpServer::bind("127.0.0.1:0", 2, |_req: Request| Response::text("r1")).unwrap();
    let stalling = Arc::new(AtomicBool::new(false));
    let flag = stalling.clone();
    // Generous worker count: hedge losers park a worker for the full
    // stall, and several can be in flight at once.
    let slow = HttpServer::bind("127.0.0.1:0", 8, move |_req: Request| {
        if flag.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(250));
        }
        Response::text("slow")
    })
    .unwrap();

    let gw = Gateway::new(
        Arc::new(HttpClient::new()),
        GatewayConfig {
            hedge: HedgeConfig { min_samples: 4, ..HedgeConfig::default() },
            outlier: OutlierConfig {
                eval_interval: Duration::ZERO,
                min_samples: 8,
                min_latency: Duration::from_millis(5),
                eject_duration: Duration::from_secs(30),
                ..OutlierConfig::default()
            },
            request_deadline: Duration::from_secs(10),
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            ..GatewayConfig::default()
        },
    );
    let slow_url = slow.url();
    gw.register("svc", &[&fast0.url(), &fast1.url(), &slow_url]);
    // The gateway itself is hosted on a socket too: client → gateway →
    // replica is TCP end to end.
    let front = HttpServer::bind("127.0.0.1:0", 8, gw.clone()).unwrap();
    let client = HttpClient::new();
    let call = |path: &str| client.send(Request::get(format!("{}{path}", front.url()))).unwrap();

    // Warm-up with everyone healthy: each replica earns its p95.
    for _ in 0..24 {
        assert!(call("/svc/svc/warm").status.is_success());
    }

    // The slow replica starts stalling. Its p95 on record is still the
    // healthy sub-millisecond one, so every request that lands on it
    // hedges almost immediately and the backup answers; callers never
    // wait out the 250 ms stall.
    stalling.store(true, Ordering::Relaxed);
    for _ in 0..18 {
        let start = Instant::now();
        let resp = call("/svc/svc/x");
        assert!(resp.status.is_success());
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "hedge must answer well before the 250 ms stall ({:?})",
            start.elapsed()
        );
    }
    let launched = gw.stats().hedges_launched.load(Ordering::Relaxed);
    assert!(launched >= 1, "stalled picks must have hedged (launched {launched})");

    // Losing arms run to completion and only then report their 250 ms
    // observations; wait them out so the ejector has evidence.
    std::thread::sleep(Duration::from_millis(600));
    for _ in 0..12 {
        assert!(call("/svc/svc/y").status.is_success());
    }
    assert_eq!(gw.ejected_endpoints("svc"), vec![slow_url.clone()]);
    let served = slow.served();
    for _ in 0..9 {
        assert!(call("/svc/svc/z").status.is_success());
    }
    assert_eq!(slow.served(), served, "an ejected replica must see no traffic");

    // The counters are visible over the wire, not just in-process.
    let stats = call("/gateway/stats");
    let v = Value::parse(stats.text_body().unwrap()).unwrap();
    assert!(v.pointer("/hedges/launched").and_then(Value::as_i64).unwrap() >= 1);
    assert!(v.pointer("/ejections").and_then(Value::as_i64).unwrap() >= 1);
}

// ---------------------------------------------------------------------------
// Distributed tracing over real sockets
// ---------------------------------------------------------------------------

/// Fetch `/observe/traces/{id}` from `base` and parse the span tree.
fn fetch_trace(client: &HttpClient, base: &str, trace_id: &str) -> Value {
    let resp = client.send(Request::get(format!("{base}/observe/traces/{trace_id}"))).unwrap();
    assert!(resp.status.is_success(), "trace {trace_id} not retrievable: {:?}", resp.status);
    Value::parse(resp.text_body().unwrap()).unwrap()
}

fn span_attr<'a>(span: &'a Value, key: &str) -> Option<&'a str> {
    span.pointer(&format!("/attrs/{key}")).and_then(Value::as_str)
}

fn span_id(span: &Value) -> &str {
    span.pointer("/span_id").and_then(Value::as_str).unwrap()
}

fn parent_id(span: &Value) -> Option<&str> {
    span.pointer("/parent_span_id").and_then(Value::as_str)
}

fn span_name(span: &Value) -> &str {
    span.pointer("/name").and_then(Value::as_str).unwrap()
}

/// The span matching `pred`, asserting it is unique in the trace.
fn one_span<'a>(tree: &'a Value, what: &str, pred: impl Fn(&Value) -> bool) -> &'a Value {
    let spans = tree.pointer("/spans").and_then(Value::as_array).unwrap();
    let hits: Vec<&Value> = spans.iter().filter(|s| pred(s)).collect();
    assert_eq!(hits.len(), 1, "expected exactly one {what} span, got {}: {tree}", hits.len());
    hits[0]
}

/// A request through the TCP-hosted gateway to a TCP-hosted REST
/// upstream yields ONE trace whose tree nests every hop: front server
/// span → gateway dispatch → attempt (client) → upstream server span →
/// router dispatch. The trace id is learned from the `X-Trace-Id`
/// response header and the tree is fetched back over the wire from the
/// gateway's own `/observe/*` plane.
#[test]
fn gateway_request_produces_one_trace_tree_over_tcp() {
    let mut api = soc::rest::Router::new();
    api.get("/quote", |_req, _p| Response::json("{\"quote\":42}"));
    let upstream = HttpServer::bind("127.0.0.1:0", 2, api).unwrap();
    let upstream_url = upstream.url();

    let gw = Gateway::new(Arc::new(HttpClient::new()), GatewayConfig::default());
    gw.register("quote", &[&upstream_url]);
    let front = HttpServer::bind("127.0.0.1:0", 2, gw).unwrap();

    let client = HttpClient::new();
    let resp = client.send(Request::get(format!("{}/svc/quote/quote", front.url()))).unwrap();
    assert!(resp.status.is_success());
    let trace_id =
        resp.headers.get("X-Trace-Id").expect("sampled responses advertise X-Trace-Id").to_string();

    let tree = fetch_trace(&client, &front.url(), &trace_id);
    assert_eq!(tree.pointer("/trace_id").and_then(Value::as_str), Some(trace_id.as_str()));
    assert_eq!(tree.pointer("/span_count").and_then(Value::as_i64), Some(5));

    let front_srv = one_span(&tree, "front server", |s| {
        span_name(s) == "http.server" && span_attr(s, "http.target") == Some("/svc/quote/quote")
    });
    assert_eq!(parent_id(front_srv), None, "the front server span roots the trace");

    let dispatch = one_span(&tree, "gateway.request", |s| span_name(s) == "gateway.request");
    assert_eq!(parent_id(dispatch), Some(span_id(front_srv)));
    assert_eq!(span_attr(dispatch, "service"), Some("quote"));
    assert_eq!(span_attr(dispatch, "http.status"), Some("200"));

    let attempt = one_span(&tree, "gateway.attempt", |s| span_name(s) == "gateway.attempt");
    assert_eq!(parent_id(attempt), Some(span_id(dispatch)));
    assert_eq!(span_attr(attempt, "attempt"), Some("0"));
    assert_eq!(span_attr(attempt, "hedge"), Some("false"));
    assert_eq!(span_attr(attempt, "upstream"), Some(upstream_url.as_str()));

    let up_srv = one_span(&tree, "upstream server", |s| {
        span_name(s) == "http.server" && span_attr(s, "http.target") == Some("/quote")
    });
    assert_eq!(parent_id(up_srv), Some(span_id(attempt)), "traceparent must cross the second hop");

    let rest = one_span(&tree, "rest.dispatch", |s| span_name(s) == "rest.dispatch");
    assert_eq!(parent_id(rest), Some(span_id(up_srv)));
    assert_eq!(span_attr(rest, "http.path"), Some("/quote"));
    assert_eq!(span_attr(rest, "http.status"), Some("200"));
}

/// When a request hedges, both arms appear in the same trace as sibling
/// `gateway.attempt` spans under one `gateway.request` — the loser's
/// span shows up too once its stalled send completes.
#[test]
fn hedged_request_records_both_attempts_in_one_trace() {
    let fast = HttpServer::bind("127.0.0.1:0", 2, |_req: Request| Response::text("fast")).unwrap();
    let stalling = Arc::new(AtomicBool::new(false));
    let flag = stalling.clone();
    let slow = HttpServer::bind("127.0.0.1:0", 8, move |_req: Request| {
        if flag.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(200));
        }
        Response::text("slow")
    })
    .unwrap();

    let gw = Gateway::new(
        Arc::new(HttpClient::new()),
        GatewayConfig {
            hedge: HedgeConfig { min_samples: 4, ..HedgeConfig::default() },
            request_deadline: Duration::from_secs(10),
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            ..GatewayConfig::default()
        },
    );
    gw.register("svc", &[&fast.url(), &slow.url()]);
    let front = HttpServer::bind("127.0.0.1:0", 8, gw).unwrap();
    let client = HttpClient::new();
    let call = |path: &str| client.send(Request::get(format!("{}{path}", front.url()))).unwrap();

    // Warm-up: each replica earns the p95 that arms the hedger.
    for _ in 0..16 {
        assert!(call("/svc/svc/warm").status.is_success());
    }

    stalling.store(true, Ordering::Relaxed);
    let mut hedged_tree = None;
    for _ in 0..18 {
        let resp = call("/svc/svc/x");
        assert!(resp.status.is_success());
        let trace_id = resp.headers.get("X-Trace-Id").unwrap().to_string();
        // The losing arm only records its span once the 200 ms stall
        // completes; wait it out before inspecting the tree.
        std::thread::sleep(Duration::from_millis(300));
        let tree = fetch_trace(&client, &front.url(), &trace_id);
        let spans = tree.pointer("/spans").and_then(Value::as_array).unwrap();
        if spans.iter().filter(|s| span_name(s) == "gateway.attempt").count() == 2 {
            hedged_tree = Some(tree);
            break;
        }
    }
    let tree = hedged_tree.expect("round-robin must land a stalled pick that hedges");

    let dispatch = one_span(&tree, "gateway.request", |s| span_name(s) == "gateway.request");
    let primary = one_span(&tree, "primary attempt", |s| {
        span_name(s) == "gateway.attempt" && span_attr(s, "hedge") == Some("false")
    });
    let backup = one_span(&tree, "hedge attempt", |s| {
        span_name(s) == "gateway.attempt" && span_attr(s, "hedge") == Some("true")
    });
    assert_eq!(parent_id(primary), Some(span_id(dispatch)), "arms are siblings, not nested");
    assert_eq!(parent_id(backup), Some(span_id(dispatch)), "arms are siblings, not nested");
    // The two arms race different replicas (either may be primary: a
    // request on the fast replica can exceed its own p95 and hedge too).
    let arms = [span_attr(primary, "upstream").unwrap(), span_attr(backup, "upstream").unwrap()];
    assert!(arms.contains(&fast.url().as_str()), "no arm hit the fast replica: {arms:?}");
    assert!(arms.contains(&slow.url().as_str()), "no arm hit the slow replica: {arms:?}");
}

/// A workflow whose activity calls a replicated service through the
/// gateway joins the caller's trace: workflow.run → workflow.activity →
/// gateway.request → gateway.attempt → the TCP upstream's server span —
/// composition and dispatch visible in one tree, fetched over the wire.
#[test]
fn workflow_through_gateway_is_one_trace_end_to_end() {
    use soc::workflow::activity::{Const, ServiceCall};
    use soc::workflow::WorkflowGraph;
    use std::collections::HashMap;

    let mut api = soc::rest::Router::new();
    api.get("/latest", |_req, _p| Response::json("{\"price\":101}"));
    let upstream = HttpServer::bind("127.0.0.1:0", 2, api).unwrap();

    let gw = Gateway::new(Arc::new(HttpClient::new()), GatewayConfig::default());
    gw.register("quotes", &[&upstream.url()]);

    let mut g = WorkflowGraph::new();
    let start = g.add("start", Const::new(Value::Null));
    let fetch = g.add("fetch", ServiceCall::get_via_gateway(gw, "quotes", "latest"));
    g.connect(start, "out", fetch, "trigger").unwrap();

    let root = soc::observe::root_span("test.workflow", soc::observe::SpanKind::Internal);
    let trace_id = root.context().trace_id.to_hex();
    let root_sid = root.context().span_id.to_hex();
    let out = {
        let _active = root.activate();
        g.run(&HashMap::new()).unwrap()
    };
    drop(root);
    assert_eq!(out["fetch.out"].pointer("/price").and_then(Value::as_i64), Some(101));

    // The tree is served over TCP by a standalone observability host.
    let obs = HttpServer::bind("127.0.0.1:0", 1, soc::http::ObserveEndpoints::new()).unwrap();
    let client = HttpClient::new();
    let tree = fetch_trace(&client, &obs.url(), &trace_id);

    let run = one_span(&tree, "workflow.run", |s| span_name(s) == "workflow.run");
    assert_eq!(parent_id(run), Some(root_sid.as_str()));
    let activity = one_span(&tree, "fetch activity", |s| {
        span_name(s) == "workflow.activity" && span_attr(s, "node") == Some("fetch")
    });
    assert_eq!(parent_id(activity), Some(span_id(run)));
    let dispatch = one_span(&tree, "gateway.request", |s| span_name(s) == "gateway.request");
    assert_eq!(parent_id(dispatch), Some(span_id(activity)));
    let attempt = one_span(&tree, "gateway.attempt", |s| span_name(s) == "gateway.attempt");
    assert_eq!(parent_id(attempt), Some(span_id(dispatch)));
    let up_srv = one_span(&tree, "upstream server", |s| span_name(s) == "http.server");
    assert_eq!(parent_id(up_srv), Some(span_id(attempt)));
    let rest = one_span(&tree, "rest.dispatch", |s| span_name(s) == "rest.dispatch");
    assert_eq!(parent_id(rest), Some(span_id(up_srv)));
}

/// The unified metrics plane is reachable over the wire through the
/// gateway's front socket, in Prometheus text exposition format, and
/// carries both the migrated gateway latency histograms and the HTTP
/// server's connection-shed counter.
#[test]
fn observe_metrics_served_over_the_wire() {
    let upstream =
        HttpServer::bind("127.0.0.1:0", 1, |_req: Request| Response::text("ok")).unwrap();
    let gw = Gateway::new(Arc::new(HttpClient::new()), GatewayConfig::default());
    gw.register("m", &[&upstream.url()]);
    let front = HttpServer::bind("127.0.0.1:0", 2, gw).unwrap();
    let client = HttpClient::new();
    assert!(client
        .send(Request::get(format!("{}/svc/m/ping", front.url())))
        .unwrap()
        .status
        .is_success());

    let resp = client.send(Request::get(format!("{}/observe/metrics", front.url()))).unwrap();
    assert!(resp.status.is_success());
    assert_eq!(resp.headers.get("Content-Type"), Some("text/plain; version=0.0.4"));
    let body = resp.text_body().unwrap();
    assert!(
        body.contains("soc_gateway_upstream_latency_us_bucket"),
        "gateway latency histograms must flow into the shared registry:\n{body}"
    );
    assert!(
        body.contains("soc_http_connections_shed_total"),
        "the server's backpressure counter must be registered:\n{body}"
    );
    assert!(body.contains("soc_gateway_admitted_total"), "admission counters missing:\n{body}");
}

mod traceparent_props {
    //! Round-trip laws for the W3C `traceparent` propagation format.
    use proptest::prelude::*;
    use soc::observe::{SpanId, TraceContext, TraceId};

    proptest! {
        #[test]
        fn traceparent_round_trips(
            hi in any::<u64>(),
            lo in any::<u64>(),
            span in any::<u64>(),
            sampled in any::<bool>(),
        ) {
            let ctx = TraceContext {
                trace_id: TraceId((((hi as u128) << 64) | lo as u128).max(1)),
                span_id: SpanId(span.max(1)),
                sampled,
            };
            let wire = ctx.to_traceparent();
            prop_assert_eq!(TraceContext::parse_traceparent(&wire), Some(ctx));
        }

        #[test]
        fn traceparent_parser_never_panics(s in "[ -~]{0,64}") {
            // Arbitrary printable garbage must never panic, and anything
            // the strict parser does accept must re-encode to a value it
            // accepts again, identically.
            if let Some(ctx) = TraceContext::parse_traceparent(&s) {
                prop_assert_eq!(TraceContext::parse_traceparent(&ctx.to_traceparent()), Some(ctx));
            }
        }

        #[test]
        fn corrupted_traceparent_is_rejected_not_misread(
            hi in any::<u64>(),
            lo in any::<u64>(),
            span in any::<u64>(),
            cut in 0usize..55,
        ) {
            let ctx = TraceContext {
                trace_id: TraceId((((hi as u128) << 64) | lo as u128).max(1)),
                span_id: SpanId(span.max(1)),
                sampled: true,
            };
            // Truncation anywhere inside the fixed-width format must fail
            // parsing, never yield a context with mangled ids.
            let wire = ctx.to_traceparent();
            prop_assert_eq!(TraceContext::parse_traceparent(&wire[..cut]), None);
        }
    }
}

#[test]
fn oversized_body_is_rejected_not_buffered() {
    let server =
        HttpServer::bind("127.0.0.1:0", 1, soc::services::bindings::ServiceHost::new(10)).unwrap();
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    // Claim a body far over the 8 MiB limit; send only headers.
    write!(
        stream,
        "POST /crypto/encrypt HTTP/1.1\r\nHost: h\r\nContent-Length: 99999999999\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    let head = String::from_utf8_lossy(&buf);
    assert!(head.contains("400"), "{head}");
    assert!(head.to_lowercase().contains("exceeds"), "{head}");
}

// ---------------------------------------------------------------------------
// Seeded wire faults through the chaos proxy
// ---------------------------------------------------------------------------

/// The gateway's fault matrix at real-socket fidelity and higher scale:
/// five replicas, three of them behind chaos proxies that respectively
/// delay, reset mid-status-line, and truncate mid-body on the wire, with
/// eight concurrent clients hammering the front. Idempotent requests
/// must retry around every injected fault, the proxies must actually
/// have injected (not silently passed), and shutdown must leave no
/// tunnel open.
#[test]
fn gateway_rides_out_wire_faults_from_chaos_proxies() {
    use soc::chaos::{FaultProxy, ProxyFaults};

    let reply = |name: &'static str| move |_req: Request| Response::text(name);
    let replicas = [
        HttpServer::bind("127.0.0.1:0", 4, reply("r0")).unwrap(),
        HttpServer::bind("127.0.0.1:0", 4, reply("r1")).unwrap(),
        HttpServer::bind("127.0.0.1:0", 4, reply("r2")).unwrap(),
        HttpServer::bind("127.0.0.1:0", 4, reply("r3")).unwrap(),
        HttpServer::bind("127.0.0.1:0", 4, reply("r4")).unwrap(),
    ];
    // One proxy per fault mode; the remaining two replicas are clean.
    let mut delaying = FaultProxy::bind(
        replicas[0].addr(),
        ProxyFaults::seeded(11).with_delay(0.5, Duration::from_millis(10)),
    )
    .unwrap();
    let mut resetting =
        FaultProxy::bind(replicas[1].addr(), ProxyFaults::seeded(12).with_reset(0.5)).unwrap();
    let mut truncating =
        FaultProxy::bind(replicas[2].addr(), ProxyFaults::seeded(13).with_truncate(0.5)).unwrap();

    let gw = Gateway::new(
        Arc::new(HttpClient::new()),
        GatewayConfig {
            max_retries: 4,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            request_deadline: Duration::from_secs(10),
            ..GatewayConfig::default()
        },
    );
    gw.register(
        "svc",
        &[
            &delaying.url(),
            &resetting.url(),
            &truncating.url(),
            &replicas[3].url(),
            &replicas[4].url(),
        ],
    );
    let front = HttpServer::bind("127.0.0.1:0", 8, gw.clone()).unwrap();

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let front_url = front.url();
                scope.spawn(move || {
                    let client = HttpClient::new();
                    let mut failures = Vec::new();
                    for i in 0..12 {
                        let url = format!("{front_url}/svc/svc/req-{t}-{i}");
                        match client.send(Request::get(&url)) {
                            Ok(resp) if resp.status.is_success() => {}
                            Ok(resp) => failures.push(format!("t{t} i{i}: HTTP {}", resp.status.0)),
                            Err(e) => failures.push(format!("t{t} i{i}: {e}")),
                        }
                    }
                    failures
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert!(failures.is_empty(), "client-visible failures under wire faults: {failures:?}");

    // The schedule must actually have bitten: each proxy injected its
    // fault mode at least once at p=0.5 over this much traffic.
    assert!(delaying.stats().delays.load(Ordering::Relaxed) > 0, "no delays injected");
    assert!(resetting.stats().resets.load(Ordering::Relaxed) > 0, "no resets injected");
    assert!(truncating.stats().truncations.load(Ordering::Relaxed) > 0, "no truncations injected");

    for proxy in [&mut delaying, &mut resetting, &mut truncating] {
        proxy.shutdown();
        assert_eq!(proxy.open_tunnels(), 0, "proxy leaked tunnels after shutdown");
    }
}
