//! **Figure 5 harness** — "CSE445/598 enrollment 2006 to 2014": the
//! three series (CSE445, CSE598, combined) plotted from Table 4.
//!
//! ```sh
//! cargo run -p soc-bench --bin fig5_enrollment
//! ```

use soc_curriculum::chart::ascii_chart;
use soc_curriculum::enrollment::{figure5_series, growth_summary, term_labels, TABLE4};
use soc_services::image::{line_chart, Color};

fn main() {
    println!("Figure 5: CSE445/598 enrollment 2006 to 2014");
    soc_bench::print_rule(64);

    let (cse445, cse598, combined) = figure5_series(&TABLE4);
    print!(
        "{}",
        ascii_chart(&[("CSE445", &cse445), ("CSE598", &cse598), ("Combined", &combined)], 64, 16,)
    );
    let labels = term_labels(&TABLE4);
    println!("          x-axis: {} … {}", labels.first().unwrap(), labels.last().unwrap());

    let g = growth_summary(&TABLE4).expect("data present");
    println!("\npaper claims, recomputed from Table 4:");
    println!("  combined enrollment Fall 2006: {}", g.first_total);
    println!("  peak combined enrollment: {} in {} {}", g.peak_total, g.peak_term.1, g.peak_term.0);
    println!("  growth factor first→last term: {:.2}×", g.growth_factor);
    println!("  least-squares trend: {:+.2} students/term", g.trend_per_term);

    assert_eq!(g.first_total, 39, "paper: 39 in Fall 2006");
    assert_eq!(g.peak_total, 134, "paper: 134 in Fall 2013");
    println!("\nshape check: 39 (Fall'06) → 134 (Fall'13) ✓ — matches the paper's narrative.");

    // Also render the figure as a BMP with the repository's own dynamic
    // image generation service (the paper's unit-5 graphics topic).
    let img = line_chart(
        "CSE445 598 ENROLLMENT 2006-2014",
        &[
            ("CSE445", cse445, Color::BLUE),
            ("CSE598", cse598, Color::RED),
            ("Combined", combined, Color::GREEN),
        ],
        480,
        240,
    );
    let path = std::env::temp_dir().join("figure5.bmp");
    if std::fs::write(&path, img.to_bmp()).is_ok() {
        println!("BMP rendering written to {}", path.display());
    }
}
