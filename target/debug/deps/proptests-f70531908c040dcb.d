/root/repo/target/debug/deps/proptests-f70531908c040dcb.d: crates/soc-parallel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f70531908c040dcb: crates/soc-parallel/tests/proptests.rs

crates/soc-parallel/tests/proptests.rs:
