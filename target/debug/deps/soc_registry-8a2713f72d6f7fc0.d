/root/repo/target/debug/deps/soc_registry-8a2713f72d6f7fc0.d: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

/root/repo/target/debug/deps/soc_registry-8a2713f72d6f7fc0: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

crates/soc-registry/src/lib.rs:
crates/soc-registry/src/crawler.rs:
crates/soc-registry/src/descriptor.rs:
crates/soc-registry/src/directory.rs:
crates/soc-registry/src/monitor.rs:
crates/soc-registry/src/ontology.rs:
crates/soc-registry/src/repository.rs:
crates/soc-registry/src/search.rs:
