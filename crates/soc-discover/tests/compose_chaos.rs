//! Composition under chaos: drive the full discover → plan → execute
//! loop through a seeded [`PartitionSchedule`] and check a per-step
//! reachability oracle.
//!
//! The schedule cuts directional links among the caller and the two
//! risk-model hosts. Because every discovery request originates from
//! the test thread (the client origin), only `client → host` cuts are
//! observable; host → client cuts are asymmetric noise the stack must
//! shrug off. The oracle is exact:
//!
//! - both risk hosts dark → the goal is unachievable (`Exhausted`);
//! - only the preferred `risk-0` dark → the saga fails mid-run,
//!   compensates, and the re-plan routes through `risk-model-alt`;
//! - otherwise → first plan succeeds.

use std::collections::HashMap;

use soc_chaos::{Cut, PartitionSchedule};
use soc_discover::{demo, AchieveConfig, CrawlConfig, DiscoverError, Discovery, Goal};
use soc_gateway::GatewayConfig;
use soc_http::mem::{MemNetwork, UniClient, CLIENT_ORIGIN};
use soc_json::Value;
use soc_soap::XsdType;
use std::sync::Arc;

const SEED: u64 = 1;
const STEPS: usize = 10;

fn lending_goal() -> Goal {
    Goal::new()
        .have("ssn", XsdType::String)
        .have("amount", XsdType::Int)
        .have("income", XsdType::Int)
        .want("approved", XsdType::Boolean)
        .want("rate_bps", XsdType::Int)
}

fn lending_inputs() -> HashMap<String, Value> {
    HashMap::from([
        ("ssn".to_string(), Value::from("123-45-6789")),
        ("amount".to_string(), Value::from(25_000)),
        ("income".to_string(), Value::from(90_000)),
    ])
}

#[test]
fn composition_replans_through_a_partition_schedule() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);

    let sched = PartitionSchedule::generate(SEED, &[CLIENT_ORIGIN, "risk-0", "risk-alt-0"], STEPS);
    assert!(sched.violations().is_empty(), "{:?}", sched.violations());

    let mut replans = 0;
    let mut exhaustions = 0;
    for (i, step) in sched.steps.iter().enumerate() {
        // Crawl on a healed network (discovery happened before the
        // partition), then apply the step and try to compose. A fresh
        // Discovery per step keeps gateway breaker/ejection state from
        // leaking across steps.
        net.heal_all();
        let mut disc = Discovery::new(
            Arc::new(UniClient::new(net.clone())),
            GatewayConfig::default(),
            CrawlConfig::default(),
        );
        let stats = disc.crawl(&["mem://dir-a"]);
        assert_eq!(stats.visited.len(), 3, "step {i}: healed crawl must see all directories");
        sched.apply(&net, i);

        let dark =
            |host: &str| step.cuts.contains(&Cut { from: CLIENT_ORIGIN.into(), to: host.into() });
        let (risk_dark, alt_dark) = (dark("risk-0"), dark("risk-alt-0"));

        let outcome = disc.achieve(&lending_goal(), &lending_inputs(), &AchieveConfig::default());
        match outcome {
            Ok(achieved) => {
                assert!(
                    !(risk_dark && alt_dark),
                    "step {i}: succeeded with every risk provider unreachable ({:?})",
                    step.cuts
                );
                assert_eq!(achieved.outputs["approved"].as_bool(), Some(true), "step {i}");
                if risk_dark {
                    // The preferred provider was partitioned: exactly one
                    // compensation + re-plan onto the alternative.
                    assert_eq!(achieved.attempts, 2, "step {i}");
                    assert_eq!(achieved.replanned, vec!["risk-model"], "step {i}");
                    assert!(
                        achieved.plan.nodes.iter().any(|n| n.service_id == "risk-model-alt"),
                        "step {i}: re-plan must route through the alternative"
                    );
                    replans += 1;
                } else {
                    assert_eq!(achieved.attempts, 1, "step {i}: no observable cut, no re-plan");
                }
            }
            Err(DiscoverError::Exhausted { attempts, .. }) => {
                assert!(
                    risk_dark && alt_dark,
                    "step {i}: exhausted but a risk provider was reachable ({:?})",
                    step.cuts
                );
                assert!(attempts >= 2, "step {i}: exhaustion must have re-planned first");
                exhaustions += 1;
            }
            Err(other) => panic!("step {i}: unexpected failure mode: {other:?}"),
        }
    }

    // Seed 1 is pinned to exercise every oracle branch.
    assert_eq!(replans, 4, "schedule drift: re-plan steps");
    assert_eq!(exhaustions, 3, "schedule drift: dark steps");
    net.heal_all();
}
