/root/repo/target/release/deps/table1_3_acm-28e32d31243d662a.d: crates/soc-bench/src/bin/table1_3_acm.rs

/root/repo/target/release/deps/table1_3_acm-28e32d31243d662a: crates/soc-bench/src/bin/table1_3_acm.rs

crates/soc-bench/src/bin/table1_3_acm.rs:
