/root/repo/target/debug/deps/fig4_webapp-03a1e1213c1db154.d: crates/soc-bench/src/bin/fig4_webapp.rs

/root/repo/target/debug/deps/fig4_webapp-03a1e1213c1db154: crates/soc-bench/src/bin/fig4_webapp.rs

crates/soc-bench/src/bin/fig4_webapp.rs:
