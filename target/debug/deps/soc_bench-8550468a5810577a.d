/root/repo/target/debug/deps/soc_bench-8550468a5810577a.d: crates/soc-bench/src/lib.rs

/root/repo/target/debug/deps/soc_bench-8550468a5810577a: crates/soc-bench/src/lib.rs

crates/soc-bench/src/lib.rs:
