//! Hosting: the REST facade over every repository service, SOAP
//! bindings for the contract-shaped ones, and the registry catalog —
//! "the services are implemented in multiple formats" (Section V).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use soc_http::{Handler, MemNetwork, Request, Response, Status};
use soc_json::{json, Value};
use soc_registry::descriptor::{Binding, ServiceDescriptor};
use soc_rest::router::Router;
use soc_soap::contract::{Contract, Operation, XsdType};
use soc_soap::service::SoapService;

use crate::access::AccessControl;
use crate::buffer::MessageBufferService;
use crate::cache::CacheService;
use crate::captcha::{CaptchaService, Verify};
use crate::cart::{CartService, LineItem, Promotion};
use crate::crypto::{base64_encode, EncryptionService};
use crate::guessing::{Feedback, GuessingGame};
use crate::image;
use crate::mortgage::{Application, CreditScoreService, Decision, MortgageService};
use crate::password::{Charset, PasswordService};

/// All service instances behind one REST facade.
pub struct ServiceHost {
    router: Router,
    ledger: Arc<crate::ledger::SubmissionLedger>,
}

fn bad(e: impl std::fmt::Display) -> Response {
    Response::error(Status::UNPROCESSABLE, &e.to_string())
}

fn body_json(req: &Request) -> Result<Value, Response> {
    let text =
        req.text().map_err(|_| Response::error(Status::BAD_REQUEST, "body must be UTF-8"))?;
    Value::parse(text).map_err(|e| Response::error(Status::BAD_REQUEST, &e.to_string()))
}

fn str_field(v: &Value, key: &str) -> Result<String, Response> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing string field {key:?}")))
}

impl ServiceHost {
    /// Build the full repository host (deterministic from `seed`).
    pub fn new(seed: u64) -> Self {
        Self::with_ledger(seed, Arc::new(crate::ledger::SubmissionLedger::new()))
    }

    /// Like [`ServiceHost::new`], but sharing `ledger` — replicas of
    /// the mortgage service share one ledger the way real replicas
    /// share a database, so an idempotent replay deduplicates no
    /// matter which replica it lands on.
    pub fn with_ledger(seed: u64, ledger: Arc<crate::ledger::SubmissionLedger>) -> Self {
        let mut router = Router::new();
        let clock = Arc::new(AtomicU64::new(0));

        // Health endpoint (QoS monitor target).
        router.get("/health", |_req, _p| Response::json("{\"status\":\"up\"}"));

        // ---- WSDL for the typed REST services -----------------------
        // Crawlers fetch these to learn port signatures. The host
        // doesn't know its own deployment address, so the advertised
        // location is host-relative (a crawler resolves it against the
        // URL it fetched the WSDL from) unless a Host header names us.
        router.get("/wsdl/{id}", move |req, p| {
            let id = p.get("id").unwrap_or("");
            let Some((contract, base)) = rest_contract(id) else {
                return Response::error(Status::NOT_FOUND, "no WSDL for this service");
            };
            let location = match req.headers.get("Host") {
                Some(host) => format!("http://{host}{base}"),
                None => base.to_string(),
            };
            let xml = soc_soap::wsdl::generate(&contract, &location);
            Response::new(Status::OK).with_text("text/xml; charset=utf-8", &xml)
        });

        // ---- encryption / decryption --------------------------------
        router.post("/crypto/encrypt", |req, _p| match body_json(&req) {
            Ok(v) => {
                let (pass, plain) = match (str_field(&v, "passphrase"), str_field(&v, "plaintext"))
                {
                    (Ok(p), Ok(t)) => (p, t),
                    (Err(r), _) | (_, Err(r)) => return r,
                };
                let c = EncryptionService::encrypt_text(&pass, &plain);
                Response::json(&json!({ "ciphertext": c }).to_compact())
            }
            Err(r) => r,
        });
        router.post("/crypto/decrypt", |req, _p| match body_json(&req) {
            Ok(v) => {
                let (pass, cipher) =
                    match (str_field(&v, "passphrase"), str_field(&v, "ciphertext")) {
                        (Ok(p), Ok(t)) => (p, t),
                        (Err(r), _) | (_, Err(r)) => return r,
                    };
                match EncryptionService::decrypt_text(&pass, &cipher) {
                    Ok(plain) => Response::json(&json!({ "plaintext": plain }).to_compact()),
                    Err(e) => bad(e),
                }
            }
            Err(r) => r,
        });

        // ---- password generation ------------------------------------
        let passwords = Arc::new(PasswordService::new(seed ^ 0xFA55));
        {
            let passwords = passwords.clone();
            router.post("/passwords/generate", move |req, _p| match body_json(&req) {
                Ok(v) => {
                    let length = v.get("length").and_then(Value::as_i64).unwrap_or(16) as usize;
                    let charset = if v.get("symbols").and_then(Value::as_bool) == Some(false) {
                        Charset::alphanumeric()
                    } else {
                        Charset::full()
                    };
                    match passwords.generate(length, charset) {
                        Ok(p) => Response::json(
                            &json!({
                                "password": (p.clone()),
                                "entropy_bits": (PasswordService::entropy_bits(&p)),
                                "strength": (PasswordService::strength(&p))
                            })
                            .to_compact(),
                        ),
                        Err(e) => bad(e),
                    }
                }
                Err(r) => r,
            });
        }

        // ---- guessing game -------------------------------------------
        let games = Arc::new(GuessingGame::new(seed ^ 0x6A3E));
        {
            let games = games.clone();
            router.post("/guess/start", move |req, _p| match body_json(&req) {
                Ok(v) => {
                    let max = v.get("max").and_then(Value::as_i64).unwrap_or(100) as u32;
                    match games.start(max) {
                        Ok(id) => {
                            Response::json(&json!({ "game": (id as i64), "max": max }).to_compact())
                        }
                        Err(e) => bad(e),
                    }
                }
                Err(r) => r,
            });
        }
        {
            let games = games.clone();
            router.post("/guess/{game}", move |req, p| {
                let Some(id) = p.parse::<u64>("game") else {
                    return Response::error(Status::BAD_REQUEST, "bad game id");
                };
                match body_json(&req) {
                    Ok(v) => {
                        let Some(guess) = v.get("guess").and_then(Value::as_i64) else {
                            return bad("missing numeric field \"guess\"");
                        };
                        match games.guess(id, guess.max(0) as u32) {
                            Ok(Feedback::Higher) => {
                                Response::json(&json!({ "feedback": "higher" }).to_compact())
                            }
                            Ok(Feedback::Lower) => {
                                Response::json(&json!({ "feedback": "lower" }).to_compact())
                            }
                            Ok(Feedback::Correct { attempts }) => Response::json(
                                &json!({ "feedback": "correct", "attempts": attempts })
                                    .to_compact(),
                            ),
                            Ok(Feedback::GameOver) => {
                                Response::json(&json!({ "feedback": "game-over" }).to_compact())
                            }
                            Err(e) => bad(e),
                        }
                    }
                    Err(r) => r,
                }
            });
        }

        // ---- captcha --------------------------------------------------
        let captcha = Arc::new(CaptchaService::new(seed ^ 0xCA97, 6));
        {
            let captcha = captcha.clone();
            router.post("/captcha/new", move |_req, _p| {
                let ch = captcha.challenge();
                Response::json(
                    &json!({
                        "id": (ch.id as i64),
                        "image_bmp_base64": (base64_encode(&ch.image.to_bmp()))
                    })
                    .to_compact(),
                )
            });
        }
        {
            let captcha = captcha.clone();
            router.post("/captcha/verify", move |req, _p| match body_json(&req) {
                Ok(v) => {
                    let Some(id) = v.get("id").and_then(Value::as_i64) else {
                        return bad("missing numeric field \"id\"");
                    };
                    let answer = v.get("answer").and_then(Value::as_str).unwrap_or("");
                    let result = match captcha.verify(id.max(0) as u64, answer) {
                        Verify::Pass => "pass",
                        Verify::Fail => "fail",
                        Verify::Unknown => "unknown",
                    };
                    Response::json(&json!({ "result": result }).to_compact())
                }
                Err(r) => r,
            });
        }

        // ---- cache -----------------------------------------------------
        let cache = Arc::new(CacheService::new(256, 1000));
        {
            let (cache, clock) = (cache.clone(), clock.clone());
            router.put("/cache/{key}", move |req, p| {
                let now = clock.fetch_add(1, Ordering::Relaxed);
                match body_json(&req) {
                    Ok(v) => {
                        let Some(value) = v.get("value").and_then(Value::as_str) else {
                            return bad("missing string field \"value\"");
                        };
                        cache.put(p.get("key").unwrap_or(""), value, now);
                        Response::new(Status::NO_CONTENT)
                    }
                    Err(r) => r,
                }
            });
        }
        {
            let (cache, clock) = (cache.clone(), clock.clone());
            router.get("/cache/{key}", move |_req, p| {
                let now = clock.fetch_add(1, Ordering::Relaxed);
                match cache.get(p.get("key").unwrap_or(""), now) {
                    Some(v) => Response::json(&json!({ "value": v }).to_compact()),
                    None => Response::error(Status::NOT_FOUND, "cache miss"),
                }
            });
        }

        // ---- shopping cart ---------------------------------------------
        let carts = Arc::new(CartService::new());
        {
            let carts = carts.clone();
            router.post("/carts", move |_req, _p| {
                let id = carts.create();
                let mut resp = Response::json(&json!({ "cart": (id as i64) }).to_compact());
                resp.status = Status::CREATED;
                resp
            });
        }
        {
            let carts = carts.clone();
            router.post("/carts/{id}/items", move |req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad cart id");
                };
                match body_json(&req) {
                    Ok(v) => {
                        let item = LineItem {
                            sku: match str_field(&v, "sku") {
                                Ok(s) => s,
                                Err(r) => return r,
                            },
                            name: v.get("name").and_then(Value::as_str).unwrap_or("").to_string(),
                            unit_price: v.get("unit_price").and_then(Value::as_i64).unwrap_or(-1),
                            quantity: v.get("quantity").and_then(Value::as_i64).unwrap_or(1).max(0)
                                as u32,
                        };
                        match carts.add(id, item) {
                            Ok(()) => Response::new(Status::NO_CONTENT),
                            Err(e) => bad(e),
                        }
                    }
                    Err(r) => r,
                }
            });
        }
        {
            let carts = carts.clone();
            router.post("/carts/{id}/checkout", move |req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad cart id");
                };
                let promos = match body_json(&req) {
                    Ok(v) => match v.get("percent_off").and_then(Value::as_i64) {
                        Some(pct) => vec![Promotion::PercentOff(pct.max(0) as u32)],
                        None => vec![],
                    },
                    Err(_) => vec![],
                };
                match carts.checkout(id, &promos) {
                    Ok(r) => Response::json(
                        &json!({
                            "subtotal": (r.subtotal),
                            "discount": (r.discount),
                            "total": (r.total),
                            "lines": (r.items.len())
                        })
                        .to_compact(),
                    ),
                    Err(e) => bad(e),
                }
            });
        }

        // ---- message buffer ---------------------------------------------
        let queues = Arc::new(MessageBufferService::new(64));
        {
            let queues = queues.clone();
            router.post("/queues/{name}/messages", move |req, p| match body_json(&req) {
                Ok(v) => {
                    let Some(msg) = v.get("message").and_then(Value::as_str) else {
                        return bad("missing string field \"message\"");
                    };
                    if queues.send(p.get("name").unwrap_or(""), msg, Duration::from_millis(100)) {
                        Response::new(Status::ACCEPTED)
                    } else {
                        Response::error(Status::SERVICE_UNAVAILABLE, "queue full or closed")
                    }
                }
                Err(r) => r,
            });
        }
        {
            let queues = queues.clone();
            router.delete("/queues/{name}/messages", move |_req, p| {
                match queues.try_receive(p.get("name").unwrap_or("")) {
                    Some(msg) => Response::json(&json!({ "message": msg }).to_compact()),
                    None => Response::new(Status::NO_CONTENT),
                }
            });
        }

        // ---- mortgage + credit score --------------------------------------
        router.get("/credit/score", |req, _p| match req.query("ssn") {
            Some(ssn) if CreditScoreService::valid_ssn(&ssn) => {
                Response::json(&json!({ "score": (CreditScoreService::score(&ssn)) }).to_compact())
            }
            Some(_) => bad("SSN must contain nine digits"),
            None => Response::error(Status::BAD_REQUEST, "missing query parameter ssn"),
        });
        {
            let mortgage = Arc::new(MortgageService::default());
            let apply_ledger = ledger.clone();
            router.post("/mortgage/apply", move |req, _p| match body_json(&req) {
                Ok(v) => {
                    let app = Application {
                        name: v.get("name").and_then(Value::as_str).unwrap_or("").to_string(),
                        ssn: v.get("ssn").and_then(Value::as_str).unwrap_or("").to_string(),
                        annual_income: v
                            .get("annual_income")
                            .and_then(Value::as_i64)
                            .unwrap_or(0)
                            .max(0) as u64,
                        loan_amount: v
                            .get("loan_amount")
                            .and_then(Value::as_i64)
                            .unwrap_or(0)
                            .max(0) as u64,
                        term_years: v.get("term_years").and_then(Value::as_i64).unwrap_or(30).max(0)
                            as u32,
                    };
                    let key = req.idempotency_key().map(str::to_string);
                    let content = v.to_compact();
                    let mortgage = mortgage.clone();
                    let id = key.clone().unwrap_or_default();
                    let decide = move || {
                        let decision = match mortgage.decide(&app) {
                            Decision::Approved { score, rate_bps, monthly_payment } => json!({
                                "decision": "approved",
                                "score": score,
                                "rate_bps": rate_bps,
                                "monthly_payment": (monthly_payment as i64)
                            }),
                            Decision::Rejected { score, reasons } => json!({
                                "decision": "rejected",
                                "score": (score.map(|s| s as i64)),
                                "reasons": reasons
                            }),
                        };
                        let mut decision = decision;
                        if !id.is_empty() {
                            // The key doubles as the application id a
                            // compensator cancels by.
                            decision.set("application_id", Value::from(id.as_str()));
                        }
                        decision.to_compact()
                    };
                    match key {
                        // First submission executes; replays of the
                        // same key (gateway retry/hedge, workflow
                        // re-fire after a lost response) replay the
                        // cached decision instead of re-applying.
                        Some(k) => Response::json(&apply_ledger.apply(&k, &content, decide).0),
                        None => {
                            apply_ledger.note_keyless(&content);
                            Response::json(&decide())
                        }
                    }
                }
                Err(r) => r,
            });
            let cancel_ledger = ledger.clone();
            router.post("/mortgage/cancel", move |req, _p| match body_json(&req) {
                Ok(v) => match v.get("application_id").and_then(Value::as_str) {
                    Some(id) => {
                        let known = cancel_ledger.cancel(id);
                        Response::json(
                            &json!({ "cancelled": known, "application_id": id }).to_compact(),
                        )
                    }
                    None => bad("missing string field \"application_id\""),
                },
                Err(r) => r,
            });
            // Cancel by the idempotency key chosen up front, for
            // compensating a submission whose response was lost: an
            // unknown key leaves a tombstone that refuses a straggling
            // replay, so this is safe to call whether or not the
            // submission ever landed.
            let reserve_ledger = ledger.clone();
            router.post("/mortgage/cancel-reservation", move |req, _p| match body_json(&req) {
                Ok(v) => match v.get("application_id").and_then(Value::as_str) {
                    Some(id) => {
                        let landed = reserve_ledger.cancel_reservation(id);
                        Response::json(
                            &json!({ "cancelled": landed, "application_id": id }).to_compact(),
                        )
                    }
                    None => bad("missing string field \"application_id\""),
                },
                Err(r) => r,
            });
        }

        // ---- dynamic image generation --------------------------------------
        router.post("/charts/bar", |req, _p| match body_json(&req) {
            Ok(v) => {
                let title = v.get("title").and_then(Value::as_str).unwrap_or("CHART");
                let Some(arr) = v.get("series").and_then(Value::as_array) else {
                    return bad("missing array field \"series\"");
                };
                let series: Vec<(String, f64)> = arr
                    .iter()
                    .filter_map(|e| {
                        Some((e.get("label")?.as_str()?.to_string(), e.get("value")?.as_f64()?))
                    })
                    .collect();
                let img = image::bar_chart(title, &series, 320, 160);
                Response::new(Status::OK)
                    .with_header("Content-Type", "image/bmp")
                    .with_body_bytes(img.to_bmp())
            }
            Err(r) => r,
        });

        // ---- access control --------------------------------------------------
        let access = Arc::new(AccessControl::new(10_000));
        {
            let (access, clock) = (access.clone(), clock.clone());
            router.post("/auth/register", move |req, _p| match body_json(&req) {
                Ok(v) => {
                    let (user, pass) = match (str_field(&v, "username"), str_field(&v, "password"))
                    {
                        (Ok(u), Ok(p)) => (u, p),
                        (Err(r), _) | (_, Err(r)) => return r,
                    };
                    match access.register(&user, &pass, &["user"]) {
                        Ok(()) => {
                            let _ = clock.fetch_add(1, Ordering::Relaxed);
                            Response::new(Status::CREATED)
                        }
                        Err(e) => bad(e),
                    }
                }
                Err(r) => r,
            });
        }
        {
            let (access, clock) = (access.clone(), clock.clone());
            router.post("/auth/login", move |req, _p| match body_json(&req) {
                Ok(v) => {
                    let (user, pass) = match (str_field(&v, "username"), str_field(&v, "password"))
                    {
                        (Ok(u), Ok(p)) => (u, p),
                        (Err(r), _) | (_, Err(r)) => return r,
                    };
                    let now = clock.fetch_add(1, Ordering::Relaxed);
                    match access.login(&user, &pass, now) {
                        Ok(token) => Response::json(&json!({ "token": token }).to_compact()),
                        Err(e) => Response::error(Status::UNAUTHORIZED, &e.to_string()),
                    }
                }
                Err(r) => r,
            });
        }
        {
            let (access, clock) = (access, clock);
            router.get("/auth/whoami", move |req, _p| {
                let now = clock.fetch_add(1, Ordering::Relaxed);
                let token =
                    req.headers.get("Authorization").unwrap_or("").trim_start_matches("Bearer ");
                match access.authenticate(token, now) {
                    Ok(user) => Response::json(&json!({ "user": user }).to_compact()),
                    Err(e) => Response::error(Status::UNAUTHORIZED, &e.to_string()),
                }
            });
        }

        ServiceHost { router, ledger }
    }

    /// The mortgage submission ledger backing this host.
    pub fn ledger(&self) -> Arc<crate::ledger::SubmissionLedger> {
        self.ledger.clone()
    }
}

impl Handler for ServiceHost {
    fn handle(&self, req: Request) -> Response {
        self.router.handle(req)
    }
}

/// Typed contract for the REST mortgage service.
pub fn mortgage_contract() -> Contract {
    Contract::new("Mortgage", "urn:soc:mortgage")
        .operation(
            Operation::new("Apply")
                .input("name", XsdType::String)
                .input("ssn", XsdType::String)
                .input("annual_income", XsdType::Int)
                .input("loan_amount", XsdType::Int)
                .input("term_years", XsdType::Int)
                .output("decision", XsdType::String)
                .output("score", XsdType::Int)
                .doc("mortgage application decision from income, amount, and credit score"),
        )
        .operation(
            Operation::new("Cancel")
                .input("application_id", XsdType::String)
                .output("cancelled", XsdType::Boolean)
                .output("application_id", XsdType::String)
                .doc("withdraw a previously submitted application"),
        )
}

/// Typed contract for the REST password generator.
pub fn password_contract() -> Contract {
    Contract::new("Passwords", "urn:soc:passwords").operation(
        Operation::new("Generate")
            .input("length", XsdType::Int)
            .output("password", XsdType::String)
            .output("entropy_bits", XsdType::Double)
            .output("strength", XsdType::String)
            .doc("random strong password with an entropy estimate"),
    )
}

/// Typed contracts for the REST-bound catalog services, keyed by
/// descriptor id, paired with the base path their operations hang off.
/// The invocation convention for a REST contract is
/// `POST {base}/{operation name lowercased}` with a JSON body whose
/// fields are the operation's inputs; the response JSON carries the
/// outputs. (`Apply` on base `/mortgage` is `POST /mortgage/apply`.)
pub fn rest_contract(id: &str) -> Option<(Contract, &'static str)> {
    Some(match id {
        "crypto" => (encryption_contract(), "/crypto"),
        "passwords" => (password_contract(), "/passwords"),
        "mortgage" => (mortgage_contract(), "/mortgage"),
        _ => return None,
    })
}

/// The credit-score SOAP contract (also available RESTfully).
pub fn credit_score_contract() -> Contract {
    Contract::new("CreditScore", "urn:soc:credit").operation(
        Operation::new("GetScore")
            .input("ssn", XsdType::String)
            .output("score", XsdType::Int)
            .doc("deterministic synthetic credit score for an SSN"),
    )
}

/// Build the credit-score SOAP service.
pub fn credit_score_soap(endpoint: &str) -> SoapService {
    let mut svc = SoapService::new(credit_score_contract(), endpoint);
    svc.implement("GetScore", |params| {
        let ssn = params.get("ssn").cloned().unwrap_or_default();
        if !CreditScoreService::valid_ssn(&ssn) {
            return Err(soc_soap::SoapFault::client("SSN must contain nine digits"));
        }
        Ok(vec![("score".to_string(), CreditScoreService::score(&ssn).to_string())])
    });
    svc
}

/// The encryption SOAP contract.
pub fn encryption_contract() -> Contract {
    Contract::new("Encryption", "urn:soc:crypto")
        .operation(
            Operation::new("Encrypt")
                .input("passphrase", XsdType::String)
                .input("plaintext", XsdType::String)
                .output("ciphertext", XsdType::String),
        )
        .operation(
            Operation::new("Decrypt")
                .input("passphrase", XsdType::String)
                .input("ciphertext", XsdType::String)
                .output("plaintext", XsdType::String),
        )
}

/// Build the encryption SOAP service.
pub fn encryption_soap(endpoint: &str) -> SoapService {
    let mut svc = SoapService::new(encryption_contract(), endpoint);
    svc.implement("Encrypt", |params| {
        Ok(vec![(
            "ciphertext".to_string(),
            EncryptionService::encrypt_text(
                params.get("passphrase").map(String::as_str).unwrap_or(""),
                params.get("plaintext").map(String::as_str).unwrap_or(""),
            ),
        )])
    });
    svc.implement("Decrypt", |params| {
        EncryptionService::decrypt_text(
            params.get("passphrase").map(String::as_str).unwrap_or(""),
            params.get("ciphertext").map(String::as_str).unwrap_or(""),
        )
        .map(|p| vec![("plaintext".to_string(), p)])
        .map_err(soc_soap::SoapFault::client)
    });
    svc
}

/// Registry descriptors for everything hosted by [`host_all`].
pub fn catalog(rest_host: &str, soap_host: &str) -> Vec<ServiceDescriptor> {
    let rest = |id: &str, name: &str, path: &str, desc: &str, cat: &str, kw: &[&str]| {
        ServiceDescriptor::new(id, name, &format!("mem://{rest_host}{path}"), Binding::Rest)
            .describe(desc)
            .category(cat)
            .keywords(kw)
            .provider("asu-repository")
    };
    let mut services = vec![
        rest(
            "crypto",
            "Encryption Service",
            "/crypto/encrypt",
            "encrypts and decrypts text with a shared passphrase (XTEA)",
            "security",
            &["cipher", "encryption", "decryption"],
        ),
        rest(
            "auth",
            "Access Control Service",
            "/auth/login",
            "user registration, login tokens, and role checks",
            "security",
            &["authentication", "authorization", "token"],
        ),
        rest(
            "guess",
            "Number Guessing Game",
            "/guess/start",
            "random number guessing game with higher/lower feedback",
            "games",
            &["game", "random"],
        ),
        rest(
            "passwords",
            "Strong Password Generator",
            "/passwords/generate",
            "random strong password generation with entropy estimates",
            "security",
            &["password", "random", "entropy"],
        ),
        rest(
            "charts",
            "Dynamic Image Generation",
            "/charts/bar",
            "renders bar charts as BMP images on demand",
            "media",
            &["image", "chart", "graphics"],
        ),
        rest(
            "captcha",
            "Image Verifier",
            "/captcha/new",
            "random string image challenge (captcha) with one-shot verification",
            "security",
            &["captcha", "image", "verification"],
        ),
        rest(
            "cache",
            "Caching Service",
            "/cache/demo",
            "bounded LRU cache with TTL and hit statistics",
            "infrastructure",
            &["cache", "lru", "ttl"],
        ),
        rest(
            "cart",
            "Shopping Cart Service",
            "/carts",
            "shopping carts with line items, totals, and promotions",
            "commerce",
            &["cart", "shopping", "checkout"],
        ),
        rest(
            "queue",
            "Messaging Buffer Service",
            "/queues/demo/messages",
            "named bounded message queues (producer/consumer)",
            "infrastructure",
            &["queue", "buffer", "messaging"],
        ),
        rest(
            "mortgage",
            "Mortgage Approval Service",
            "/mortgage/apply",
            "mortgage application approval using the credit score service",
            "finance",
            &["mortgage", "loan", "approval"],
        ),
        ServiceDescriptor::new(
            "credit-soap",
            "Credit Score Service (SOAP)",
            &format!("mem://{soap_host}/credit"),
            Binding::Soap,
        )
        .describe("deterministic synthetic credit score lookup over SOAP with WSDL")
        .category("finance")
        .keywords(&["credit", "score", "soap", "wsdl"])
        .provider("asu-repository"),
        ServiceDescriptor::new(
            "crypto-soap",
            "Encryption Service (SOAP)",
            &format!("mem://{soap_host}/crypto"),
            Binding::Soap,
        )
        .describe("encrypt/decrypt over SOAP with a WSDL contract")
        .category("security")
        .keywords(&["cipher", "soap", "wsdl"])
        .provider("asu-repository"),
    ];
    // Advertise contracts where they exist, so crawlers can index
    // typed port signatures instead of opaque endpoints.
    for d in &mut services {
        match d.binding {
            Binding::Soap => d.wsdl = Some(format!("{}?wsdl", d.endpoint)),
            _ if rest_contract(&d.id).is_some() => {
                d.wsdl = Some(format!("mem://{rest_host}/wsdl/{}", d.id));
            }
            _ => {}
        }
    }
    services
}

/// Host the whole repository on `net`: REST at `mem://services.asu`,
/// SOAP at `mem://soap.asu/{credit,crypto}`. Returns the catalog.
pub fn host_all(net: &MemNetwork, seed: u64) -> Vec<ServiceDescriptor> {
    net.host("services.asu", ServiceHost::new(seed));

    // One handler multiplexing the two SOAP endpoints by path.
    let credit = credit_score_soap("mem://soap.asu/credit");
    let crypto = encryption_soap("mem://soap.asu/crypto");
    net.host("soap.asu", move |req: Request| {
        if req.path().starts_with("/credit") {
            credit.handle(req)
        } else if req.path().starts_with("/crypto") {
            crypto.handle(req)
        } else {
            Response::error(Status::NOT_FOUND, "unknown SOAP endpoint")
        }
    });

    catalog("services.asu", "soap.asu")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::mem::Transport;
    use soc_rest::RestClient;
    use soc_soap::client::SoapClient;

    fn setup() -> (MemNetwork, RestClient) {
        let net = MemNetwork::new();
        host_all(&net, 42);
        let client = RestClient::new(Arc::new(net.clone()));
        (net, client)
    }

    #[test]
    fn health_endpoint() {
        let (_net, c) = setup();
        let v = c.get("mem://services.asu/health").unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("up"));
    }

    #[test]
    fn crypto_round_trip_over_rest() {
        let (_net, c) = setup();
        let enc = c
            .post(
                "mem://services.asu/crypto/encrypt",
                &json!({ "passphrase": "pw", "plaintext": "top secret" }),
            )
            .unwrap();
        let cipher = enc.get("ciphertext").and_then(Value::as_str).unwrap().to_string();
        let dec = c
            .post(
                "mem://services.asu/crypto/decrypt",
                &json!({ "passphrase": "pw", "ciphertext": cipher }),
            )
            .unwrap();
        assert_eq!(dec.get("plaintext").and_then(Value::as_str), Some("top secret"));
    }

    #[test]
    fn guessing_game_over_rest() {
        let (_net, c) = setup();
        let start = c.post("mem://services.asu/guess/start", &json!({ "max": 50 })).unwrap();
        let game = start.get("game").and_then(Value::as_i64).unwrap();
        // Binary search over REST.
        let (mut lo, mut hi) = (1i64, 50i64);
        let mut solved = false;
        for _ in 0..8 {
            let mid = (lo + hi) / 2;
            let v = c
                .post(&format!("mem://services.asu/guess/{game}"), &json!({ "guess": mid }))
                .unwrap();
            match v.get("feedback").and_then(Value::as_str) {
                Some("correct") => {
                    solved = true;
                    break;
                }
                Some("higher") => lo = mid + 1,
                Some("lower") => hi = mid - 1,
                other => panic!("{other:?}"),
            }
        }
        assert!(solved);
    }

    #[test]
    fn captcha_over_rest_with_service_side_verify() {
        let (_net, c) = setup();
        let ch = c.post("mem://services.asu/captcha/new", &json!({})).unwrap();
        assert!(ch.get("image_bmp_base64").and_then(Value::as_str).unwrap().len() > 100);
        let id = ch.get("id").and_then(Value::as_i64).unwrap();
        let fail = c
            .post("mem://services.asu/captcha/verify", &json!({ "id": id, "answer": "WRONG!" }))
            .unwrap();
        assert_eq!(fail.get("result").and_then(Value::as_str), Some("fail"));
    }

    #[test]
    fn cart_flow_over_rest() {
        let (_net, c) = setup();
        let cart = c.post("mem://services.asu/carts", &json!({})).unwrap();
        let id = cart.get("cart").and_then(Value::as_i64).unwrap();
        c.post(
            &format!("mem://services.asu/carts/{id}/items"),
            &json!({ "sku": "bk", "name": "book", "unit_price": 4999, "quantity": 2 }),
        )
        .unwrap();
        let receipt = c
            .post(&format!("mem://services.asu/carts/{id}/checkout"), &json!({ "percent_off": 10 }))
            .unwrap();
        assert_eq!(receipt.get("subtotal").and_then(Value::as_i64), Some(9998));
        assert_eq!(receipt.get("discount").and_then(Value::as_i64), Some(999));
    }

    #[test]
    fn cache_over_rest() {
        let (_net, c) = setup();
        assert!(c.get("mem://services.asu/cache/k").is_err()); // miss: 404
        c.put("mem://services.asu/cache/k", &json!({ "value": "v" })).unwrap();
        let v = c.get("mem://services.asu/cache/k").unwrap();
        assert_eq!(v.get("value").and_then(Value::as_str), Some("v"));
    }

    #[test]
    fn queue_over_rest() {
        let (_net, c) = setup();
        c.post("mem://services.asu/queues/q1/messages", &json!({ "message": "m1" })).unwrap();
        let got = c.delete("mem://services.asu/queues/q1/messages").unwrap();
        assert_eq!(got.get("message").and_then(Value::as_str), Some("m1"));
        // Empty queue: 204 → Null.
        assert_eq!(c.delete("mem://services.asu/queues/q1/messages").unwrap(), Value::Null);
    }

    #[test]
    fn mortgage_and_credit_over_rest() {
        let (_net, c) = setup();
        let score = c.get("mem://services.asu/credit/score?ssn=123-45-6789").unwrap();
        let s = score.get("score").and_then(Value::as_i64).unwrap();
        assert!((300..=850).contains(&s));
        let v = c
            .post(
                "mem://services.asu/mortgage/apply",
                &json!({
                    "name": "Ann", "ssn": "123-45-6789",
                    "annual_income": 90000, "loan_amount": 200000, "term_years": 30
                }),
            )
            .unwrap();
        assert!(matches!(
            v.get("decision").and_then(Value::as_str),
            Some("approved") | Some("rejected")
        ));
    }

    #[test]
    fn keyed_mortgage_apply_dedupes_across_replicas() {
        let net = MemNetwork::new();
        let ledger = Arc::new(crate::ledger::SubmissionLedger::new());
        net.host("a.replica", ServiceHost::with_ledger(1, ledger.clone()));
        net.host("b.replica", ServiceHost::with_ledger(2, ledger.clone()));
        let body = json!({
            "name": "Ann", "ssn": "123-45-6789",
            "annual_income": 90000, "loan_amount": 200000, "term_years": 30
        })
        .to_compact();
        let keyed = |host: &str| {
            Request::post(format!("mem://{host}/mortgage/apply"), Vec::new())
                .with_text("application/json", &body)
                .with_idempotency_key("app-123")
        };
        let first = net.send(keyed("a.replica")).unwrap();
        // A replay of the same key on the *other* replica must not
        // open a second application.
        let second = net.send(keyed("b.replica")).unwrap();
        assert_eq!(first.body, second.body);
        let text = String::from_utf8(first.body).unwrap();
        assert!(text.contains("\"application_id\":\"app-123\""), "{text}");
        assert_eq!(ledger.total_executions(), 1);
        assert_eq!(ledger.total_deduped(), 1);
        assert_eq!(ledger.max_executions_per_content(), 1);

        // Cancellation balances the submission.
        let cancel = net
            .send(Request::post("mem://b.replica/mortgage/cancel", Vec::new()).with_text(
                "application/json",
                &json!({ "application_id": "app-123" }).to_compact(),
            ))
            .unwrap();
        let text = String::from_utf8(cancel.body).unwrap();
        assert!(text.contains("\"cancelled\":true"), "{text}");
        assert_eq!(ledger.open_applications(), 0);
        assert_eq!(ledger.orphan_cancels(), 0);
    }

    #[test]
    fn chart_image_over_rest() {
        let (net, _c) = setup();
        let resp = net
            .send(
                Request::post("mem://services.asu/charts/bar", Vec::new()).with_text(
                    "application/json",
                    &json!({
                        "title": "T",
                        "series": [ {"label": "a", "value": 3.0}, {"label": "b", "value": 7.0} ]
                    })
                    .to_compact(),
                ),
            )
            .unwrap();
        assert_eq!(resp.headers.get("Content-Type"), Some("image/bmp"));
        assert_eq!(&resp.body[0..2], b"BM");
    }

    #[test]
    fn auth_flow_over_rest() {
        let (_net, c) = setup();
        c.post(
            "mem://services.asu/auth/register",
            &json!({ "username": "ann", "password": "Str0ngPass" }),
        )
        .unwrap();
        let login = c
            .post(
                "mem://services.asu/auth/login",
                &json!({ "username": "ann", "password": "Str0ngPass" }),
            )
            .unwrap();
        let token = login.get("token").and_then(Value::as_str).unwrap().to_string();
        let who = c
            .send_raw(
                Request::get("mem://services.asu/auth/whoami")
                    .with_header("Authorization", &format!("Bearer {token}")),
            )
            .unwrap();
        assert!(who.text_body().unwrap().contains("ann"));
        // Bad password → 401.
        assert!(c
            .post(
                "mem://services.asu/auth/login",
                &json!({ "username": "ann", "password": "Nope12345" })
            )
            .is_err());
    }

    #[test]
    fn soap_bindings_work() {
        let (net, _c) = setup();
        let soap = SoapClient::new(Arc::new(net));
        let out = soap
            .discover_and_call("mem://soap.asu/credit", "GetScore", &[("ssn", "123-45-6789")])
            .unwrap();
        let score: i64 = out["score"].parse().unwrap();
        assert!((300..=850).contains(&score));

        let contract = encryption_contract();
        let enc = soap
            .call(
                "mem://soap.asu/crypto",
                &contract,
                "Encrypt",
                &[("passphrase", "k"), ("plaintext", "soap secret")],
            )
            .unwrap();
        let dec = soap
            .call(
                "mem://soap.asu/crypto",
                &contract,
                "Decrypt",
                &[("passphrase", "k"), ("ciphertext", &enc["ciphertext"])],
            )
            .unwrap();
        assert_eq!(dec["plaintext"], "soap secret");
    }

    #[test]
    fn rest_and_soap_agree_on_credit_scores() {
        let (net, c) = setup();
        let rest_score = c
            .get("mem://services.asu/credit/score?ssn=987654321")
            .unwrap()
            .get("score")
            .and_then(Value::as_i64)
            .unwrap();
        let soap = SoapClient::new(Arc::new(net));
        let soap_score: i64 = soap
            .discover_and_call("mem://soap.asu/credit", "GetScore", &[("ssn", "987654321")])
            .unwrap()["score"]
            .parse()
            .unwrap();
        assert_eq!(rest_score, soap_score);
    }

    #[test]
    fn catalog_descriptors_resolve() {
        let (net, _c) = setup();
        let catalog = catalog("services.asu", "soap.asu");
        assert_eq!(catalog.len(), 12);
        // Every REST descriptor's endpoint host must answer /health.
        let ids: Vec<&str> = catalog.iter().map(|d| d.id.as_str()).collect();
        assert!(ids.contains(&"mortgage"));
        assert!(ids.contains(&"credit-soap"));
        let resp = net.send(Request::get("mem://services.asu/health")).unwrap();
        assert!(resp.status.is_success());
    }

    #[test]
    fn catalog_wsdl_links_resolve_to_typed_contracts() {
        let net = MemNetwork::new();
        let catalog = host_all(&net, 42);
        let typed: Vec<_> = catalog.iter().filter(|d| d.wsdl.is_some()).collect();
        assert!(typed.len() >= 5, "rest + soap contracts expected, got {}", typed.len());
        for d in &typed {
            let url = d.wsdl.clone().unwrap();
            let resp = net.send(Request::get(&url)).unwrap();
            assert!(resp.status.is_success(), "{}: {url}", d.id);
            let parsed = soc_soap::wsdl::parse(resp.text_body().unwrap()).unwrap();
            assert!(!parsed.contract.operations.is_empty(), "{}", d.id);
            // Every operation must carry complete message parts — this
            // is what a crawler indexes.
            for op in &parsed.contract.operations {
                assert!(
                    !op.inputs.is_empty() && !op.outputs.is_empty(),
                    "{}::{} lost its parts",
                    d.id,
                    op.name
                );
            }
        }
        // Spot-check that real (non-string) types survive the trip.
        let resp = net.send(Request::get("mem://services.asu/wsdl/mortgage")).unwrap();
        let parsed = soc_soap::wsdl::parse(resp.text_body().unwrap()).unwrap();
        // Host-relative location: the crawler resolves it against the
        // URL the WSDL was fetched from.
        assert_eq!(parsed.endpoint, "/mortgage");
        let apply = parsed.contract.find("Apply").unwrap();
        let income = apply.inputs.iter().find(|p| p.name == "annual_income").unwrap();
        assert_eq!(income.ty, XsdType::Int);
        assert_eq!(apply.outputs.iter().find(|p| p.name == "score").unwrap().ty, XsdType::Int);
    }
}
