//! Arena-backed DOM tree.
//!
//! Nodes live in a flat `Vec` owned by the [`Document`]; [`NodeId`]s are
//! indices into that arena. This gives cheap traversal and mutation with
//! no `Rc`/`RefCell` overhead, which matters for the XML-heavy paths
//! (SOAP envelopes, registry documents) and mirrors the
//! performance-first style of the rest of the workspace.

use crate::error::{Position, XmlError, XmlResult};
use crate::name::QName;
use crate::reader::{Attribute, ReaderConfig, XmlEvent, XmlReader};
use crate::writer::XmlWriter;

/// Index of a node within its owning [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a name and attributes.
    Element {
        /// Element name.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// Character data.
    Text(String),
    /// A CDATA section (serialized back as CDATA).
    CData(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

/// A node in the arena: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// What kind of node this is and its content.
    pub kind: NodeKind,
    /// Parent node, `None` for the root element.
    pub parent: Option<NodeId>,
    /// Children in document order (empty for non-elements).
    pub children: Vec<NodeId>,
}

/// An XML document: an arena of nodes with a distinguished root element.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Create a document whose root element has the given name.
    pub fn new(root_name: impl Into<QName>) -> Self {
        let root = Node {
            kind: NodeKind::Element { name: root_name.into(), attributes: Vec::new() },
            parent: None,
            children: Vec::new(),
        };
        Document { nodes: vec![root], root: NodeId(0) }
    }

    /// Parse a document from a string, dropping whitespace-only text
    /// (use [`Document::parse_str_keep_whitespace`] to keep it).
    pub fn parse_str(input: &str) -> XmlResult<Self> {
        Self::parse_with(input, ReaderConfig { trim_whitespace_text: true, skip_comments: false })
    }

    /// Parse preserving whitespace-only text nodes.
    pub fn parse_str_keep_whitespace(input: &str) -> XmlResult<Self> {
        Self::parse_with(input, ReaderConfig::default())
    }

    fn parse_with(input: &str, config: ReaderConfig) -> XmlResult<Self> {
        let mut reader = XmlReader::with_config(input, config);
        let mut nodes: Vec<Node> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;

        loop {
            let ev = reader.next_event()?;
            match ev {
                XmlEvent::StartDocument { .. } | XmlEvent::Doctype(_) => {}
                XmlEvent::StartElement { name, attributes } => {
                    let id = NodeId(nodes.len());
                    nodes.push(Node {
                        kind: NodeKind::Element { name, attributes },
                        parent: stack.last().copied(),
                        children: Vec::new(),
                    });
                    if let Some(&parent) = stack.last() {
                        nodes[parent.0].children.push(id);
                    } else {
                        root = Some(id);
                    }
                    stack.push(id);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                XmlEvent::Text(t) | XmlEvent::CData(t)
                    if stack.is_empty() && t.trim().is_empty() => {}
                XmlEvent::Text(t) => {
                    Self::push_leaf(&mut nodes, &mut stack, NodeKind::Text(t))?;
                }
                XmlEvent::CData(t) => {
                    Self::push_leaf(&mut nodes, &mut stack, NodeKind::CData(t))?;
                }
                XmlEvent::Comment(t) => {
                    // Comments outside the root are legal; we drop them to
                    // keep the arena rooted at a single element.
                    if !stack.is_empty() {
                        Self::push_leaf(&mut nodes, &mut stack, NodeKind::Comment(t))?;
                    }
                }
                XmlEvent::ProcessingInstruction { target, data } => {
                    if !stack.is_empty() {
                        Self::push_leaf(
                            &mut nodes,
                            &mut stack,
                            NodeKind::ProcessingInstruction { target, data },
                        )?;
                    }
                }
                XmlEvent::EndDocument => break,
            }
        }

        let root = root.ok_or_else(|| XmlError::NotWellFormed {
            pos: Position::start(),
            detail: "no root element".into(),
        })?;
        Ok(Document { nodes, root })
    }

    fn push_leaf(nodes: &mut Vec<Node>, stack: &mut [NodeId], kind: NodeKind) -> XmlResult<()> {
        let &parent = stack.last().ok_or_else(|| XmlError::NotWellFormed {
            pos: Position::start(),
            detail: "content outside root".into(),
        })?;
        let id = NodeId(nodes.len());
        nodes.push(Node { kind, parent: Some(parent), children: Vec::new() });
        nodes[parent.0].children.push(id);
        Ok(())
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node. Panics on a stale id (ids are never reused, so this
    /// only fires for ids from a *different* document).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Total number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds only the root element.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Element name, if `id` is an element.
    pub fn name(&self, id: NodeId) -> Option<&QName> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute value by unqualified name, if `id` is an element.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes
                .iter()
                .find(|a| a.name.to_string() == name || a.name.local == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// All attributes of an element (empty slice for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent of `id`.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Child *elements* of `id` in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(|&c| matches!(self.node(c).kind, NodeKind::Element { .. }))
    }

    /// First child element with the given local name.
    pub fn find_child(&self, id: NodeId, local: &str) -> Option<NodeId> {
        self.child_elements(id).find(|&c| self.name(c).is_some_and(|n| n.local == local))
    }

    /// All child elements with the given local name.
    pub fn find_children<'a>(
        &'a self,
        id: NodeId,
        local: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id).filter(move |&c| self.name(c).is_some_and(|n| n.local == local))
    }

    /// Concatenated text of all descendant text/CDATA nodes of `id`.
    pub fn text(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) | NodeKind::CData(t) => out.push_str(t),
            NodeKind::Element { .. } => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
            _ => {}
        }
    }

    /// Text of the first child element named `local`, if present.
    /// The workhorse accessor for protocol decoding.
    pub fn child_text(&self, id: NodeId, local: &str) -> Option<String> {
        self.find_child(id, local).map(|c| self.text(c))
    }

    /// Depth-first pre-order traversal starting at `id` (inclusive).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut work = vec![id];
        while let Some(n) = work.pop() {
            out.push(n);
            // Push children reversed so pop order is document order.
            for &c in self.children(n).iter().rev() {
                work.push(c);
            }
        }
        out
    }

    /// Resolve a namespace prefix at `id` by walking `xmlns` declarations
    /// up the ancestor chain. An empty prefix resolves the default
    /// namespace.
    pub fn resolve_prefix(&self, id: NodeId, prefix: &str) -> Option<&str> {
        let mut cur = Some(id);
        while let Some(n) = cur {
            if let NodeKind::Element { attributes, .. } = &self.node(n).kind {
                for a in attributes {
                    if a.name.declared_prefix() == Some(prefix) {
                        return Some(&a.value);
                    }
                }
            }
            cur = self.node(n).parent;
        }
        match prefix {
            "xml" => Some("http://www.w3.org/XML/1998/namespace"),
            _ => None,
        }
    }

    /// Namespace URI of the element's own name.
    pub fn namespace(&self, id: NodeId) -> Option<&str> {
        let name = self.name(id)?;
        self.resolve_prefix(id, &name.prefix)
    }

    // ---- mutation -------------------------------------------------------

    /// Append a new child element to `parent`, returning its id.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<QName>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Element { name: name.into(), attributes: Vec::new() },
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Append a text node to `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Text(text.into()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Append a CDATA node to `parent`.
    pub fn add_cdata(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::CData(text.into()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Set (or replace) an attribute on an element. Panics if `id` is not
    /// an element.
    pub fn set_attr(&mut self, id: NodeId, name: impl Into<QName>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match &mut self.nodes[id.0].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attributes.push(Attribute { name, value });
                }
            }
            _ => panic!("set_attr on a non-element node"),
        }
    }

    /// Convenience: append `<name>text</name>` under `parent` and return
    /// the new element id.
    pub fn add_text_element(
        &mut self,
        parent: NodeId,
        name: impl Into<QName>,
        text: impl Into<String>,
    ) -> NodeId {
        let el = self.add_element(parent, name);
        self.add_text(el, text);
        el
    }

    /// Detach `id` from its parent. The node stays in the arena (ids are
    /// stable) but no longer appears in traversals.
    pub fn detach(&mut self, id: NodeId) {
        if let Some(parent) = self.nodes[id.0].parent.take() {
            self.nodes[parent.0].children.retain(|&c| c != id);
        }
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` as a new child of
    /// `parent` in `self`. Returns the id of the copied root.
    pub fn graft(&mut self, parent: NodeId, src: &Document, src_id: NodeId) -> NodeId {
        let new_id = match &src.node(src_id).kind {
            NodeKind::Element { name, attributes } => {
                let el = self.add_element(parent, name.clone());
                match &mut self.nodes[el.0].kind {
                    NodeKind::Element { attributes: dst, .. } => *dst = attributes.clone(),
                    _ => unreachable!(),
                }
                el
            }
            other => {
                let id = NodeId(self.nodes.len());
                self.nodes.push(Node {
                    kind: other.clone(),
                    parent: Some(parent),
                    children: Vec::new(),
                });
                self.nodes[parent.0].children.push(id);
                id
            }
        };
        for &c in src.children(src_id) {
            self.graft(new_id, src, c);
        }
        new_id
    }

    // ---- serialization ---------------------------------------------------

    /// Serialize compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::compact();
        w.write_document(self);
        w.finish()
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty_xml(&self) -> String {
        let mut w = XmlWriter::pretty();
        w.write_document(self);
        w.finish()
    }
}

impl std::fmt::Display for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse_str(
            "<catalog><service id='s1'><name>echo</name><cost>0</cost></service></catalog>",
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(doc.name(root).unwrap().local, "catalog");
        let svc = doc.find_child(root, "service").unwrap();
        assert_eq!(doc.attr(svc, "id"), Some("s1"));
        assert_eq!(doc.child_text(svc, "name").as_deref(), Some("echo"));
        assert_eq!(doc.child_text(svc, "cost").as_deref(), Some("0"));
        assert_eq!(doc.child_text(svc, "missing"), None);
    }

    #[test]
    fn build_and_serialize() {
        let mut doc = Document::new("order");
        doc.set_attr(doc.root(), "id", "42");
        let item = doc.add_element(doc.root(), "item");
        doc.add_text(item, "book");
        assert_eq!(doc.to_xml(), r#"<order id="42"><item>book</item></order>"#);
    }

    #[test]
    fn round_trip_parse_serialize_parse() {
        let src = r#"<a x="1"><b>t &amp; u</b><c/><![CDATA[raw <stuff>]]></a>"#;
        let doc = Document::parse_str(src).unwrap();
        let ser = doc.to_xml();
        let doc2 = Document::parse_str(&ser).unwrap();
        assert_eq!(doc.text(doc.root()), doc2.text(doc2.root()));
        assert_eq!(ser, doc2.to_xml());
    }

    #[test]
    fn text_concatenates_descendants() {
        let doc = Document::parse_str("<p>Hello <b>brave</b> world</p>").unwrap();
        assert_eq!(doc.text(doc.root()), "Hello brave world");
    }

    #[test]
    fn descendants_in_document_order() {
        let doc = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<_> = doc
            .descendants(doc.root())
            .into_iter()
            .filter_map(|n| doc.name(n).map(|q| q.local.clone()))
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn namespace_resolution_walks_ancestors() {
        let doc = Document::parse_str(
            "<s:Envelope xmlns:s='http://schemas.xmlsoap.org/soap/envelope/' xmlns='urn:default'>\
             <s:Body><op/></s:Body></s:Envelope>",
        )
        .unwrap();
        let body = doc.find_child(doc.root(), "Body").unwrap();
        let op = doc.find_child(body, "op").unwrap();
        assert_eq!(doc.namespace(body), Some("http://schemas.xmlsoap.org/soap/envelope/"));
        assert_eq!(doc.namespace(op), Some("urn:default"));
        assert_eq!(doc.resolve_prefix(op, "nope"), None);
    }

    #[test]
    fn detach_removes_from_traversal() {
        let mut doc = Document::parse_str("<a><b/><c/></a>").unwrap();
        let b = doc.find_child(doc.root(), "b").unwrap();
        doc.detach(b);
        assert!(doc.find_child(doc.root(), "b").is_none());
        assert!(doc.find_child(doc.root(), "c").is_some());
    }

    #[test]
    fn graft_copies_subtree_between_documents() {
        let src = Document::parse_str("<x><item id='1'><v>9</v></item></x>").unwrap();
        let item = src.find_child(src.root(), "item").unwrap();
        let mut dst = Document::new("basket");
        dst.graft(dst.root(), &src, item);
        assert_eq!(dst.to_xml(), r#"<basket><item id="1"><v>9</v></item></basket>"#);
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut doc = Document::new("a");
        doc.set_attr(doc.root(), "k", "1");
        doc.set_attr(doc.root(), "k", "2");
        assert_eq!(doc.attr(doc.root(), "k"), Some("2"));
        assert_eq!(doc.attributes(doc.root()).len(), 1);
    }

    #[test]
    fn whitespace_dropped_by_default_kept_on_request() {
        let src = "<a>\n  <b/>\n</a>";
        let trimmed = Document::parse_str(src).unwrap();
        assert_eq!(trimmed.children(trimmed.root()).len(), 1);
        let kept = Document::parse_str_keep_whitespace(src).unwrap();
        assert_eq!(kept.children(kept.root()).len(), 3);
    }

    #[test]
    fn pretty_print_indents() {
        let doc = Document::parse_str("<a><b>t</b></a>").unwrap();
        let pretty = doc.to_pretty_xml();
        assert!(pretty.contains("\n  <b>"));
    }

    #[test]
    fn find_children_filters_by_name() {
        let doc = Document::parse_str("<a><i/><j/><i/></a>").unwrap();
        assert_eq!(doc.find_children(doc.root(), "i").count(), 2);
    }
}
