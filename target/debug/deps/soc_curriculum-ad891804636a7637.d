/root/repo/target/debug/deps/soc_curriculum-ad891804636a7637.d: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_curriculum-ad891804636a7637.rmeta: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs Cargo.toml

crates/soc-curriculum/src/lib.rs:
crates/soc-curriculum/src/acm.rs:
crates/soc-curriculum/src/chart.rs:
crates/soc-curriculum/src/enrollment.rs:
crates/soc-curriculum/src/evaluation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
