//! Per-operation overhead of the observability plane.
//!
//! Tracing earns its keep only if the instrumented fast path stays
//! cheap: a span that loses the head-based sampling coin toss must cost
//! well under a microsecond, or nobody leaves the instrumentation on.
//! This harness measures each primitive the hot paths call — span
//! creation (sampled out and recorded), counter increments, histogram
//! observations, and `traceparent` encode/decode — and **asserts** the
//! sampled-out span budget, so `cargo bench --bench observe` is an
//! executable acceptance check, not just a table.
//!
//! Not a Criterion harness: the budget assert needs a hard pass/fail
//! and the loop bodies are nanosecond-scale, where a plain
//! warm-up + timed-loop measurement is both faster and steadier.

use std::hint::black_box;
use std::time::Instant;

use soc_observe::{SpanId, SpanKind, TraceContext, TraceId};

/// Iterations per row; each body is nanoseconds, so the whole run stays
/// well under a second.
const ITERS: u32 = 200_000;

/// Hard ceiling on a sampled-out span (create + context + drop), in
/// nanoseconds. CI fails if instrumentation-off overhead regresses
/// past this.
const BUDGET_SAMPLED_OUT_NS: f64 = 1_000.0;

fn bench(name: &str, mut f: impl FnMut()) -> f64 {
    for _ in 0..ITERS / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / ITERS as f64;
    println!("{name:<24} {ns:>10.1} ns/op");
    ns
}

fn main() {
    println!("observability plane overhead ({ITERS} iterations per row)");
    println!("{:<24} {:>13}", "operation", "cost");

    // A span that loses the sampling coin toss: carries context for
    // propagation but must never allocate or touch the store.
    soc_observe::set_sample_rate(0.0);
    let sampled_out = bench("span_sampled_out", || {
        let span = soc_observe::span(black_box("bench.noop"), SpanKind::Internal);
        black_box(span.context());
    });

    // The full price when sampled: allocate, attribute, record on drop.
    soc_observe::set_sample_rate(1.0);
    bench("span_recorded", || {
        let mut span = soc_observe::span(black_box("bench.recorded"), SpanKind::Internal);
        span.set_attr("k", "v");
        drop(span);
    });

    let counter = soc_observe::metrics().counter("bench_observe_total", &[]);
    bench("counter_inc", || counter.inc());

    let histogram = soc_observe::metrics().histogram("bench_observe_us", &[]);
    bench("histogram_observe", || histogram.observe(black_box(17)));

    let ctx = TraceContext {
        trace_id: TraceId(0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736),
        span_id: SpanId(0x00f0_67aa_0ba9_02b7),
        sampled: true,
    };
    bench("traceparent_roundtrip", || {
        let wire = black_box(&ctx).to_traceparent();
        black_box(TraceContext::parse_traceparent(&wire));
    });

    assert!(
        sampled_out < BUDGET_SAMPLED_OUT_NS,
        "sampled-out span costs {sampled_out:.1} ns/op, over the {BUDGET_SAMPLED_OUT_NS} ns budget"
    );
    println!("PASS: sampled-out span {sampled_out:.1} ns/op (budget {BUDGET_SAMPLED_OUT_NS} ns)");
}
