/root/repo/target/debug/deps/soc_webapp-4efe61d301e24cce.d: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

/root/repo/target/debug/deps/soc_webapp-4efe61d301e24cce: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

crates/soc-webapp/src/lib.rs:
crates/soc-webapp/src/account_app.rs:
crates/soc-webapp/src/session.rs:
crates/soc-webapp/src/templates.rs:
crates/soc-webapp/src/viewstate.rs:
