//! The write-ahead log: append-only segment files with CRC-framed
//! records, group-commit batching, an fsync-policy knob, and
//! snapshot-then-truncate compaction.
//!
//! ## On-disk format
//!
//! ```text
//! dir/
//!   seg-00000000000000000001.wal     segment: records 1..N
//!   seg-00000000000000000421.wal     segment: records 421..
//!   snap-00000000000000000420.snap   state snapshot as of lsn 420
//!
//! segment  = magic "SOCWAL1\n" | base_lsn u64 LE | record*
//! record   = len u32 LE | crc32(payload) u32 LE | payload
//! snapshot = magic "SOCSNP1\n" | lsn u64 LE | len u64 LE
//!          | crc32(payload) u32 LE | payload
//! ```
//!
//! Record LSNs are implicit: the `i`-th record of a segment has
//! `lsn = base_lsn + i`. Segments chain contiguously; recovery refuses
//! a gap.
//!
//! ## Durability contract
//!
//! [`Wal::append`] returns only once the record is durable under the
//! configured [`FsyncPolicy`]. Concurrent appenders are batched: one
//! thread becomes the *flush leader*, serializes every pending record
//! into a single `write(2)`, issues one fsync for the whole batch, and
//! wakes the rest — the group-commit schedule that amortizes the sync
//! cost across however many appenders pile up while the previous fsync
//! is in flight.
//!
//! ## Recovery contract
//!
//! Replay is **prefix-consistent or loud**: a torn or corrupt record in
//! the *final* segment truncates the log at the last good frame (the
//! records after it were never acknowledged durable, or the disk ate
//! them — either way the state machine sees a clean prefix). Damage
//! anywhere *before* intact records — a corrupt frame in a non-final
//! segment, a base-LSN gap between segments, a snapshot whose history
//! has been compacted away — fails [`Wal::open`] with
//! [`StoreError::Corrupt`] instead of silently skipping records.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::{crc32, StoreError, StoreResult};

/// Log sequence number: 1-based, dense, monotonically increasing.
pub type Lsn = u64;

/// Segment file name for `base_lsn`.
fn seg_name(base: Lsn) -> String {
    format!("seg-{base:020}.wal")
}

/// Snapshot file name for `lsn`.
fn snap_name(lsn: Lsn) -> String {
    format!("snap-{lsn:020}.snap")
}

const SEG_MAGIC: &[u8; 8] = b"SOCWAL1\n";
const SNAP_MAGIC: &[u8; 8] = b"SOCSNP1\n";
const SEG_HEADER: u64 = 16;
const FRAME_HEADER: usize = 8;

/// When (and whether) appends are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// One fsync per record — the classic safe-but-slow baseline the
    /// store bench compares group commit against.
    Always,
    /// One fsync per group-commit batch (default): every acknowledged
    /// record is durable, but concurrent appenders share the sync.
    Batch,
    /// Never fsync: records are written to the OS page cache and
    /// survive process crashes but not power loss. For caches and
    /// benches that isolate the framing cost.
    Never,
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the active one exceeds this.
    pub segment_bytes: u64,
    /// Fsync schedule for appends.
    pub fsync: FsyncPolicy,
    /// Refuse records larger than this (also the recovery bound that
    /// makes a garbage length field fail loudly instead of allocating).
    pub max_record_bytes: u32,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::Batch,
            max_record_bytes: 16 * 1024 * 1024,
        }
    }
}

/// What [`Wal::open`] recovered from disk.
pub struct Recovery {
    /// Newest valid snapshot, as `(lsn, state_bytes)` — restore this
    /// first, then apply [`Recovery::records`].
    pub snapshot: Option<(Lsn, Vec<u8>)>,
    /// Records after the snapshot, ascending by LSN.
    pub records: Vec<(Lsn, Vec<u8>)>,
    /// Bytes dropped from a torn tail, if any (unacknowledged suffix).
    pub truncated_bytes: u64,
}

/// Appender-side log state, guarded by one mutex with a condvar for
/// the group-commit handoff.
struct LogState {
    /// LSN the next [`Wal::submit`] will stamp.
    next_lsn: Lsn,
    /// Highest LSN flushed under the configured policy.
    durable_lsn: Lsn,
    /// Submitted but not yet flushed records.
    pending: Vec<(Lsn, Vec<u8>)>,
    /// A flush leader is currently writing.
    flushing: bool,
    /// Sticky write failure: once the log fails to persist a batch,
    /// every later durability wait fails loudly rather than lying.
    poisoned: Option<String>,
}

/// Writer-side file state. Only the flush leader (or a compactor
/// holding the log lock) touches this.
struct FileState {
    file: File,
    seg_base: Lsn,
    seg_len: u64,
    /// Reusable batch serialization buffer: the whole group commit
    /// goes down in one `write(2)`.
    buf: Vec<u8>,
}

struct WalShared {
    dir: PathBuf,
    cfg: WalConfig,
    log: Mutex<LogState>,
    flushed: Condvar,
    file: Mutex<FileState>,
    appends: soc_observe::Counter,
    fsyncs: soc_observe::Counter,
    batch_hist: Arc<soc_observe::Histogram>,
    segments: soc_observe::Gauge,
}

/// A durable, segmented, group-committed write-ahead log. Cheap to
/// clone; clones share the same log.
#[derive(Clone)]
pub struct Wal {
    inner: Arc<WalShared>,
}

impl Wal {
    /// Open (or create) the log in `dir` with default config.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<(Wal, Recovery)> {
        Wal::open_with(dir, WalConfig::default())
    }

    /// Open (or create) the log in `dir`, replaying whatever is on
    /// disk. See the module docs for the recovery contract.
    pub fn open_with(dir: impl AsRef<Path>, cfg: WalConfig) -> StoreResult<(Wal, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut seg_bases: Vec<Lsn> = Vec::new();
        let mut snap_lsns: Vec<Lsn> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(base) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".wal")) {
                if let Ok(base) = base.parse::<Lsn>() {
                    seg_bases.push(base);
                }
            } else if let Some(l) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".snap"))
            {
                if let Ok(l) = l.parse::<Lsn>() {
                    snap_lsns.push(l);
                }
            }
        }
        seg_bases.sort_unstable();
        snap_lsns.sort_unstable();

        // Newest structurally valid snapshot wins; older ones are
        // fallbacks (a crash mid-snapshot leaves the previous one).
        let mut snapshot: Option<(Lsn, Vec<u8>)> = None;
        for &lsn in snap_lsns.iter().rev() {
            match read_snapshot(&dir.join(snap_name(lsn)), cfg.max_record_bytes) {
                Ok(state) => {
                    snapshot = Some((lsn, state));
                    break;
                }
                Err(_) => continue,
            }
        }
        let snap_lsn = snapshot.as_ref().map(|(l, _)| *l).unwrap_or(0);

        // Scan the segment chain.
        let mut records: Vec<(Lsn, Vec<u8>)> = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut expected_base: Option<Lsn> = None;
        let mut last_lsn: Lsn = snap_lsn;
        // Segment to keep appending into, if the final one is usable.
        let mut tail: Option<(Lsn, u64)> = None;
        for (i, &base) in seg_bases.iter().enumerate() {
            let is_last = i + 1 == seg_bases.len();
            let path = dir.join(seg_name(base));
            if let Some(exp) = expected_base {
                if base != exp {
                    return Err(StoreError::Corrupt(format!(
                        "segment chain gap: expected base {exp}, found {base}"
                    )));
                }
            } else if base > snap_lsn + 1 {
                return Err(StoreError::Corrupt(format!(
                    "history missing: snapshot at {snap_lsn} but oldest segment starts at {base}"
                )));
            }
            match scan_segment(&path, base, cfg.max_record_bytes)? {
                SegmentScan::Clean { recs, end_offset } => {
                    let count = recs.len() as u64;
                    for (lsn, payload) in recs {
                        if lsn > snap_lsn {
                            records.push((lsn, payload));
                        }
                    }
                    last_lsn = last_lsn.max(if count > 0 { base + count - 1 } else { base - 1 });
                    expected_base = Some(base + count);
                    if is_last {
                        tail = Some((base, end_offset));
                    }
                }
                SegmentScan::Torn { recs, good_offset, file_len } => {
                    if !is_last {
                        return Err(StoreError::Corrupt(format!(
                            "corrupt record in non-final segment {}",
                            path.display()
                        )));
                    }
                    let count = recs.len() as u64;
                    for (lsn, payload) in recs {
                        if lsn > snap_lsn {
                            records.push((lsn, payload));
                        }
                    }
                    last_lsn = last_lsn.max(if count > 0 { base + count - 1 } else { base - 1 });
                    truncated_bytes = file_len - good_offset;
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(good_offset)?;
                    f.sync_all()?;
                    tail = Some((base, good_offset));
                }
                SegmentScan::BadHeader => {
                    if !is_last {
                        return Err(StoreError::Corrupt(format!(
                            "bad segment header in non-final segment {}",
                            path.display()
                        )));
                    }
                    // A crash while creating the segment: nothing in it
                    // was ever durable. Drop it and start fresh.
                    let file_len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    truncated_bytes = file_len;
                    fs::remove_file(&path)?;
                }
            }
        }

        let next_lsn = last_lsn + 1;
        let (file, seg_base, seg_len) = match tail {
            Some((base, len)) => {
                let file = OpenOptions::new().append(true).open(dir.join(seg_name(base)))?;
                (file, base, len)
            }
            None => create_segment(&dir, next_lsn)?,
        };

        let metrics = soc_observe::metrics();
        let shared = WalShared {
            dir,
            cfg,
            log: Mutex::new(LogState {
                next_lsn,
                durable_lsn: last_lsn,
                pending: Vec::new(),
                flushing: false,
                poisoned: None,
            }),
            flushed: Condvar::new(),
            file: Mutex::new(FileState { file, seg_base, seg_len, buf: Vec::new() }),
            appends: metrics.counter("soc_store_wal_appends_total", &[]),
            fsyncs: metrics.counter("soc_store_wal_fsyncs_total", &[]),
            batch_hist: metrics.histogram_with_bounds(
                "soc_store_wal_commit_batch",
                &[],
                &[1, 2, 4, 8, 16, 32, 64, 128],
            ),
            segments: metrics.gauge("soc_store_wal_segments", &[]),
        };
        shared.segments.set(seg_bases.len().max(1) as i64);
        let wal = Wal { inner: Arc::new(shared) };
        let recovery = Recovery { snapshot, records, truncated_bytes };
        Ok((wal, recovery))
    }

    /// Stamp and enqueue a record without waiting for durability.
    /// Callers must eventually [`Wal::wait_durable`] (or [`Wal::flush`])
    /// before acknowledging the write to anyone.
    pub fn submit(&self, payload: &[u8]) -> StoreResult<Lsn> {
        if payload.len() > self.inner.cfg.max_record_bytes as usize {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("record of {} bytes exceeds max_record_bytes", payload.len()),
            )));
        }
        let mut log = self.inner.log.lock();
        if let Some(why) = &log.poisoned {
            return Err(StoreError::Corrupt(why.clone()));
        }
        let lsn = log.next_lsn;
        log.next_lsn += 1;
        log.pending.push((lsn, payload.to_vec()));
        Ok(lsn)
    }

    /// Block until `lsn` is durable under the configured policy —
    /// joining (or leading) a group commit as needed.
    pub fn wait_durable(&self, lsn: Lsn) -> StoreResult<()> {
        let mut log = self.inner.log.lock();
        loop {
            if let Some(why) = &log.poisoned {
                return Err(StoreError::Corrupt(why.clone()));
            }
            if log.durable_lsn >= lsn {
                return Ok(());
            }
            if log.flushing {
                // A leader is writing; our record rides the next batch.
                self.inner.flushed.wait(&mut log);
                continue;
            }
            // Become the flush leader for everything pending.
            log.flushing = true;
            let batch = std::mem::take(&mut log.pending);
            drop(log);
            let result = if batch.is_empty() { Ok(()) } else { self.write_batch(&batch) };
            log = self.inner.log.lock();
            log.flushing = false;
            match result {
                Ok(()) => {
                    if let Some(&(last, _)) = batch.last() {
                        log.durable_lsn = log.durable_lsn.max(last);
                    }
                    self.inner.flushed.notify_all();
                }
                Err(e) => {
                    log.poisoned = Some(e.to_string());
                    self.inner.flushed.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Append one record and wait for durability. Returns its LSN.
    pub fn append(&self, payload: &[u8]) -> StoreResult<Lsn> {
        let lsn = self.submit(payload)?;
        self.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// Flush everything submitted so far.
    pub fn flush(&self) -> StoreResult<()> {
        let last = {
            let log = self.inner.log.lock();
            log.next_lsn - 1
        };
        if last == 0 {
            return Ok(());
        }
        self.wait_durable(last)
    }

    /// Highest stamped LSN (may not be durable yet).
    pub fn last_lsn(&self) -> Lsn {
        self.inner.log.lock().next_lsn - 1
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.log.lock().durable_lsn
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Write `state` as a snapshot at the current tail LSN, rotate to a
    /// fresh segment, and delete segments wholly covered by the
    /// snapshot — the snapshot-then-truncate compaction step. Returns
    /// the snapshot LSN.
    ///
    /// The caller must guarantee `state` reflects *exactly* the
    /// commands up to the returned LSN ([`crate::Durable::compact`]
    /// holds its machine lock across this call).
    pub fn snapshot(&self, state: &[u8]) -> StoreResult<Lsn> {
        // Quiesce: hold the log lock for the whole compaction so no
        // flush leader races the rotation. Compaction is rare and the
        // state is already serialized; blocking appenders briefly is
        // the simple correct schedule.
        let mut log = self.inner.log.lock();
        while log.flushing {
            self.inner.flushed.wait(&mut log);
        }
        if let Some(why) = &log.poisoned {
            return Err(StoreError::Corrupt(why.clone()));
        }
        let batch = std::mem::take(&mut log.pending);
        if !batch.is_empty() {
            if let Err(e) = self.write_batch(&batch) {
                log.poisoned = Some(e.to_string());
                return Err(e);
            }
            log.durable_lsn = log.durable_lsn.max(batch.last().unwrap().0);
        }
        let snap_lsn = log.next_lsn - 1;
        self.write_snapshot_and_rotate(snap_lsn, state)?;
        drop(log);
        Ok(snap_lsn)
    }

    /// Install a snapshot taken *elsewhere* — the replica bootstrap
    /// path when the primary's log has been compacted past this
    /// replica's watermark. The local log jumps forward to `lsn`: a
    /// snapshot file is written, the active segment rotates to base
    /// `lsn + 1`, everything older is deleted, and subsequent appends
    /// stamp `lsn + 1` onward. Refuses to rewind (`lsn` at or below the
    /// current tail), because that would fork already-durable history.
    pub fn install_snapshot(&self, lsn: Lsn, state: &[u8]) -> StoreResult<()> {
        let mut log = self.inner.log.lock();
        while log.flushing {
            self.inner.flushed.wait(&mut log);
        }
        if let Some(why) = &log.poisoned {
            return Err(StoreError::Corrupt(why.clone()));
        }
        let tail = log.next_lsn - 1;
        if lsn <= tail {
            return Err(StoreError::Corrupt(format!(
                "snapshot install at {lsn} would rewind the log tail {tail}"
            )));
        }
        // Anything submitted but unflushed is below the snapshot and
        // superseded by it; drop it rather than persisting records the
        // snapshot already covers.
        log.pending.clear();
        self.write_snapshot_and_rotate(lsn, state)?;
        log.next_lsn = lsn + 1;
        log.durable_lsn = lsn;
        Ok(())
    }

    /// Persist `state` as the snapshot at `snap_lsn`, rotate the active
    /// segment past it, and delete covered segments and superseded
    /// snapshots. Callers hold the log lock with no leader in flight.
    fn write_snapshot_and_rotate(&self, snap_lsn: Lsn, state: &[u8]) -> StoreResult<()> {
        // Write the snapshot via a temp file + rename so a crash never
        // leaves a half-written snapshot with a valid name.
        let final_path = self.inner.dir.join(snap_name(snap_lsn));
        let tmp_path = self.inner.dir.join(format!("{}.tmp", snap_name(snap_lsn)));
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(SNAP_MAGIC)?;
            f.write_all(&snap_lsn.to_le_bytes())?;
            f.write_all(&(state.len() as u64).to_le_bytes())?;
            f.write_all(&crc32(state).to_le_bytes())?;
            f.write_all(state)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.inner.dir)?;

        // Rotate so the active segment starts past the snapshot, then
        // drop everything the snapshot covers: older segments and
        // superseded snapshots.
        {
            let mut fs_state = self.inner.file.lock();
            let (file, base, len) = create_segment(&self.inner.dir, snap_lsn + 1)?;
            fs_state.file = file;
            fs_state.seg_base = base;
            fs_state.seg_len = len;
        }
        let mut kept_segments = 0i64;
        for entry in fs::read_dir(&self.inner.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(base) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".wal")) {
                match base.parse::<Lsn>() {
                    Ok(base) if base <= snap_lsn => fs::remove_file(entry.path())?,
                    _ => kept_segments += 1,
                }
            } else if let Some(l) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".snap"))
            {
                if let Ok(l) = l.parse::<Lsn>() {
                    if l < snap_lsn {
                        fs::remove_file(entry.path())?;
                    }
                }
            }
        }
        sync_dir(&self.inner.dir)?;
        self.inner.segments.set(kept_segments.max(1));
        soc_observe::metrics().counter("soc_store_wal_snapshots_total", &[]).inc();
        Ok(())
    }

    /// Durable records with `lsn > from`, read back from the segment
    /// files — the log-shipping feed for replica catch-up. Fails with
    /// [`StoreError::Corrupt`] when `from` predates the compaction
    /// horizon (the caller should bootstrap from a snapshot instead).
    pub fn records_after(&self, from: Lsn) -> StoreResult<Vec<(Lsn, Vec<u8>)>> {
        self.flush()?;
        // Hold the file lock so rotation/compaction can't swap files
        // out from under the scan.
        let _fs_guard = self.inner.file.lock();
        let mut seg_bases: Vec<Lsn> = Vec::new();
        for entry in fs::read_dir(&self.inner.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(base) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".wal")) {
                if let Ok(base) = base.parse::<Lsn>() {
                    seg_bases.push(base);
                }
            }
        }
        seg_bases.sort_unstable();
        if let Some(&first) = seg_bases.first() {
            if from + 1 < first {
                return Err(StoreError::Corrupt(format!(
                    "records after {from} start before the compaction horizon {first}"
                )));
            }
        }
        let mut out = Vec::new();
        for &base in &seg_bases {
            match scan_segment(
                &self.inner.dir.join(seg_name(base)),
                base,
                self.inner.cfg.max_record_bytes,
            )? {
                SegmentScan::Clean { recs, .. } => {
                    for (lsn, payload) in recs {
                        if lsn > from {
                            out.push((lsn, payload));
                        }
                    }
                }
                // We hold the file lock and flushed first: segments on
                // disk must be clean. Anything else is real corruption.
                _ => {
                    return Err(StoreError::Corrupt(format!(
                        "segment {base} unreadable during log shipping"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Serialize and persist one batch. Called only by the flush leader
    /// (or by [`Wal::snapshot`], which excludes leaders first).
    fn write_batch(&self, batch: &[(Lsn, Vec<u8>)]) -> StoreResult<()> {
        let mut fs_state = self.inner.file.lock();
        let fsync_each = self.inner.cfg.fsync == FsyncPolicy::Always;
        if fsync_each {
            for (_, payload) in batch {
                let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&crc32(payload).to_le_bytes());
                frame.extend_from_slice(payload);
                fs_state.file.write_all(&frame)?;
                fs_state.file.sync_data()?;
                fs_state.seg_len += frame.len() as u64;
                self.inner.fsyncs.inc();
            }
        } else {
            let mut buf = std::mem::take(&mut fs_state.buf);
            buf.clear();
            for (_, payload) in batch {
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&crc32(payload).to_le_bytes());
                buf.extend_from_slice(payload);
            }
            let result = fs_state.file.write_all(&buf);
            let written = buf.len() as u64;
            fs_state.buf = buf;
            result?;
            fs_state.seg_len += written;
            if self.inner.cfg.fsync == FsyncPolicy::Batch {
                fs_state.file.sync_data()?;
                self.inner.fsyncs.inc();
            }
        }
        self.inner.appends.add(batch.len() as u64);
        self.inner.batch_hist.observe(batch.len() as u64);

        if fs_state.seg_len >= SEG_HEADER + self.inner.cfg.segment_bytes {
            let next_base = batch.last().unwrap().0 + 1;
            let (file, base, len) = create_segment(&self.inner.dir, next_base)?;
            fs_state.file = file;
            fs_state.seg_base = base;
            fs_state.seg_len = len;
            self.inner.segments.add(1);
        }
        Ok(())
    }
}

/// Create `seg-{base}.wal` with its header, fsynced, plus the dirent.
fn create_segment(dir: &Path, base: Lsn) -> StoreResult<(File, Lsn, u64)> {
    let path = dir.join(seg_name(base));
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    file.write_all(SEG_MAGIC)?;
    file.write_all(&base.to_le_bytes())?;
    file.sync_all()?;
    sync_dir(dir)?;
    Ok((file, base, SEG_HEADER))
}

/// Fsync a directory so freshly created/renamed files survive a crash.
fn sync_dir(dir: &Path) -> StoreResult<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

enum SegmentScan {
    /// Every frame parsed and checksummed.
    Clean { recs: Vec<(Lsn, Vec<u8>)>, end_offset: u64 },
    /// A bad frame at `good_offset`; `recs` hold the clean prefix.
    Torn { recs: Vec<(Lsn, Vec<u8>)>, good_offset: u64, file_len: u64 },
    /// The 16-byte header itself is missing or wrong.
    BadHeader,
}

/// Parse one segment file, stopping (not failing) at the first bad
/// frame — the caller decides whether "torn" is a truncatable tail or
/// fatal mid-log damage.
fn scan_segment(path: &Path, expect_base: Lsn, max_record: u32) -> StoreResult<SegmentScan> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let file_len = data.len() as u64;
    if data.len() < SEG_HEADER as usize
        || &data[..8] != SEG_MAGIC
        || u64::from_le_bytes(data[8..16].try_into().unwrap()) != expect_base
    {
        return Ok(SegmentScan::BadHeader);
    }
    let mut recs = Vec::new();
    let mut off = SEG_HEADER as usize;
    let mut lsn = expect_base;
    loop {
        if off == data.len() {
            return Ok(SegmentScan::Clean { recs, end_offset: off as u64 });
        }
        if data.len() - off < FRAME_HEADER {
            return Ok(SegmentScan::Torn { recs, good_offset: off as u64, file_len });
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        if len > max_record as usize || data.len() - off - FRAME_HEADER < len {
            return Ok(SegmentScan::Torn { recs, good_offset: off as u64, file_len });
        }
        let payload = &data[off + FRAME_HEADER..off + FRAME_HEADER + len];
        if crc32(payload) != crc {
            return Ok(SegmentScan::Torn { recs, good_offset: off as u64, file_len });
        }
        recs.push((lsn, payload.to_vec()));
        lsn += 1;
        off += FRAME_HEADER + len;
    }
}

/// Read and validate one snapshot file.
fn read_snapshot(path: &Path, max_bytes: u32) -> StoreResult<Vec<u8>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < 28 || &data[..8] != SNAP_MAGIC {
        return Err(StoreError::Corrupt("snapshot header damaged".into()));
    }
    let len = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[24..28].try_into().unwrap());
    if len > max_bytes as usize || data.len() - 28 != len {
        return Err(StoreError::Corrupt("snapshot length damaged".into()));
    }
    let payload = &data[28..];
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    fn reopen(dir: &Path) -> (Wal, Recovery) {
        Wal::open(dir).expect("reopen")
    }

    #[test]
    fn append_then_replay_round_trips() {
        let tmp = TempDir::new("wal-rt");
        {
            let (wal, rec) = Wal::open(tmp.path()).unwrap();
            assert!(rec.records.is_empty());
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.append(b"three").unwrap(), 3);
            assert_eq!(wal.durable_lsn(), 3);
        }
        let (_, rec) = reopen(tmp.path());
        let got: Vec<(Lsn, &[u8])> = rec.records.iter().map(|(l, p)| (*l, p.as_slice())).collect();
        assert_eq!(
            got,
            vec![(1, b"one".as_slice()), (2, b"two".as_slice()), (3, b"three".as_slice())]
        );
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_to_a_prefix() {
        let tmp = TempDir::new("wal-torn");
        {
            let (wal, _) = Wal::open(tmp.path()).unwrap();
            for i in 0..10u32 {
                wal.append(format!("record-{i}").as_bytes()).unwrap();
            }
        }
        // Chop bytes off the tail of the single segment.
        let seg = tmp.path().join(seg_name(1));
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (wal, rec) = reopen(tmp.path());
        assert_eq!(rec.records.len(), 9, "exactly the torn record drops");
        assert!(rec.truncated_bytes > 0);
        // The log keeps appending after the truncation point.
        assert_eq!(wal.append(b"after").unwrap(), 10);
        drop(wal);
        let (_, rec) = reopen(tmp.path());
        assert_eq!(rec.records.len(), 10);
        assert_eq!(rec.records.last().unwrap().1, b"after");
    }

    #[test]
    fn corrupt_mid_log_fails_loudly() {
        let tmp = TempDir::new("wal-midcorrupt");
        {
            let (wal, _) =
                Wal::open_with(tmp.path(), WalConfig { segment_bytes: 64, ..WalConfig::default() })
                    .unwrap();
            for i in 0..20u32 {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
        }
        // Multiple segments now exist; flip a payload byte in the first.
        let seg = tmp.path().join(seg_name(1));
        let mut data = fs::read(&seg).unwrap();
        let idx = SEG_HEADER as usize + FRAME_HEADER + 2;
        data[idx] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        match Wal::open(tmp.path()) {
            Err(StoreError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn segment_gap_fails_loudly() {
        let tmp = TempDir::new("wal-gap");
        {
            let (wal, _) =
                Wal::open_with(tmp.path(), WalConfig { segment_bytes: 64, ..WalConfig::default() })
                    .unwrap();
            for i in 0..20u32 {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
        }
        // Remove a middle segment.
        let mut bases: Vec<Lsn> = fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.strip_prefix("seg-")?.strip_suffix(".wal")?.parse().ok()
            })
            .collect();
        bases.sort_unstable();
        assert!(bases.len() >= 3, "need several segments, got {bases:?}");
        fs::remove_file(tmp.path().join(seg_name(bases[1]))).unwrap();
        assert!(matches!(Wal::open(tmp.path()), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn snapshot_compacts_and_replay_uses_it() {
        let tmp = TempDir::new("wal-snap");
        {
            let (wal, _) =
                Wal::open_with(tmp.path(), WalConfig { segment_bytes: 64, ..WalConfig::default() })
                    .unwrap();
            for i in 0..10u32 {
                wal.append(format!("r{i}").as_bytes()).unwrap();
            }
            assert_eq!(wal.snapshot(b"state-at-10").unwrap(), 10);
            wal.append(b"r10").unwrap();
            wal.append(b"r11").unwrap();
        }
        let (_, rec) = reopen(tmp.path());
        let (snap_lsn, state) = rec.snapshot.expect("snapshot survives");
        assert_eq!(snap_lsn, 10);
        assert_eq!(state, b"state-at-10");
        let lsns: Vec<Lsn> = rec.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![11, 12]);
        // Old segments are gone.
        let mut bases: Vec<Lsn> = fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.strip_prefix("seg-")?.strip_suffix(".wal")?.parse().ok()
            })
            .collect();
        bases.sort_unstable();
        assert_eq!(bases.first().copied(), Some(11));
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_one() {
        let tmp = TempDir::new("wal-snapfall");
        {
            let (wal, _) = Wal::open(tmp.path()).unwrap();
            wal.append(b"a").unwrap();
            wal.snapshot(b"s1").unwrap();
            wal.append(b"b").unwrap();
        }
        // Forge a newer, corrupt snapshot (no compaction ran for it, so
        // the records after the *valid* snapshot still exist).
        fs::write(tmp.path().join(snap_name(2)), b"garbage").unwrap();
        let (_, rec) = reopen(tmp.path());
        assert_eq!(rec.snapshot, Some((1, b"s1".to_vec())));
        assert_eq!(rec.records.len(), 1);
    }

    #[test]
    fn snapshot_with_compacted_history_and_no_coverage_fails() {
        let tmp = TempDir::new("wal-snapgone");
        {
            let (wal, _) = Wal::open(tmp.path()).unwrap();
            wal.append(b"a").unwrap();
            wal.append(b"b").unwrap();
            wal.snapshot(b"s2").unwrap();
        }
        // The only snapshot is destroyed; history before it was
        // compacted away — recovery must refuse, not silently restart.
        fs::remove_file(tmp.path().join(snap_name(2))).unwrap();
        assert!(matches!(Wal::open(tmp.path()), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn group_commit_batches_concurrent_appenders() {
        let tmp = TempDir::new("wal-group");
        let (wal, _) = Wal::open(tmp.path()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        wal.append(format!("t{t}-{i}").as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.durable_lsn(), 400);
        drop(wal);
        let (_, rec) = reopen(tmp.path());
        assert_eq!(rec.records.len(), 400);
        // LSNs are dense and ordered regardless of interleaving.
        for (i, (lsn, _)) in rec.records.iter().enumerate() {
            assert_eq!(*lsn, i as Lsn + 1);
        }
    }

    #[test]
    fn records_after_feeds_log_shipping() {
        let tmp = TempDir::new("wal-ship");
        let (wal, _) = Wal::open(tmp.path()).unwrap();
        for i in 0..6u32 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        let shipped = wal.records_after(4).unwrap();
        let lsns: Vec<Lsn> = shipped.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![5, 6]);
        assert_eq!(wal.records_after(6).unwrap(), vec![]);
        // Below the compaction horizon → loud error.
        wal.snapshot(b"s").unwrap();
        assert!(matches!(wal.records_after(0), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn install_snapshot_jumps_forward_and_survives_reopen() {
        let tmp = TempDir::new("wal-install");
        {
            let (wal, _) = Wal::open(tmp.path()).unwrap();
            wal.append(b"local-1").unwrap();
            wal.append(b"local-2").unwrap();
            // Rewind refused: tail is 2.
            assert!(matches!(wal.install_snapshot(2, b"rewind"), Err(StoreError::Corrupt(_))));
            wal.install_snapshot(40, b"remote-state-at-40").unwrap();
            assert_eq!(wal.last_lsn(), 40);
            assert_eq!(wal.durable_lsn(), 40);
            // Appends continue past the installed point.
            assert_eq!(wal.append(b"local-41").unwrap(), 41);
        }
        let (_, rec) = reopen(tmp.path());
        assert_eq!(rec.snapshot, Some((40, b"remote-state-at-40".to_vec())));
        let lsns: Vec<Lsn> = rec.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![41]);
    }

    #[test]
    fn oversized_record_is_refused() {
        let tmp = TempDir::new("wal-big");
        let (wal, _) =
            Wal::open_with(tmp.path(), WalConfig { max_record_bytes: 8, ..WalConfig::default() })
                .unwrap();
        assert!(matches!(wal.append(b"123456789"), Err(StoreError::Io(_))));
        assert_eq!(wal.append(b"12345678").unwrap(), 1);
    }

    #[test]
    fn fsync_policies_all_recover() {
        for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            let tmp = TempDir::new("wal-policy");
            {
                let (wal, _) =
                    Wal::open_with(tmp.path(), WalConfig { fsync: policy, ..WalConfig::default() })
                        .unwrap();
                wal.append(b"x").unwrap();
                wal.append(b"y").unwrap();
            }
            let (_, rec) = reopen(tmp.path());
            assert_eq!(rec.records.len(), 2, "policy {policy:?}");
        }
    }
}
