/root/repo/target/debug/deps/table5_evaluation-cc1b2585e8603389.d: crates/soc-bench/src/bin/table5_evaluation.rs

/root/repo/target/debug/deps/table5_evaluation-cc1b2585e8603389: crates/soc-bench/src/bin/table5_evaluation.rs

crates/soc-bench/src/bin/table5_evaluation.rs:
