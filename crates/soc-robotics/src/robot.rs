//! The robot: pose, sensors, actuators, and trace.

use crate::maze::{Direction, Maze};

/// Sensor snapshot: open-cell distances relative to the robot's heading.
/// This is the whole hardware interface the Robot-as-a-Service layer
/// exposes — "the services hide the hardware and programming details".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sensors {
    /// Open cells to the robot's left.
    pub left: usize,
    /// Open cells straight ahead.
    pub front: usize,
    /// Open cells to the robot's right.
    pub right: usize,
}

/// Actions a robot can be commanded to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Move one cell ahead (fails with a bump against a wall).
    Forward,
    /// Rotate 90° left.
    TurnLeft,
    /// Rotate 90° right.
    TurnRight,
}

/// A simulated robot inside a maze.
#[derive(Debug, Clone)]
pub struct Robot {
    /// Current cell.
    pub position: (usize, usize),
    /// Current heading.
    pub heading: Direction,
    steps: usize,
    turns: usize,
    bumps: usize,
    trace: Vec<(usize, usize)>,
}

impl Robot {
    /// A robot at the maze start, facing east.
    pub fn at_start(maze: &Maze) -> Self {
        Robot::at(maze.start, Direction::East)
    }

    /// A robot at an explicit pose.
    pub fn at(position: (usize, usize), heading: Direction) -> Self {
        Robot { position, heading, steps: 0, turns: 0, bumps: 0, trace: vec![position] }
    }

    /// Read the distance sensors.
    pub fn sense(&self, maze: &Maze) -> Sensors {
        Sensors {
            left: maze.distance_to_wall(self.position, self.heading.left()),
            front: maze.distance_to_wall(self.position, self.heading),
            right: maze.distance_to_wall(self.position, self.heading.right()),
        }
    }

    /// Execute one action; returns `false` on a bump (wall ahead).
    pub fn act(&mut self, maze: &Maze, action: Action) -> bool {
        match action {
            Action::Forward => {
                if maze.has_wall(self.position, self.heading) {
                    self.bumps += 1;
                    return false;
                }
                if let Some(next) = maze.neighbor(self.position, self.heading) {
                    self.position = next;
                    self.steps += 1;
                    self.trace.push(next);
                    true
                } else {
                    self.bumps += 1;
                    false
                }
            }
            Action::TurnLeft => {
                self.heading = self.heading.left();
                self.turns += 1;
                true
            }
            Action::TurnRight => {
                self.heading = self.heading.right();
                self.turns += 1;
                true
            }
        }
    }

    /// Forward moves taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Turns taken so far.
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// Wall bumps so far (a navigation-quality signal).
    pub fn bumps(&self) -> usize {
        self.bumps
    }

    /// Every cell visited, in order (with repeats).
    pub fn trace(&self) -> &[(usize, usize)] {
        &self.trace
    }

    /// Is the robot on the maze exit?
    pub fn at_exit(&self, maze: &Maze) -> bool {
        self.position == maze.exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Maze {
        // 4×2, top row fully open west-east.
        let mut m = Maze::walled(4, 2);
        m.carve((0, 0), Direction::East);
        m.carve((1, 0), Direction::East);
        m.carve((2, 0), Direction::East);
        m
    }

    #[test]
    fn forward_moves_and_counts() {
        let m = corridor();
        let mut r = Robot::at((0, 0), Direction::East);
        assert!(r.act(&m, Action::Forward));
        assert!(r.act(&m, Action::Forward));
        assert_eq!(r.position, (2, 0));
        assert_eq!(r.steps(), 2);
        assert_eq!(r.trace(), &[(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn bump_on_wall() {
        let m = corridor();
        let mut r = Robot::at((0, 0), Direction::North);
        assert!(!r.act(&m, Action::Forward));
        assert_eq!(r.bumps(), 1);
        assert_eq!(r.position, (0, 0));
        assert_eq!(r.steps(), 0);
    }

    #[test]
    fn turns_change_heading_only() {
        let m = corridor();
        let mut r = Robot::at((0, 0), Direction::East);
        r.act(&m, Action::TurnLeft);
        assert_eq!(r.heading, Direction::North);
        r.act(&m, Action::TurnRight);
        r.act(&m, Action::TurnRight);
        assert_eq!(r.heading, Direction::South);
        assert_eq!(r.turns(), 3);
        assert_eq!(r.position, (0, 0));
    }

    #[test]
    fn sensors_relative_to_heading() {
        let m = corridor();
        let r = Robot::at((0, 0), Direction::East);
        let s = r.sense(&m);
        assert_eq!(s.front, 3);
        assert_eq!(s.left, 0); // border wall
        assert_eq!(s.right, 0); // wall to south
        let r = Robot::at((3, 0), Direction::West);
        let s = r.sense(&m);
        assert_eq!(s.front, 3);
    }

    #[test]
    fn at_exit_detects_goal() {
        let mut m = corridor();
        m.exit = (3, 0);
        let mut r = Robot::at((0, 0), Direction::East);
        for _ in 0..3 {
            r.act(&m, Action::Forward);
        }
        assert!(r.at_exit(&m));
    }
}
