/root/repo/target/debug/deps/proptests-43e3ea1d57d95b95.d: crates/soc-workflow/tests/proptests.rs

/root/repo/target/debug/deps/proptests-43e3ea1d57d95b95: crates/soc-workflow/tests/proptests.rs

crates/soc-workflow/tests/proptests.rs:
