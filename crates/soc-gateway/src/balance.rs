//! Load-balancing policies and outlier ejection.
//!
//! Three classic policies, selectable per gateway:
//!
//! * **Round-robin** — fair rotation, oblivious to load.
//! * **Random two-choice** — pick two replicas at random, send to the
//!   less loaded one. The "power of two choices" gets most of the
//!   benefit of full load tracking at a fraction of the coordination.
//! * **Least-latency** — send to the replica with the lowest observed
//!   mean latency, as measured by the shared
//!   [`QosMonitor`](soc_registry::monitor::QosMonitor) that the
//!   gateway feeds with every proxied request.
//!
//! Orthogonal to the policy, the [`OutlierEjector`] removes replicas
//! whose recent error rate or p95 latency sits far above the replica
//! set's median — the "one slow machine dictates the tail" problem —
//! and re-admits them after a cool-off so recovery is discovered.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use soc_registry::monitor::QosMonitor;

/// Which balancing policy a gateway runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Rotate through replicas in order.
    RoundRobin,
    /// Two random candidates; the less loaded wins.
    RandomTwoChoice,
    /// Lowest observed mean latency wins; unmeasured replicas are
    /// explored first.
    LeastLatency,
}

impl Policy {
    /// Lower-case label for stats output.
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::RandomTwoChoice => "random-two-choice",
            Policy::LeastLatency => "least-latency",
        }
    }
}

/// What the balancer knows about one candidate replica at pick time.
#[derive(Debug, Clone)]
pub struct UpstreamView {
    /// The replica's endpoint URL.
    pub endpoint: String,
    /// Requests currently in flight to it through this gateway.
    pub in_flight: usize,
    /// Mean latency observed by the QoS monitor, when any.
    pub mean_latency: Option<Duration>,
}

/// A small, fast, seedable PRNG (xorshift64*). The gateway avoids a
/// heavyweight RNG dependency; statistical quality well beyond what
/// jitter and two-choice sampling need.
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        // splitmix64 step so that small seeds still start well mixed.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64 { state: (z ^ (z >> 31)) | 1 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `0..n`. `n` must be non-zero.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Backoff jitter factor in `[0.5, 1.5)`.
    pub(crate) fn jitter(&mut self) -> f64 {
        0.5 + (self.next() % 1_000) as f64 / 1_000.0
    }
}

/// The policy engine: holds per-service round-robin cursors and the
/// RNG for two-choice sampling.
pub struct Balancer {
    policy: Policy,
    cursors: Mutex<HashMap<String, usize>>,
    rng: Mutex<XorShift64>,
}

impl Balancer {
    /// A balancer running `policy`, with a deterministic seed for
    /// reproducible experiments.
    pub fn new(policy: Policy, seed: u64) -> Self {
        Balancer {
            policy,
            cursors: Mutex::new(HashMap::new()),
            rng: Mutex::new(XorShift64::new(seed)),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Pick one of `candidates` for `service`. Returns an index into
    /// `candidates`, or `None` when there are none.
    pub fn pick(&self, service: &str, candidates: &[UpstreamView]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return Some(0);
        }
        match self.policy {
            Policy::RoundRobin => {
                let mut cursors = self.cursors.lock();
                let cursor = cursors.entry(service.to_string()).or_insert(0);
                let i = *cursor % candidates.len();
                *cursor = cursor.wrapping_add(1);
                Some(i)
            }
            Policy::RandomTwoChoice => {
                let (a, b) = {
                    let mut rng = self.rng.lock();
                    let a = rng.below(candidates.len());
                    let mut b = rng.below(candidates.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    (a, b)
                };
                Some(less_loaded(candidates, a, b))
            }
            Policy::LeastLatency => {
                // Unmeasured replicas first — otherwise a replica with
                // no traffic never earns a measurement.
                if let Some(i) = candidates.iter().position(|c| c.mean_latency.is_none()) {
                    return Some(i);
                }
                candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| (c.mean_latency.unwrap_or_default(), c.in_flight))
                    .map(|(i, _)| i)
            }
        }
    }
}

/// Two-choice tie-break order: fewer in-flight, then lower latency,
/// then first.
fn less_loaded(candidates: &[UpstreamView], a: usize, b: usize) -> usize {
    let (ca, cb) = (&candidates[a], &candidates[b]);
    let key = |c: &UpstreamView| (c.in_flight, c.mean_latency.unwrap_or_default());
    if key(cb) < key(ca) {
        b
    } else {
        a
    }
}

/// Tuning for [`OutlierEjector`]. The defaults are deliberately
/// conservative: a replica must look *much* worse than its peers, over
/// a meaningful sample, before it is pulled from rotation.
#[derive(Debug, Clone)]
pub struct OutlierConfig {
    /// Master switch; `false` keeps every replica in rotation.
    pub enabled: bool,
    /// Re-evaluate the replica set at most this often per service.
    pub eval_interval: Duration,
    /// Minimum recent observations a replica needs before it can be
    /// judged — thin evidence never ejects.
    pub min_samples: usize,
    /// Eject when recent p95 exceeds `latency_factor ×` the replica-set
    /// median p95 …
    pub latency_factor: f64,
    /// … and is also at least this large in absolute terms, so µs-scale
    /// jitter between healthy replicas never triggers ejection.
    pub min_latency: Duration,
    /// Eject when recent error rate exceeds the set's median error rate
    /// by this margin (absolute, 0.0–1.0).
    pub error_margin: f64,
    /// How long an ejected replica stays out before re-admission.
    /// After expiry it rejoins rotation — live traffic is the probe —
    /// and is re-ejected if still an outlier at the next evaluation.
    pub eject_duration: Duration,
    /// Never eject more than this fraction of a replica set (rounded
    /// down, but an eligible set of ≥ 2 always allows one ejection).
    pub max_eject_fraction: f64,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            enabled: true,
            eval_interval: Duration::from_millis(100),
            min_samples: 16,
            latency_factor: 3.0,
            min_latency: Duration::from_millis(2),
            error_margin: 0.5,
            eject_duration: Duration::from_secs(5),
            max_eject_fraction: 0.5,
        }
    }
}

struct ServiceEjections {
    last_eval: Option<Instant>,
    /// endpoint → instant the ejection lapses.
    ejected: HashMap<String, Instant>,
}

/// Removes statistical outliers from a replica set before balancing.
///
/// Ejection is *relative*: a replica is compared against the median of
/// its peers, not an absolute SLO, so the ejector adapts to whatever
/// baseline the service actually has. Decisions are cached per service
/// for [`OutlierConfig::eval_interval`] to keep the hot path cheap, and
/// the ejector fails open — if ejection would leave no candidates, the
/// full set is returned untouched.
pub struct OutlierEjector {
    config: OutlierConfig,
    services: Mutex<HashMap<String, ServiceEjections>>,
    ejections: AtomicU64,
}

impl OutlierEjector {
    /// An ejector with the given tuning.
    pub fn new(config: OutlierConfig) -> Self {
        OutlierEjector {
            config,
            services: Mutex::new(HashMap::new()),
            ejections: AtomicU64::new(0),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &OutlierConfig {
        &self.config
    }

    /// Total ejection events since construction (re-ejections count).
    pub fn total_ejections(&self) -> u64 {
        self.ejections.load(Ordering::Relaxed)
    }

    /// Is `endpoint` currently ejected for any service?
    pub fn is_ejected(&self, endpoint: &str) -> bool {
        let now = Instant::now();
        self.services
            .lock()
            .values()
            .any(|s| s.ejected.get(endpoint).is_some_and(|until| *until > now))
    }

    /// Endpoints of `service` currently held out of rotation, sorted.
    pub fn ejected_endpoints(&self, service: &str) -> Vec<String> {
        let now = Instant::now();
        let services = self.services.lock();
        let Some(state) = services.get(service) else { return Vec::new() };
        let mut out: Vec<String> = state
            .ejected
            .iter()
            .filter(|(_, until)| **until > now)
            .map(|(e, _)| e.clone())
            .collect();
        out.sort();
        out
    }

    /// Partition `candidates` into (kept, ejected-endpoint-names) for
    /// `service`, re-evaluating outlier status against `monitor` when
    /// the cached decision is stale. Fails open: if every candidate
    /// would be ejected, all are kept.
    pub fn filter(
        &self,
        service: &str,
        candidates: Vec<UpstreamView>,
        monitor: &QosMonitor,
    ) -> (Vec<UpstreamView>, Vec<String>) {
        if !self.config.enabled || candidates.len() < 2 {
            return (candidates, Vec::new());
        }
        let now = Instant::now();
        let mut services = self.services.lock();
        let state = services
            .entry(service.to_string())
            .or_insert_with(|| ServiceEjections { last_eval: None, ejected: HashMap::new() });

        let stale =
            state.last_eval.is_none_or(|t| now.duration_since(t) >= self.config.eval_interval);
        if stale {
            state.last_eval = Some(now);
            self.evaluate(state, &candidates, monitor, now);
        }

        // Expired ejections fall out of the map here: the replica
        // rejoins rotation, and live traffic serves as its re-admission
        // probe until the next evaluation passes judgement again.
        state.ejected.retain(|_, until| *until > now);

        // Fail open: an empty replica set is strictly worse than a
        // suspect one, so if ejection would remove everyone, keep all.
        if candidates.iter().all(|c| state.ejected.contains_key(&c.endpoint)) {
            state.ejected.clear();
            return (candidates, Vec::new());
        }

        let mut kept = Vec::with_capacity(candidates.len());
        let mut out = Vec::new();
        for c in candidates {
            if state.ejected.contains_key(&c.endpoint) {
                out.push(c.endpoint);
            } else {
                kept.push(c);
            }
        }
        (kept, out)
    }

    /// Re-judge `candidates`, adding fresh ejections to `state`.
    fn evaluate(
        &self,
        state: &mut ServiceEjections,
        candidates: &[UpstreamView],
        monitor: &QosMonitor,
        now: Instant,
    ) {
        #[derive(Clone)]
        struct Judged {
            endpoint: String,
            /// `None` when the replica has produced no successful
            /// (latency-sampled) answers — an all-failing replica.
            p95: Option<Duration>,
            err: f64,
        }
        let mut judged: Vec<Judged> = Vec::new();
        for c in candidates {
            let samples = monitor.recent_observations(&c.endpoint);
            if samples < self.config.min_samples {
                continue;
            }
            let Some(err) = monitor.recent_error_rate(&c.endpoint) else { continue };
            judged.push(Judged {
                endpoint: c.endpoint.clone(),
                p95: monitor.recent_p95(&c.endpoint),
                err,
            });
        }
        if judged.len() < 2 {
            return; // no peer group to compare against
        }

        // Lower median, so that in a 2-replica set a candidate is
        // compared against its *peer*, not against itself.
        let median_p95 = {
            let mut v: Vec<Duration> = judged.iter().filter_map(|j| j.p95).collect();
            v.sort();
            if v.is_empty() {
                Duration::ZERO
            } else {
                v[(v.len() - 1) / 2]
            }
        };
        let median_err = {
            let mut v: Vec<f64> = judged.iter().map(|j| j.err).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            v[(v.len() - 1) / 2]
        };

        // Budget: how many of this set may be out at once.
        let max_out = ((candidates.len() as f64 * self.config.max_eject_fraction) as usize).max(1);

        // Worst offenders first so the budget goes to the clearest outliers.
        let mut offenders: Vec<(Judged, f64)> = judged
            .iter()
            .filter_map(|j| {
                let latency_out = j.p95.is_some_and(|p95| {
                    median_p95 > Duration::ZERO
                        && p95.as_secs_f64() > median_p95.as_secs_f64() * self.config.latency_factor
                        && p95 >= self.config.min_latency
                });
                let error_out = j.err > median_err + self.config.error_margin;
                if !(latency_out || error_out) {
                    return None;
                }
                let severity = match (j.p95, median_p95 > Duration::ZERO) {
                    (Some(p95), true) => p95.as_secs_f64() / median_p95.as_secs_f64() + j.err,
                    _ => 1.0 + j.err,
                };
                Some((j.clone(), severity))
            })
            .collect();
        offenders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        for (j, _) in offenders {
            let already_out = state.ejected.values().filter(|until| **until > now).count();
            if already_out >= max_out {
                break;
            }
            let until = now + self.config.eject_duration;
            let fresh =
                state.ejected.insert(j.endpoint.clone(), until).is_none_or(|prev| prev <= now);
            if fresh {
                self.ejections.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(endpoint: &str, in_flight: usize, latency_ms: Option<u64>) -> UpstreamView {
        UpstreamView {
            endpoint: endpoint.to_string(),
            in_flight,
            mean_latency: latency_ms.map(Duration::from_millis),
        }
    }

    #[test]
    fn round_robin_cycles_per_service() {
        let b = Balancer::new(Policy::RoundRobin, 7);
        let c = vec![view("a", 0, None), view("b", 0, None), view("c", 0, None)];
        let picks: Vec<usize> = (0..6).map(|_| b.pick("svc", &c).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Another service has its own cursor.
        assert_eq!(b.pick("other", &c), Some(0));
    }

    #[test]
    fn two_choice_prefers_the_less_loaded() {
        let b = Balancer::new(Policy::RandomTwoChoice, 42);
        // One idle replica among loaded ones: with two random probes it
        // must win every comparison it appears in, so it gets picked
        // far more often than 1/3 of the time.
        let c = vec![view("busy1", 10, None), view("idle", 0, None), view("busy2", 10, None)];
        let idle_picks = (0..300).filter(|_| b.pick("svc", &c) == Some(1)).count();
        assert!(idle_picks > 120, "idle replica picked only {idle_picks}/300");
    }

    #[test]
    fn least_latency_picks_the_fastest_known() {
        let b = Balancer::new(Policy::LeastLatency, 1);
        let c = vec![view("slow", 0, Some(80)), view("fast", 0, Some(5)), view("mid", 0, Some(20))];
        assert_eq!(b.pick("svc", &c), Some(1));
    }

    #[test]
    fn least_latency_explores_unmeasured_replicas() {
        let b = Balancer::new(Policy::LeastLatency, 1);
        let c = vec![view("fast", 0, Some(5)), view("new", 0, None)];
        assert_eq!(b.pick("svc", &c), Some(1));
    }

    #[test]
    fn empty_and_singleton_candidate_sets() {
        let b = Balancer::new(Policy::RoundRobin, 1);
        assert_eq!(b.pick("svc", &[]), None);
        assert_eq!(b.pick("svc", &[view("only", 3, None)]), Some(0));
    }

    fn test_monitor() -> QosMonitor {
        QosMonitor::new(std::sync::Arc::new(soc_http::mem::MemNetwork::new()))
    }

    fn feed(monitor: &QosMonitor, endpoint: &str, n: usize, ok: bool, latency: Duration) {
        for _ in 0..n {
            monitor.record(endpoint, ok, latency);
        }
    }

    fn eager_config() -> OutlierConfig {
        OutlierConfig {
            eval_interval: Duration::ZERO,
            min_samples: 8,
            min_latency: Duration::from_micros(1),
            eject_duration: Duration::from_secs(60),
            ..OutlierConfig::default()
        }
    }

    #[test]
    fn slow_outlier_is_ejected_and_counted() {
        let monitor = test_monitor();
        feed(&monitor, "a", 32, true, Duration::from_millis(1));
        feed(&monitor, "b", 32, true, Duration::from_millis(1));
        feed(&monitor, "slow", 32, true, Duration::from_millis(20));
        let ej = OutlierEjector::new(eager_config());
        let views = vec![view("a", 0, Some(1)), view("b", 0, Some(1)), view("slow", 0, Some(20))];
        let (kept, out) = ej.filter("svc", views, &monitor);
        assert_eq!(out, vec!["slow".to_string()]);
        assert_eq!(kept.len(), 2);
        assert_eq!(ej.total_ejections(), 1);
        assert_eq!(ej.ejected_endpoints("svc"), vec!["slow".to_string()]);
    }

    #[test]
    fn erroring_outlier_is_ejected() {
        let monitor = test_monitor();
        feed(&monitor, "a", 32, true, Duration::from_millis(1));
        feed(&monitor, "b", 32, true, Duration::from_millis(1));
        feed(&monitor, "bad", 32, false, Duration::from_millis(1));
        let ej = OutlierEjector::new(eager_config());
        let views = vec![view("a", 0, None), view("b", 0, None), view("bad", 0, None)];
        let (kept, out) = ej.filter("svc", views, &monitor);
        assert_eq!(out, vec!["bad".to_string()]);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn thin_evidence_never_ejects() {
        let monitor = test_monitor();
        feed(&monitor, "a", 32, true, Duration::from_millis(1));
        feed(&monitor, "slow", 4, true, Duration::from_millis(50)); // < min_samples
        let ej = OutlierEjector::new(eager_config());
        let views = vec![view("a", 0, None), view("slow", 0, None)];
        let (kept, out) = ej.filter("svc", views, &monitor);
        assert!(out.is_empty());
        assert_eq!(kept.len(), 2);
        assert_eq!(ej.total_ejections(), 0);
    }

    #[test]
    fn max_eject_fraction_bounds_ejections() {
        let monitor = test_monitor();
        feed(&monitor, "good", 32, true, Duration::from_millis(1));
        feed(&monitor, "slow1", 32, true, Duration::from_millis(40));
        feed(&monitor, "slow2", 32, true, Duration::from_millis(50));
        feed(&monitor, "slow3", 32, true, Duration::from_millis(60));
        let ej = OutlierEjector::new(OutlierConfig {
            max_eject_fraction: 0.25, // of 4 replicas → at most 1 out
            ..eager_config()
        });
        let views = vec![
            view("good", 0, None),
            view("slow1", 0, None),
            view("slow2", 0, None),
            view("slow3", 0, None),
        ];
        let (kept, out) = ej.filter("svc", views, &monitor);
        // Only the single worst offender goes; the median (a slow one)
        // protects the rest anyway, but the budget is the hard cap.
        assert!(out.len() <= 1, "ejected {out:?}");
        assert!(kept.len() >= 3);
    }

    #[test]
    fn fails_open_when_everyone_is_an_outlier() {
        let monitor = test_monitor();
        feed(&monitor, "a", 32, true, Duration::from_millis(1));
        feed(&monitor, "slow", 32, true, Duration::from_millis(30));
        let ej = OutlierEjector::new(OutlierConfig { max_eject_fraction: 1.0, ..eager_config() });
        // First pass ejects "slow"; present only "slow" next — filter
        // must fail open rather than return an empty set.
        let views = vec![view("a", 0, None), view("slow", 0, None)];
        let (_, out) = ej.filter("svc", views, &monitor);
        assert_eq!(out, vec!["slow".to_string()]);
        let (kept, out) = ej.filter("svc", vec![view("slow", 0, None)], &monitor);
        assert!(out.is_empty());
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn disabled_ejector_keeps_everyone() {
        let monitor = test_monitor();
        feed(&monitor, "a", 32, true, Duration::from_millis(1));
        feed(&monitor, "slow", 32, true, Duration::from_millis(30));
        let ej = OutlierEjector::new(OutlierConfig { enabled: false, ..eager_config() });
        let views = vec![view("a", 0, None), view("slow", 0, None)];
        let (kept, out) = ej.filter("svc", views, &monitor);
        assert!(out.is_empty());
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn ejection_lapses_after_eject_duration() {
        let monitor = test_monitor();
        feed(&monitor, "a", 32, true, Duration::from_millis(1));
        feed(&monitor, "b", 32, true, Duration::from_millis(1));
        feed(&monitor, "slow", 32, true, Duration::from_millis(30));
        let ej = OutlierEjector::new(OutlierConfig {
            eject_duration: Duration::from_millis(30),
            // Long eval interval: the lapse is observed between evals,
            // exercising the re-admission (not re-judgement) path.
            eval_interval: Duration::from_secs(60),
            ..eager_config()
        });
        let mk = || vec![view("a", 0, None), view("b", 0, None), view("slow", 0, None)];
        let (_, out) = ej.filter("svc", mk(), &monitor);
        assert_eq!(out, vec!["slow".to_string()]);
        std::thread::sleep(Duration::from_millis(60));
        let (kept, out) = ej.filter("svc", mk(), &monitor);
        assert!(out.is_empty(), "lapsed ejection must re-admit");
        assert_eq!(kept.len(), 3);
        assert!(ej.ejected_endpoints("svc").is_empty());
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift64::new(99);
        let mut b = XorShift64::new(99);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<&u64> = xs.iter().collect();
        assert!(distinct.len() >= 7);
        for _ in 0..100 {
            let j = a.jitter();
            assert!((0.5..1.5).contains(&j));
        }
    }
}
