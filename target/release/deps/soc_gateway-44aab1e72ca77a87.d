/root/repo/target/release/deps/soc_gateway-44aab1e72ca77a87.d: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

/root/repo/target/release/deps/libsoc_gateway-44aab1e72ca77a87.rlib: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

/root/repo/target/release/deps/libsoc_gateway-44aab1e72ca77a87.rmeta: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

crates/soc-gateway/src/lib.rs:
crates/soc-gateway/src/balance.rs:
crates/soc-gateway/src/breaker.rs:
crates/soc-gateway/src/limit.rs:
crates/soc-gateway/src/resolver.rs:
crates/soc-gateway/src/stats.rs:
