//! The Section V scenario at full scale: three federated directories, a
//! crawler that discovers every service across them, a TF-IDF search
//! engine over the result, and a QoS monitor that watches a flaky
//! upstream — the paper's motivation for hosting a reliable repository.
//!
//! ```sh
//! cargo run --example service_marketplace
//! ```

use std::sync::Arc;
use std::time::Duration;

use soc::http::mem::{FaultConfig, Transport};
use soc::http::MemNetwork;
use soc::registry::crawler::Crawler;
use soc::registry::directory::{DirectoryClient, DirectoryService};
use soc::registry::monitor::QosMonitor;
use soc::registry::{Binding, Repository, ServiceDescriptor};

fn main() {
    let net = MemNetwork::new();

    // The ASU repository hosts the real services.
    let catalog = soc::services::bindings::host_all(&net, 9);

    // Directory A: the ASU services. Peers with B.
    let repo_a = Repository::new();
    for d in catalog {
        repo_a.publish(d).unwrap();
    }
    let (dir_a, _) = DirectoryService::new(repo_a, vec!["mem://xmethods.example".into()]);
    net.host("asu.directory", dir_a);

    // Directory B: "free public services" (some of them now dead links).
    let repo_b = Repository::new();
    for (id, name, desc) in [
        ("tempconv", "Temperature Conversion", "convert celsius fahrenheit kelvin"),
        ("stock", "Stock Quote Lookup", "delayed stock quotes by ticker symbol"),
        ("zip", "Zip Code Lookup", "city and state for a US zip code"),
    ] {
        repo_b
            .publish(
                ServiceDescriptor::new(id, name, &format!("mem://free-{id}/api"), Binding::Rest)
                    .describe(desc)
                    .category("public")
                    .provider("xmethods.example"),
            )
            .unwrap();
    }
    let (dir_b, _) = DirectoryService::new(repo_b, vec!["mem://remotemethods.example".into()]);
    net.host("xmethods.example", dir_b);

    // Directory C: exists in B's peer list but is offline — the paper's
    // "services are often offline or be removed without notice".
    let (dir_c, _) = DirectoryService::new(Repository::new(), vec![]);
    net.host("remotemethods.example", dir_c);
    net.set_fault("remotemethods.example", FaultConfig { offline: true, ..Default::default() });

    let transport: Arc<dyn Transport> = Arc::new(net.clone());

    // Crawl the federation.
    let report = Crawler::new(transport.clone()).crawl(&["mem://asu.directory"]);
    println!(
        "crawler: visited {} directories, found {} services, {} unreachable",
        report.visited.len(),
        report.services.len(),
        report.unreachable.len()
    );
    for (url, err) in &report.unreachable {
        println!("  unreachable: {url} ({err})");
    }

    // Search what the crawler found (the `/sse/` service engine).
    let engine = report.into_search_engine();
    for query in ["password strong random", "credit score", "zip code city"] {
        println!("\nsearch: {query:?}");
        for hit in engine.search(query, 3) {
            println!("  {:>6.3}  [{}] {}", hit.score, hit.service.id, hit.service.name);
        }
    }

    // Monitor availability of one healthy and one flaky endpoint.
    net.host("flaky.example", |_req: soc::http::Request| soc::http::Response::text("ok"));
    net.set_fault(
        "flaky.example",
        FaultConfig { fail_every: 3, latency: Duration::from_millis(1), ..Default::default() },
    );
    let monitor = QosMonitor::new(transport);
    monitor.probe_n("asu-services", "mem://services.asu/health", 12);
    monitor.probe_n("flaky-free-service", "mem://flaky.example/health", 12);
    println!("\nQoS reports:");
    for r in monitor.all_reports() {
        println!(
            "  {:<20} availability {:>5.1}%  probes {}  mean latency {:?}",
            r.id,
            r.availability * 100.0,
            r.probes,
            r.mean_latency
        );
    }

    // Publish a new service through the registration API (the paper's
    // "registration page").
    let client = DirectoryClient::new(Arc::new(net), "mem://asu.directory");
    client
        .register(
            &ServiceDescriptor::new(
                "robot",
                "Robot as a Service",
                "mem://robot/sessions",
                Binding::Rest,
            )
            .describe("maze navigation robot sessions with sensors and algorithms")
            .category("robotics")
            .keywords(&["robot", "maze", "raas"]),
        )
        .unwrap();
    println!(
        "\nregistered 'Robot as a Service'; directory now lists {} services",
        client.list().unwrap().len()
    );

    // Semantic search (CSE446 unit 6): "security" subsumes the
    // repository's security-category services through the ontology even
    // when keyword search would rank them poorly.
    let semantic = client.semantic_search("security").unwrap();
    println!("\nsemantic search for category 'security' ({} hits):", semantic.len());
    for d in semantic.iter().take(4) {
        println!("  [{}] {} (category: {})", d.id, d.name, d.category);
    }
}
