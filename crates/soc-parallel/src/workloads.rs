//! The Collatz-conjecture validation workload from the paper's Figure 3:
//! *"a program that validates the Collatz conjecture has been used to
//! evaluate the performance in a single core up through 32 cores"*.

use crate::par_iter::{parallel_reduce, Schedule};
use crate::pool::ThreadPool;
use crate::simcore::TaskGraph;

/// Number of steps for `n` to reach 1 under the Collatz map
/// (`n/2` if even, `3n+1` if odd). Panics only on 0, which is outside
/// the conjecture's domain.
pub fn collatz_steps(mut n: u64) -> u32 {
    assert!(n > 0, "Collatz is defined for positive integers");
    let mut steps = 0;
    while n != 1 {
        if n.is_multiple_of(2) {
            n /= 2;
        } else {
            // 3n+1 on odd n; u64 overflow cannot occur for the ranges the
            // experiments use (n < 2^62), checked arithmetic documents it.
            n = n.checked_mul(3).and_then(|m| m.checked_add(1)).expect("Collatz overflow");
        }
        steps += 1;
    }
    steps
}

/// Statistics of validating the conjecture over `[1, limit]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollatzReport {
    /// Upper bound of the validated range (inclusive).
    pub limit: u64,
    /// Total steps across the range (the "work" the benchmark scales).
    pub total_steps: u64,
    /// Longest trajectory found.
    pub max_steps: u32,
    /// The `n` attaining `max_steps` (smallest such if tied).
    pub argmax: u64,
}

/// Validate sequentially — the baseline side of Figure 3.
pub fn validate_sequential(limit: u64) -> CollatzReport {
    let mut total = 0u64;
    let mut max_steps = 0u32;
    let mut argmax = 1u64;
    for n in 1..=limit {
        let s = collatz_steps(n);
        total += s as u64;
        if s > max_steps {
            max_steps = s;
            argmax = n;
        }
    }
    CollatzReport { limit, total_steps: total, max_steps, argmax }
}

/// Validate on a thread pool — the parallel side of Figure 3. The
/// reduction is associative and tie-breaks toward the smaller `n`, so
/// the result is identical to the sequential run regardless of schedule.
pub fn validate_parallel(pool: &ThreadPool, limit: u64, schedule: Schedule) -> CollatzReport {
    let zero = CollatzReport { limit, total_steps: 0, max_steps: 0, argmax: u64::MAX };
    let mut report = parallel_reduce(
        pool,
        1..(limit as usize + 1),
        schedule,
        zero,
        |i| {
            let n = i as u64;
            let s = collatz_steps(n);
            CollatzReport { limit, total_steps: s as u64, max_steps: s, argmax: n }
        },
        |a, b| {
            let (max_steps, argmax) = match a.max_steps.cmp(&b.max_steps) {
                std::cmp::Ordering::Greater => (a.max_steps, a.argmax),
                std::cmp::Ordering::Less => (b.max_steps, b.argmax),
                std::cmp::Ordering::Equal => (a.max_steps, a.argmax.min(b.argmax)),
            };
            CollatzReport { limit, total_steps: a.total_steps + b.total_steps, max_steps, argmax }
        },
    );
    if report.argmax == u64::MAX {
        report.argmax = 1; // empty range
    }
    report
}

/// Build the Figure 3 task graph for the virtual-multicore simulator:
/// the range `[1, limit]` split into `chunks` blocks whose costs are the
/// *actual* Collatz step counts of the block, plus a serial setup and a
/// serial reduction — the same structure the measured run has.
pub fn collatz_task_graph(limit: u64, chunks: usize) -> TaskGraph {
    let chunks = chunks.max(1);
    let per = limit.div_ceil(chunks as u64).max(1);
    let mut costs = Vec::with_capacity(chunks);
    let mut n = 1u64;
    while n <= limit {
        let hi = (n + per - 1).min(limit);
        let mut cost = 0u64;
        for v in n..=hi {
            cost += collatz_steps(v) as u64;
        }
        costs.push(cost.max(1));
        n = hi + 1;
    }
    // Setup/reduction costs ≈ 0.5% of total work: the small serial
    // fraction that bends Figure 3's efficiency curve downward.
    let total: u64 = costs.iter().sum();
    let serial = (total / 200).max(1);
    TaskGraph::fork_join(serial, &costs, serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_trajectories() {
        assert_eq!(collatz_steps(1), 0);
        assert_eq!(collatz_steps(2), 1);
        assert_eq!(collatz_steps(3), 7);
        assert_eq!(collatz_steps(6), 8);
        assert_eq!(collatz_steps(27), 111);
        assert_eq!(collatz_steps(97), 118);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rejected() {
        collatz_steps(0);
    }

    #[test]
    fn sequential_report_known_values() {
        let r = validate_sequential(1000);
        // 871 has the longest trajectory (178 steps) below 1000.
        assert_eq!(r.max_steps, 178);
        assert_eq!(r.argmax, 871);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let pool = ThreadPool::new(4);
        let seq = validate_sequential(5_000);
        for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 64 }] {
            let par = validate_parallel(&pool, 5_000, schedule);
            assert_eq!(par, seq, "{schedule:?}");
        }
    }

    #[test]
    fn task_graph_covers_all_work() {
        let g = collatz_task_graph(2_000, 16);
        let direct: u64 = (1..=2_000u64).map(|n| collatz_steps(n) as u64).sum();
        // fork_join adds two serial tasks.
        assert_eq!(g.len(), 16 + 2);
        let serial = (direct / 200).max(1);
        assert_eq!(g.total_work(), direct + 2 * serial);
    }

    #[test]
    fn task_graph_simulated_speedup_shape() {
        use crate::simcore::scaling_series;
        let g = collatz_task_graph(20_000, 128);
        let series = scaling_series(&g, &[1, 4, 8, 16, 32], 2);
        // Speedup increases with cores…
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1, "{series:?}");
        }
        // …while efficiency decreases (the Figure 3 shape).
        for w in series.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-9, "{series:?}");
        }
        // And 32 cores give substantial but sub-linear speedup.
        let (_, s32, e32) = *series.last().unwrap();
        assert!(s32 > 8.0 && s32 < 32.0, "s32 = {s32}");
        assert!(e32 < 1.0);
    }
}
