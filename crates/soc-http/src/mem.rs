//! An in-memory virtual network of hosts.
//!
//! Most of the paper's scenarios are *topologies*: a client consuming a
//! provider that consumes a third-party service; a crawler walking
//! several directories; a registry monitoring flaky upstreams. This
//! module hosts any number of [`Handler`]s under `mem://` names inside
//! one process, so those topologies run deterministically, with
//! controllable fault injection standing in for the paper's unreliable
//! free public services ("services are too slow... often offline or
//! removed without notice").

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::client::HttpClient;
use crate::fault::{FaultRng, FaultVerdict};
use crate::server::Handler;
use crate::types::{HttpError, HttpResult, Request, Response, Status};
use crate::url::Url;

pub use crate::fault::{FaultConfig, FaultWindow};

/// Origin name used for requests that do not come from a hosted
/// handler (i.e. test drivers and clients outside the network).
pub const CLIENT_ORIGIN: &str = "client";

thread_local! {
    // Stack of hosts currently serving on this thread: a handler that
    // calls back into the network sends *as* its host, so directional
    // partitions can cut e.g. gateway→replica while client→gateway
    // stays up.
    static ORIGIN: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn current_origin() -> String {
    ORIGIN.with(|o| o.borrow().last().cloned()).unwrap_or_else(|| CLIENT_ORIGIN.to_string())
}

struct OriginGuard;

impl Drop for OriginGuard {
    fn drop(&mut self) {
        ORIGIN.with(|o| {
            o.borrow_mut().pop();
        });
    }
}

fn push_origin(host: &str) -> OriginGuard {
    ORIGIN.with(|o| o.borrow_mut().push(host.to_string()));
    OriginGuard
}

/// Anything that can exchange request/response pairs: the TCP client,
/// the in-memory network, or the combined [`UniClient`]. Service-layer
/// code is written against this, so every binding works over both real
/// sockets and the virtual network.
pub trait Transport: Send + Sync {
    /// Send a request to an absolute URL target.
    fn send(&self, req: Request) -> HttpResult<Response>;
}

impl Transport for HttpClient {
    fn send(&self, req: Request) -> HttpResult<Response> {
        HttpClient::send(self, req)
    }
}

struct HostEntry {
    handler: Arc<dyn Handler>,
    fault: FaultConfig,
    hits: AtomicU64,
    rng: Mutex<FaultRng>,
}

/// A registry of named in-memory hosts addressed as `mem://name/path`.
#[derive(Clone, Default)]
pub struct MemNetwork {
    hosts: Arc<RwLock<HashMap<String, Arc<HostEntry>>>>,
    // Directional (from, to) pairs currently cut at the network level.
    partitions: Arc<RwLock<HashSet<(String, String)>>>,
}

impl MemNetwork {
    /// An empty network.
    pub fn new() -> Self {
        MemNetwork::default()
    }

    /// Register (or replace) a host.
    pub fn host(&self, name: &str, handler: impl Handler) {
        self.hosts.write().insert(
            name.to_string(),
            Arc::new(HostEntry {
                handler: Arc::new(handler),
                fault: FaultConfig::default(),
                hits: AtomicU64::new(0),
                rng: Mutex::new(FaultRng::new(0)),
            }),
        );
    }

    /// Remove a host (it "goes offline without notice").
    pub fn unhost(&self, name: &str) {
        self.hosts.write().remove(name);
    }

    /// Configure fault injection for an existing host.
    pub fn set_fault(&self, name: &str, fault: FaultConfig) -> bool {
        let hosts = self.hosts.read();
        let Some(entry) = hosts.get(name) else { return false };
        let entry = entry.clone();
        drop(hosts);
        let mut hosts = self.hosts.write();
        let rng = Mutex::new(FaultRng::new(fault.seed));
        hosts.insert(
            name.to_string(),
            Arc::new(HostEntry {
                handler: entry.handler.clone(),
                fault,
                hits: AtomicU64::new(entry.hits.load(Ordering::Relaxed)),
                rng,
            }),
        );
        true
    }

    /// Cut traffic from `from` to `to` (directional). `from` is either
    /// a hosted name (for handler-to-handler calls) or
    /// [`CLIENT_ORIGIN`] for external callers.
    pub fn partition(&self, from: &str, to: &str) {
        self.partitions.write().insert((from.to_string(), to.to_string()));
    }

    /// Restore traffic from `from` to `to`.
    pub fn heal(&self, from: &str, to: &str) {
        self.partitions.write().remove(&(from.to_string(), to.to_string()));
    }

    /// Remove every partition.
    pub fn heal_all(&self) {
        self.partitions.write().clear();
    }

    /// Names of all registered hosts.
    pub fn host_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.hosts.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Requests a host has received.
    pub fn hits(&self, name: &str) -> u64 {
        self.hosts.read().get(name).map(|e| e.hits.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

impl Transport for MemNetwork {
    fn send(&self, req: Request) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        if url.scheme != "mem" {
            return Err(HttpError::BadUrl(format!(
                "MemNetwork only routes mem://, got {}",
                url.scheme
            )));
        }
        // Network-level partition: the caller can't tell whether the
        // host exists, the packets just never arrive.
        if !self.partitions.read().is_empty() {
            let origin = current_origin();
            if self.partitions.read().contains(&(origin.clone(), url.host.clone())) {
                return Err(HttpError::Io(format!("partitioned: {origin} -> {}", url.host)));
            }
        }
        let entry = self
            .hosts
            .read()
            .get(&url.host)
            .cloned()
            .ok_or_else(|| HttpError::UnknownHost(url.host.clone()))?;

        if entry.fault.offline {
            return Err(HttpError::Io(format!("host {} is offline", url.host)));
        }
        if !entry.fault.latency.is_zero() {
            std::thread::sleep(entry.fault.latency);
        }
        let n = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if entry.fault.fail_every > 0 && n % entry.fault.fail_every == 0 {
            return Ok(Response::error(Status::SERVICE_UNAVAILABLE, "injected fault"));
        }
        let verdict = entry.fault.verdict(n, &mut entry.rng.lock());
        if verdict == FaultVerdict::FailEarly {
            return Ok(Response::error(Status::SERVICE_UNAVAILABLE, "injected fault"));
        }

        // The handler sees origin-form targets, exactly like over TCP.
        let mut inner = req;
        inner.target = url.path_and_query();
        // Same trace plumbing as the TCP path: inject the caller's
        // context, then serve inside a server span on the "remote" side.
        crate::observe::inject_traceparent(&mut inner.headers);
        // Nested sends from inside the handler originate at this host.
        let _origin = push_origin(&url.host);
        let mut resp = crate::observe::serve_with_span(inner, "mem.server", |req| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry.handler.handle(req)))
                .unwrap_or_else(|_| {
                    Response::error(Status::INTERNAL_SERVER_ERROR, "handler panicked")
                })
        });
        // Post-handler faults: side effects already happened on the
        // host; only the response suffers.
        match verdict {
            FaultVerdict::Reset => {
                Err(HttpError::Io(format!("connection reset by {} (injected)", url.host)))
            }
            FaultVerdict::Truncate => Err(HttpError::UnexpectedEof),
            FaultVerdict::Corrupt => {
                crate::fault::corrupt_body(&mut resp.body);
                Ok(resp)
            }
            FaultVerdict::Clean | FaultVerdict::FailEarly => Ok(resp),
        }
    }
}

/// A transport that routes `mem://` to a [`MemNetwork`] and `http://`
/// to a real [`HttpClient`] — application code stays
/// deployment-agnostic, which is the SOA platform-independence story.
#[derive(Clone)]
pub struct UniClient {
    net: MemNetwork,
    http: HttpClient,
}

impl UniClient {
    /// Combine a virtual network with a TCP client.
    pub fn new(net: MemNetwork) -> Self {
        UniClient { net, http: HttpClient::new() }
    }

    /// Override the TCP client (timeouts, body limits).
    pub fn with_http(mut self, http: HttpClient) -> Self {
        self.http = http;
        self
    }
}

impl Transport for UniClient {
    fn send(&self, req: Request) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        match url.scheme.as_str() {
            "mem" => self.net.send(req),
            "http" => self.http.send(req),
            other => Err(HttpError::BadUrl(format!("unsupported scheme {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_net() -> MemNetwork {
        let net = MemNetwork::new();
        net.host("echo", |req: Request| Response::text(format!("{} {}", req.method, req.target)));
        net
    }

    #[test]
    fn routes_to_named_host() {
        let net = echo_net();
        let resp = net.send(Request::get("mem://echo/a/b?x=1")).unwrap();
        assert_eq!(resp.text_body().unwrap(), "GET /a/b?x=1");
        assert_eq!(net.hits("echo"), 1);
    }

    #[test]
    fn unknown_host_errors() {
        let net = echo_net();
        assert!(matches!(
            net.send(Request::get("mem://ghost/")),
            Err(HttpError::UnknownHost(h)) if h == "ghost"
        ));
    }

    #[test]
    fn unhost_takes_service_offline() {
        let net = echo_net();
        net.unhost("echo");
        assert!(net.send(Request::get("mem://echo/")).is_err());
        assert!(net.host_names().is_empty());
    }

    #[test]
    fn fault_injection_fail_every() {
        let net = echo_net();
        assert!(net.set_fault("echo", FaultConfig { fail_every: 3, ..Default::default() }));
        let mut failures = 0;
        for _ in 0..9 {
            let resp = net.send(Request::get("mem://echo/")).unwrap();
            if resp.status == Status::SERVICE_UNAVAILABLE {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
    }

    #[test]
    fn offline_fault_is_io_error() {
        let net = echo_net();
        net.set_fault("echo", FaultConfig { offline: true, ..Default::default() });
        assert!(matches!(net.send(Request::get("mem://echo/")), Err(HttpError::Io(_))));
    }

    #[test]
    fn set_fault_on_missing_host_is_false() {
        let net = MemNetwork::new();
        assert!(!net.set_fault("nope", FaultConfig::default()));
    }

    #[test]
    fn panicking_handler_is_500_not_poison() {
        let net = MemNetwork::new();
        net.host("bad", |_req: Request| -> Response { panic!("bug") });
        let resp = net.send(Request::get("mem://bad/")).unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        // Network still usable.
        let resp = net.send(Request::get("mem://bad/")).unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let net = echo_net();
            net.set_fault("echo", FaultConfig::seeded(seed).with_fail(0.3));
            (0..64)
                .map(|_| net.send(Request::get("mem://echo/")).unwrap().status.is_success())
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        let failures = run(5).iter().filter(|ok| !**ok).count();
        assert!((5..=35).contains(&failures), "got {failures}");
    }

    #[test]
    fn reset_runs_handler_but_loses_response() {
        let net = MemNetwork::new();
        let hits = Arc::new(AtomicU64::new(0));
        let handler_hits = hits.clone();
        net.host("flaky", move |_req: Request| {
            handler_hits.fetch_add(1, Ordering::SeqCst);
            Response::text("done")
        });
        net.set_fault("flaky", FaultConfig::seeded(1).with_reset(1.0));
        let err = net.send(Request::post("mem://flaky/", b"x".to_vec()));
        assert!(matches!(err, Err(HttpError::Io(_))));
        // The side effect happened even though the client saw an error.
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn corruption_and_truncation() {
        let net = echo_net();
        net.set_fault("echo", FaultConfig::seeded(2).with_corrupt(1.0));
        let resp = net.send(Request::get("mem://echo/x")).unwrap();
        assert!(resp.status.is_success());
        assert_ne!(resp.body, b"GET /x".to_vec());
        net.set_fault("echo", FaultConfig::seeded(2).with_truncate(1.0));
        assert!(matches!(net.send(Request::get("mem://echo/x")), Err(HttpError::UnexpectedEof)));
    }

    #[test]
    fn burst_window_gates_faults() {
        let net = echo_net();
        // Blackout on the first 2 of every 4 requests (positions 0,1).
        net.set_fault(
            "echo",
            FaultConfig::default().with_window(FaultWindow { period: 4, faulty: 2, offset: 0 }),
        );
        let ok: Vec<bool> = (1..=8u64)
            .map(|_| net.send(Request::get("mem://echo/")).unwrap().status.is_success())
            .collect();
        assert_eq!(ok, vec![false, true, true, false, false, true, true, false]);
    }

    #[test]
    fn partitions_are_directional_and_heal() {
        let net = MemNetwork::new();
        let backend_net = net.clone();
        net.host("frontend", move |_req: Request| {
            match backend_net.send(Request::get("mem://backend/")) {
                Ok(r) => r,
                Err(e) => Response::error(Status(502), &e.to_string()),
            }
        });
        net.host("backend", |_req: Request| Response::text("pong"));

        // Cut frontend→backend: the client still reaches the frontend,
        // which now cannot reach its backend.
        net.partition("frontend", "backend");
        let resp = net.send(Request::get("mem://frontend/")).unwrap();
        assert_eq!(resp.status, Status(502));
        // Direct client→backend is unaffected (directional).
        assert!(net.send(Request::get("mem://backend/")).unwrap().status.is_success());
        // Client→backend can be cut independently.
        net.partition(CLIENT_ORIGIN, "backend");
        assert!(net.send(Request::get("mem://backend/")).is_err());
        net.heal_all();
        assert!(net.send(Request::get("mem://frontend/")).unwrap().status.is_success());
    }

    #[test]
    fn uniclient_dispatches_by_scheme() {
        let net = echo_net();
        let uni = UniClient::new(net);
        assert!(uni.send(Request::get("mem://echo/ok")).is_ok());
        assert!(uni.send(Request::get("ftp://x/")).is_err());
    }

    #[test]
    fn hosts_are_concurrent() {
        let net = Arc::new(echo_net());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    net.send(Request::get("mem://echo/")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.hits("echo"), 200);
    }
}
