//! The "random string image" (image verifier) service: renders a random
//! challenge string into a noisy bitmap and verifies answers exactly
//! once — the repository's captcha.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::{Bitmap, Color};

/// A generated challenge handed to the client.
#[derive(Debug, Clone)]
pub struct Challenge {
    /// Opaque id to submit alongside the answer.
    pub id: u64,
    /// The rendered image (the *only* place the text appears for the
    /// client).
    pub image: Bitmap,
}

/// Verification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verify {
    /// Answer matched; the challenge is consumed.
    Pass,
    /// Answer did not match; the challenge is consumed (no retries on
    /// the same image — the standard anti-bruteforce rule).
    Fail,
    /// Unknown or already-consumed challenge id.
    Unknown,
}

/// The captcha service.
pub struct CaptchaService {
    pending: Mutex<HashMap<u64, String>>,
    next_id: AtomicU64,
    rng: Mutex<StdRng>,
    length: usize,
}

// Ambiguous glyphs (0/O, 1/I) excluded, as real captchas do.
const ALPHABET: &[u8] = b"ABCDEFGHJKLMNPQRSTUVWXYZ23456789";

impl CaptchaService {
    /// Service generating challenges of `length` characters.
    pub fn new(seed: u64, length: usize) -> Self {
        CaptchaService {
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            length: length.clamp(3, 12),
        }
    }

    /// Create a new challenge.
    pub fn challenge(&self) -> Challenge {
        let mut rng = self.rng.lock();
        let text: String =
            (0..self.length).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char).collect();
        let noise_seed: u64 = rng.gen();
        drop(rng);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let image = render_captcha(&text, noise_seed);
        self.pending.lock().insert(id, text);
        Challenge { id, image }
    }

    /// Verify an answer (case-insensitive). Consumes the challenge.
    pub fn verify(&self, id: u64, answer: &str) -> Verify {
        match self.pending.lock().remove(&id) {
            Some(text) if text.eq_ignore_ascii_case(answer.trim()) => Verify::Pass,
            Some(_) => Verify::Fail,
            None => Verify::Unknown,
        }
    }

    /// Outstanding (unconsumed) challenges.
    pub fn pending(&self) -> usize {
        self.pending.lock().len()
    }

    /// Test/diagnostics hook: peek at a pending challenge's text.
    /// The HTTP binding never exposes this.
    pub fn peek(&self, id: u64) -> Option<String> {
        self.pending.lock().get(&id).cloned()
    }
}

/// Render the text with per-character jitter plus speckle and strike
/// lines (deterministic from `noise_seed`).
pub fn render_captcha(text: &str, noise_seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(noise_seed);
    let scale = 3usize;
    let width = text.len() * 6 * scale + 20;
    let height = 7 * scale + 24;
    let mut img = Bitmap::new(width, height, Color::WHITE);
    // Speckle noise.
    for _ in 0..width * height / 20 {
        let x = rng.gen_range(0..width) as i64;
        let y = rng.gen_range(0..height) as i64;
        img.set(x, y, Color::GRAY);
    }
    // Glyphs with vertical jitter.
    for (i, c) in text.chars().enumerate() {
        let jitter = rng.gen_range(0..10) as i64;
        img.glyph(c, (10 + i * 6 * scale) as i64, 4 + jitter, scale, Color::BLACK);
    }
    // Strike-through lines.
    for _ in 0..2 {
        let y0 = rng.gen_range(0..height) as i64;
        let y1 = rng.gen_range(0..height) as i64;
        img.line(0, y0, width as i64 - 1, y1, Color::GRAY);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenge_verify_pass() {
        let svc = CaptchaService::new(42, 6);
        let ch = svc.challenge();
        let text = svc.peek(ch.id).unwrap();
        assert_eq!(svc.verify(ch.id, &text), Verify::Pass);
        // Consumed: a second attempt is Unknown.
        assert_eq!(svc.verify(ch.id, &text), Verify::Unknown);
    }

    #[test]
    fn wrong_answer_fails_and_consumes() {
        let svc = CaptchaService::new(43, 5);
        let ch = svc.challenge();
        assert_eq!(svc.verify(ch.id, "WRONG"), Verify::Fail);
        assert_eq!(svc.verify(ch.id, "WRONG"), Verify::Unknown);
        assert_eq!(svc.pending(), 0);
    }

    #[test]
    fn verification_is_case_insensitive_and_trims() {
        let svc = CaptchaService::new(44, 5);
        let ch = svc.challenge();
        let text = svc.peek(ch.id).unwrap().to_lowercase();
        assert_eq!(svc.verify(ch.id, &format!("  {text}  ")), Verify::Pass);
    }

    #[test]
    fn unknown_id_is_unknown() {
        let svc = CaptchaService::new(45, 5);
        assert_eq!(svc.verify(999, "X"), Verify::Unknown);
    }

    #[test]
    fn challenge_text_uses_unambiguous_alphabet() {
        let svc = CaptchaService::new(46, 8);
        for _ in 0..10 {
            let ch = svc.challenge();
            let text = svc.peek(ch.id).unwrap();
            assert!(text.bytes().all(|b| ALPHABET.contains(&b)), "{text}");
            assert_eq!(text.len(), 8);
        }
    }

    #[test]
    fn images_contain_ink_and_noise() {
        let img = render_captcha("AB3X", 7);
        assert!(img.count_pixels(Color::BLACK) > 100, "glyph ink missing");
        assert!(img.count_pixels(Color::GRAY) > 50, "noise missing");
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        assert_eq!(render_captcha("HELLO", 5), render_captcha("HELLO", 5));
        assert_ne!(render_captcha("HELLO", 5), render_captcha("HELLO", 6));
    }

    #[test]
    fn distinct_texts_render_distinct_images() {
        assert_ne!(render_captcha("AAAA", 5), render_captcha("BBBB", 5));
    }
}
