//! # soc-json — JSON for the REST side of the stack
//!
//! The paper's CSE446 projects include *"RESTful service development,
//! Web applications consuming RESTful services"*; REST payloads in this
//! workspace are JSON. This crate is a small, complete JSON
//! implementation: a [`Value`] model, a strict RFC 8259 parser, compact
//! and pretty serializers, and JSON Pointer (RFC 6901) lookup.
//!
//! ```
//! use soc_json::{json, Value};
//!
//! let v = json!({ "service": "echo", "cost": 0, "tags": ["rest", "demo"] });
//! assert_eq!(v.pointer("/tags/1").and_then(Value::as_str), Some("demo"));
//! let text = v.to_string();
//! assert_eq!(Value::parse(&text).unwrap(), v);
//! ```

pub mod borrow;
pub mod parse;
pub mod pointer;
pub mod scan;
pub mod ser;
pub mod value;

pub use borrow::ValueRef;
pub use parse::{parse_ref, JsonError, JsonResult};
pub use value::{Number, Value};

/// Build a [`Value`] with JSON-like syntax. Supports objects, arrays,
/// literals, and interpolating expressions that implement
/// `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod macro_tests {
    use crate::Value;

    #[test]
    fn literals() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(2.5), Value::from(2.5));
        assert_eq!(json!("hi"), Value::from("hi"));
    }

    #[test]
    fn nested_structures() {
        let v = json!({ "a": [1, 2, { "b": null }], "c": false });
        assert_eq!(v.pointer("/a/2/b"), Some(&Value::Null));
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
    }

    #[test]
    fn interpolation() {
        let name = format!("svc-{}", 9);
        let v = json!({ "name": name, "n": (4 + 3) });
        assert_eq!(v.get("name").and_then(Value::as_str), Some("svc-9"));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(7));
    }
}
