/root/repo/target/debug/deps/fig1_raas-55a888947c8dd5f6.d: crates/soc-bench/src/bin/fig1_raas.rs

/root/repo/target/debug/deps/fig1_raas-55a888947c8dd5f6: crates/soc-bench/src/bin/fig1_raas.rs

crates/soc-bench/src/bin/fig1_raas.rs:
