//! The encryption/decryption service core: teaching ciphers plus a real
//! block cipher (XTEA) implemented from scratch, and the hex/base64
//! codecs the other services share.
//!
//! These are course artifacts, not production cryptography — the point
//! (per the paper's dependability unit) is that students implement and
//! *compose* security mechanisms, and that both ends of a service
//! agree on a wire format.

/// Lowercase hex encoding.
pub fn hex_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Hex decoding (strict: even length, hex digits only).
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex at {i}")))
        .collect()
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Base64 decoding (strict on alphabet; tolerant of missing padding).
pub fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    let mut vals = Vec::with_capacity(s.len());
    for c in s.bytes() {
        if c == b'=' {
            break;
        }
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            b'\r' | b'\n' => continue,
            _ => return Err(format!("invalid base64 byte {c:#x}")),
        };
        vals.push(v);
    }
    let mut out = Vec::with_capacity(vals.len() * 3 / 4);
    for chunk in vals.chunks(4) {
        match chunk.len() {
            4 => {
                let n = ((chunk[0] as u32) << 18)
                    | ((chunk[1] as u32) << 12)
                    | ((chunk[2] as u32) << 6)
                    | chunk[3] as u32;
                out.extend_from_slice(&[(n >> 16) as u8, (n >> 8) as u8, n as u8]);
            }
            3 => {
                let n = ((chunk[0] as u32) << 18)
                    | ((chunk[1] as u32) << 12)
                    | ((chunk[2] as u32) << 6);
                out.extend_from_slice(&[(n >> 16) as u8, (n >> 8) as u8]);
            }
            2 => {
                let n = ((chunk[0] as u32) << 18) | ((chunk[1] as u32) << 12);
                out.push((n >> 16) as u8);
            }
            _ => return Err("truncated base64".into()),
        }
    }
    Ok(out)
}

/// Caesar shift over ASCII letters (the icebreaker cipher).
pub fn caesar(text: &str, shift: u8) -> String {
    text.chars()
        .map(|c| match c {
            'a'..='z' => (((c as u8 - b'a' + shift % 26) % 26) + b'a') as char,
            'A'..='Z' => (((c as u8 - b'A' + shift % 26) % 26) + b'A') as char,
            c => c,
        })
        .collect()
}

/// Vigenère over ASCII letters with an alphabetic key.
pub fn vigenere_encrypt(text: &str, key: &str) -> Result<String, String> {
    vigenere(text, key, false)
}

/// Inverse of [`vigenere_encrypt`].
pub fn vigenere_decrypt(text: &str, key: &str) -> Result<String, String> {
    vigenere(text, key, true)
}

fn vigenere(text: &str, key: &str, decrypt: bool) -> Result<String, String> {
    let key: Vec<u8> = key
        .bytes()
        .filter(|b| b.is_ascii_alphabetic())
        .map(|b| b.to_ascii_lowercase() - b'a')
        .collect();
    if key.is_empty() {
        return Err("key must contain letters".into());
    }
    let mut ki = 0usize;
    Ok(text
        .chars()
        .map(|c| {
            let shift = key[ki % key.len()];
            let shift = if decrypt { 26 - shift } else { shift };
            match c {
                'a'..='z' | 'A'..='Z' => {
                    ki += 1;
                    let base = if c.is_ascii_lowercase() { b'a' } else { b'A' };
                    (((c as u8 - base + shift) % 26) + base) as char
                }
                c => c,
            }
        })
        .collect())
}

/// XTEA block cipher (64-bit blocks, 128-bit key, 64 Feistel rounds) —
/// the "real" cipher of the set, straight from the published algorithm.
pub struct Xtea {
    key: [u32; 4],
}

impl Xtea {
    const DELTA: u32 = 0x9E37_79B9;
    const ROUNDS: u32 = 32;

    /// Build from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut k = [0u32; 4];
        for (i, chunk) in key.chunks(4).enumerate() {
            k[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Xtea { key: k }
    }

    /// Derive a key from a passphrase (FNV-1a expansion; course-grade).
    pub fn from_passphrase(pass: &str) -> Self {
        let mut key = [0u8; 16];
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, slot) in key.iter_mut().enumerate() {
            for b in pass.bytes() {
                h ^= b as u64 ^ (i as u64) << 8;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h = h.wrapping_mul(0x100_0000_01b3).rotate_left(7);
            *slot = (h >> 32) as u8;
        }
        Xtea::new(&key)
    }

    fn encrypt_block(&self, block: [u32; 2]) -> [u32; 2] {
        let [mut v0, mut v1] = block;
        let mut sum: u32 = 0;
        for _ in 0..Self::ROUNDS {
            v0 = v0.wrapping_add(
                ((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1)
                    ^ sum.wrapping_add(self.key[(sum & 3) as usize]),
            );
            sum = sum.wrapping_add(Self::DELTA);
            v1 = v1.wrapping_add(
                ((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0)
                    ^ sum.wrapping_add(self.key[((sum >> 11) & 3) as usize]),
            );
        }
        [v0, v1]
    }

    fn decrypt_block(&self, block: [u32; 2]) -> [u32; 2] {
        let [mut v0, mut v1] = block;
        let mut sum: u32 = Self::DELTA.wrapping_mul(Self::ROUNDS);
        for _ in 0..Self::ROUNDS {
            v1 = v1.wrapping_sub(
                ((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0)
                    ^ sum.wrapping_add(self.key[((sum >> 11) & 3) as usize]),
            );
            sum = sum.wrapping_sub(Self::DELTA);
            v0 = v0.wrapping_sub(
                ((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1)
                    ^ sum.wrapping_add(self.key[(sum & 3) as usize]),
            );
        }
        [v0, v1]
    }

    /// Encrypt bytes (PKCS#7-style padding, ECB mode — documented
    /// course simplification).
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let pad = 8 - plaintext.len() % 8;
        let mut data = plaintext.to_vec();
        data.extend(std::iter::repeat_n(pad as u8, pad));
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks(8) {
            let block = [
                u32::from_be_bytes(chunk[0..4].try_into().expect("block")),
                u32::from_be_bytes(chunk[4..8].try_into().expect("block")),
            ];
            let enc = self.encrypt_block(block);
            out.extend_from_slice(&enc[0].to_be_bytes());
            out.extend_from_slice(&enc[1].to_be_bytes());
        }
        out
    }

    /// Decrypt bytes, validating the padding.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, String> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(8) {
            return Err("ciphertext must be a positive multiple of 8 bytes".into());
        }
        let mut out = Vec::with_capacity(ciphertext.len());
        for chunk in ciphertext.chunks(8) {
            let block = [
                u32::from_be_bytes(chunk[0..4].try_into().expect("block")),
                u32::from_be_bytes(chunk[4..8].try_into().expect("block")),
            ];
            let dec = self.decrypt_block(block);
            out.extend_from_slice(&dec[0].to_be_bytes());
            out.extend_from_slice(&dec[1].to_be_bytes());
        }
        let pad = *out.last().expect("nonempty") as usize;
        if pad == 0 || pad > 8 || out.len() < pad {
            return Err("bad padding".into());
        }
        if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err("bad padding".into());
        }
        out.truncate(out.len() - pad);
        Ok(out)
    }
}

/// The service facade: encrypt/decrypt text with a passphrase, output
/// base64 — the exact operation pair the repository's encryption
/// service exposes.
pub struct EncryptionService;

impl EncryptionService {
    /// Encrypt UTF-8 text to base64.
    pub fn encrypt_text(passphrase: &str, plaintext: &str) -> String {
        base64_encode(&Xtea::from_passphrase(passphrase).encrypt(plaintext.as_bytes()))
    }

    /// Decrypt base64 back to text.
    pub fn decrypt_text(passphrase: &str, ciphertext_b64: &str) -> Result<String, String> {
        let data = base64_decode(ciphertext_b64)?;
        let plain = Xtea::from_passphrase(passphrase).decrypt(&data)?;
        String::from_utf8(plain).map_err(|_| "decrypted bytes are not UTF-8".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = vec![0x00, 0xff, 0x10, 0xab];
        assert_eq!(hex_encode(&data), "00ff10ab");
        assert_eq!(hex_decode("00ff10ab").unwrap(), data);
        assert!(hex_decode("0g").is_err());
        assert!(hex_decode("abc").is_err());
    }

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_round_trip_binary() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        assert!(base64_decode("!!").is_err());
    }

    #[test]
    fn caesar_wraps() {
        assert_eq!(caesar("Attack at Dawn!", 3), "Dwwdfn dw Gdzq!");
        assert_eq!(caesar(&caesar("xyz", 3), 23), "xyz");
    }

    #[test]
    fn vigenere_round_trip() {
        let c = vigenere_encrypt("Meet me at the Web service", "lemon").unwrap();
        assert_ne!(c, "Meet me at the Web service");
        assert_eq!(vigenere_decrypt(&c, "LEMON").unwrap(), "Meet me at the Web service");
        assert!(vigenere_encrypt("x", "123").is_err());
    }

    #[test]
    fn vigenere_classic_vector() {
        assert_eq!(vigenere_encrypt("ATTACKATDAWN", "LEMON").unwrap(), "LXFOPVEFRNHR");
    }

    #[test]
    fn xtea_block_round_trip() {
        let cipher = Xtea::new(b"0123456789abcdef");
        let block = [0xDEAD_BEEF, 0x0BAD_F00D];
        let enc = cipher.encrypt_block(block);
        assert_ne!(enc, block);
        assert_eq!(cipher.decrypt_block(enc), block);
    }

    #[test]
    fn xtea_bytes_round_trip_various_lengths() {
        let cipher = Xtea::from_passphrase("course key");
        for len in [0, 1, 7, 8, 9, 63, 64, 100] {
            let data: Vec<u8> = (0..len as u8).collect();
            let enc = cipher.encrypt(&data);
            assert_eq!(enc.len() % 8, 0);
            assert_eq!(cipher.decrypt(&enc).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn xtea_wrong_key_fails_or_garbles() {
        let enc = Xtea::from_passphrase("right").encrypt(b"secret message");
        match Xtea::from_passphrase("wrong").decrypt(&enc) {
            Err(_) => {}
            Ok(garbled) => assert_ne!(garbled, b"secret message"),
        }
    }

    #[test]
    fn xtea_rejects_bad_ciphertext() {
        let cipher = Xtea::from_passphrase("k");
        assert!(cipher.decrypt(&[]).is_err());
        assert!(cipher.decrypt(&[1, 2, 3]).is_err());
    }

    #[test]
    fn service_facade_round_trip() {
        let c = EncryptionService::encrypt_text("pw", "hello service world");
        assert_eq!(EncryptionService::decrypt_text("pw", &c).unwrap(), "hello service world");
        assert!(EncryptionService::decrypt_text("pw", "not base64 !!").is_err());
    }

    #[test]
    fn different_passphrases_differ() {
        let a = EncryptionService::encrypt_text("a", "same text");
        let b = EncryptionService::encrypt_text("b", "same text");
        assert_ne!(a, b);
    }
}
