//! Property tests for the composition planner: over random typed
//! catalogs and random goals, every plan the planner emits must pass
//! the independent static checker, cover the goal, respect the node
//! cap, and be deterministic.

use proptest::prelude::*;

use soc_discover::catalog::{Catalog, DiscoveredService, TypedOperation};
use soc_discover::planner::{Goal, Planner};
use soc_discover::{check, NoQos, SearchIndex};
use soc_registry::{Binding, ServiceDescriptor};
use soc_soap::contract::Param;
use soc_soap::XsdType;

/// A fixed pool of typed parameters; each name has one type, so a
/// signature is fully determined by the name index.
fn pool(i: usize) -> Param {
    let types = [XsdType::String, XsdType::Int, XsdType::Double, XsdType::Boolean];
    Param { name: format!("p{i}"), ty: types[i % types.len()] }
}

const POOL: usize = 10;

/// Sorted, deduplicated parameter indices (the vendored proptest has
/// no set strategy, so sets are built from vec draws).
fn index_set(range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..POOL, range).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// One random operation: a few inputs, at least one output.
fn op_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (index_set(0..3), index_set(1..3))
}

fn catalog_strategy() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(op_strategy(), 1..12).prop_map(|services| {
        let mut catalog = Catalog::new();
        for (i, (ins, outs)) in services.into_iter().enumerate() {
            let id = format!("svc-{i}");
            catalog.merge(DiscoveredService {
                descriptor: ServiceDescriptor::new(
                    &id,
                    &id,
                    &format!("mem://{id}/api"),
                    Binding::Rest,
                ),
                namespace: format!("urn:prop:{i}"),
                base_path: "/api".into(),
                operations: vec![TypedOperation {
                    name: format!("Op{i}"),
                    inputs: ins.into_iter().map(pool).collect(),
                    outputs: outs.into_iter().map(pool).collect(),
                    doc: None,
                }],
                replicas: vec![format!("mem://{id}")],
                directories: vec!["mem://dir".into()],
            });
        }
        catalog
    })
}

fn goal_strategy() -> impl Strategy<Value = Goal> {
    (index_set(0..4), index_set(1..3), 1usize..8).prop_map(|(have, want, max_nodes)| {
        let mut goal = Goal::new().max_nodes(max_nodes);
        for i in have {
            let p = pool(i);
            goal = goal.have(&p.name, p.ty);
        }
        for i in want {
            let p = pool(i);
            goal = goal.want(&p.name, p.ty);
        }
        goal
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_emitted_plan_passes_the_static_checker(
        catalog in catalog_strategy(),
        goal in goal_strategy(),
    ) {
        let index = SearchIndex::build(&catalog);
        let planner = Planner::new(&index, &NoQos);
        if let Ok(plan) = planner.plan(&goal) {
            let violations = check(&plan, &goal);
            prop_assert!(violations.is_empty(), "planner emitted an unsound plan: {violations:?}\nplan: {plan:?}");
            prop_assert!(plan.nodes.len() <= goal.max_nodes);
            // Every want is delivered.
            for w in &goal.want {
                prop_assert!(plan.outputs.iter().any(|(name, _)| *name == w.name));
            }
        }
    }

    #[test]
    fn planning_is_deterministic(
        catalog in catalog_strategy(),
        goal in goal_strategy(),
    ) {
        let index = SearchIndex::build(&catalog);
        let planner = Planner::new(&index, &NoQos);
        let first = planner.plan(&goal);
        let second = planner.plan(&goal);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn trivially_satisfied_goals_always_plan(
        catalog in catalog_strategy(),
        names in index_set(1..4),
    ) {
        // Goals whose wants are all in the haves must always succeed,
        // with an empty node list.
        let mut goal = Goal::new();
        for &i in &names {
            let p = pool(i);
            goal = goal.have(&p.name, p.ty).want(&p.name, p.ty);
        }
        let index = SearchIndex::build(&catalog);
        let plan = Planner::new(&index, &NoQos).plan(&goal).unwrap();
        prop_assert!(plan.nodes.is_empty());
        prop_assert!(check(&plan, &goal).is_empty());
    }
}
