//! Differential tests for the SWAR scanner: every batched routine in
//! `soc_xml::scan` must agree with its byte-at-a-time oracle in
//! `scan::naive` on adversarial inputs — interest bytes in every lane
//! of the 8-byte word, multi-byte UTF-8 sequences straddling the word
//! boundary, bytes with the high bit set (the classic false-positive
//! source for the carry trick), and arbitrary byte soup. A second
//! section checks the property the scanner exists to preserve: the
//! reader's event stream survives a writer round trip unchanged.

use proptest::prelude::*;
use soc_xml::reader::OwnedEvent;
use soc_xml::{escape, scan, XmlReader};

/// Assert all scan routines agree with their oracles on `hay`.
fn assert_agrees(hay: &[u8]) {
    for needle in [b'<', b'&', b'>', b'"', b'\n', 0x00, 0x7f, 0x80, 0xc3, 0xff] {
        assert_eq!(
            scan::find_byte(hay, needle),
            scan::naive::find_byte(hay, needle),
            "find_byte({needle:#04x}) on {hay:02x?}"
        );
        assert_eq!(
            scan::count_byte(hay, needle),
            scan::naive::count_byte(hay, needle),
            "count_byte({needle:#04x}) on {hay:02x?}"
        );
        assert_eq!(
            scan::rfind_byte(hay, needle),
            scan::naive::rfind_byte(hay, needle),
            "rfind_byte({needle:#04x}) on {hay:02x?}"
        );
    }
    assert_eq!(scan::find_byte2(hay, b'"', b'&'), scan::naive::find_byte2(hay, b'"', b'&'));
    assert_eq!(
        scan::find_byte3(hay, b'<', b'&', b'>'),
        scan::naive::find_byte3(hay, b'<', b'&', b'>')
    );
    let needles = [b'<', b'>', b'&', b'"', b'\'', b'\n', b'\t'];
    assert_eq!(scan::find_any(hay, &needles), scan::naive::find_any(hay, &needles));
    assert_eq!(scan::find_substr(hay, b"]]>"), scan::naive::find_substr(hay, b"]]>"));
    assert_eq!(scan::skip_whitespace(hay), scan::naive::skip_whitespace(hay));
}

#[test]
fn interest_byte_in_every_lane() {
    // One interest byte walked through every position of a buffer long
    // enough to cover lead-in, full words, and the scalar tail — so a
    // match lands in each of the 8 lanes and in the tail.
    for len in [0, 1, 7, 8, 9, 15, 16, 17, 24, 31, 33] {
        for pos in 0..len {
            for needle in [b'<', b'&', b'>', 0x80u8] {
                let mut hay = vec![b'a'; len];
                hay[pos] = needle;
                assert_agrees(&hay);
            }
        }
    }
}

#[test]
fn high_bytes_never_false_positive() {
    // Bytes ≥ 0x80 share low bits with ASCII needles; the SWAR masks
    // must not report them. Exhaustive over every byte value at every
    // lane of one word.
    for b in 0x80..=0xffu16 {
        for pos in 0..16 {
            let mut hay = vec![b'x'; 16];
            hay[pos] = b as u8;
            assert_agrees(&hay);
        }
    }
}

#[test]
fn utf8_straddling_the_word_boundary() {
    // Multi-byte sequences placed so they split across the 8-byte
    // word: the scanner works on bytes and must treat continuation
    // bytes as plain content.
    for s in ["é", "中", "😀", "ÿ", "\u{7ff}", "\u{ffff}"] {
        for pad in 0..12 {
            let mut hay = "a".repeat(pad);
            hay.push_str(s);
            hay.push_str("<tail&");
            assert_agrees(hay.as_bytes());
        }
    }
}

#[test]
fn whitespace_runs_across_words() {
    for len in 0..40 {
        let mut hay = vec![b' '; len];
        hay.extend_from_slice(b"<x/>");
        assert_agrees(&hay);
        let mut mixed = b" \t\r\n".repeat(len / 4 + 1);
        mixed.push(b'g');
        assert_agrees(&mixed);
    }
}

proptest! {
    /// Arbitrary byte soup: batched and naive scanners are the same
    /// function.
    #[test]
    fn scanners_agree_on_arbitrary_bytes(hay in proptest::collection::vec(any::<u8>(), 0..80)) {
        assert_agrees(&hay);
    }

    /// XML-shaped soup, denser in the bytes the reader scans for.
    #[test]
    fn scanners_agree_on_markup_soup(hay in "[<>&\"' \t\na-f\u{e9}\u{4e2d}]{0,64}") {
        assert_agrees(hay.as_bytes());
    }
}

// ---------------------------------------------------------------------
// Reader event-stream equivalence
// ---------------------------------------------------------------------

/// Pull the full owned-event stream of a document.
fn events(input: &str) -> Vec<OwnedEvent> {
    let mut reader = XmlReader::new(input);
    let mut out = Vec::new();
    loop {
        match reader.next_owned().expect("event stream must parse") {
            OwnedEvent::EndDocument => return out,
            ev => out.push(ev),
        }
    }
}

/// Serialize an owned-event stream back to markup using the escape
/// fast paths, so re-reading it exercises the same scanners.
fn write_events(stream: &[OwnedEvent]) -> String {
    let mut out = String::new();
    for ev in stream {
        match ev {
            OwnedEvent::StartDocument { version, encoding } => {
                out.push_str(&format!("<?xml version=\"{version}\""));
                if let Some(e) = encoding {
                    out.push_str(&format!(" encoding=\"{e}\""));
                }
                out.push_str("?>");
            }
            OwnedEvent::StartElement { name, attributes } => {
                out.push('<');
                out.push_str(&name.to_string());
                for a in attributes {
                    out.push(' ');
                    out.push_str(&a.name.to_string());
                    out.push_str("=\"");
                    out.push_str(&escape::escape_attr(&a.value));
                    out.push('"');
                }
                out.push('>');
            }
            OwnedEvent::EndElement { name } => {
                out.push_str("</");
                out.push_str(&name.to_string());
                out.push('>');
            }
            OwnedEvent::Text(t) => out.push_str(&escape::escape_text(t)),
            OwnedEvent::CData(c) => {
                out.push_str("<![CDATA[");
                out.push_str(c);
                out.push_str("]]>");
            }
            OwnedEvent::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            OwnedEvent::ProcessingInstruction { target, data } => {
                out.push_str("<?");
                out.push_str(target);
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
            }
            OwnedEvent::Doctype(d) => {
                out.push_str("<!DOCTYPE ");
                out.push_str(d);
                out.push('>');
            }
            OwnedEvent::EndDocument => {}
        }
    }
    out
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-d][a-d0-9._-]{0,4}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Escape-heavy text with multi-byte characters near the bytes the
    // scanner looks for.
    "[ a-z<>&\"'\u{e9}\u{4e2d}\u{1f600}]{1,24}"
}

/// Build a small well-formed document as text.
fn doc_strategy() -> impl Strategy<Value = String> {
    (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        proptest::collection::vec(
            prop_oneof![
                text_strategy().prop_map(|t| (0u8, t)),
                text_strategy().prop_map(|t| (1u8, t)),
                name_strategy().prop_map(|n| (2u8, n)),
            ],
            0..5,
        ),
    )
        .prop_map(|(root, attrs, children)| {
            let mut doc = format!("<{root}");
            for (k, v) in &attrs {
                doc.push_str(&format!(" {k}=\"{}\"", escape::escape_attr(v)));
            }
            doc.push('>');
            for (kind, payload) in &children {
                match kind {
                    0 => doc.push_str(&escape::escape_text(payload)),
                    1 => {
                        // CDATA content must not contain "]]>".
                        let clean = payload.replace("]]>", "]] >");
                        doc.push_str(&format!("<![CDATA[{clean}]]>"));
                    }
                    _ => doc.push_str(&format!("<{payload} k=\"v\"/>")),
                }
            }
            doc.push_str(&format!("</{root}>"));
            doc
        })
}

proptest! {
    /// The event stream is a fixed point of read → write → read: any
    /// scanning bug (missed byte, off-by-one at a word boundary,
    /// phantom match on a high byte) shows up as a diverging stream.
    #[test]
    fn event_stream_survives_writer_round_trip(doc in doc_strategy()) {
        let first = events(&doc);
        let rewritten = write_events(&first);
        prop_assert_eq!(&events(&rewritten), &first, "rewritten: {}", rewritten);
    }
}

#[test]
fn event_stream_fixed_point_on_adversarial_docs() {
    for doc in [
        // Entities adjacent to CDATA, bare '>' in text, ']]' lookbehind.
        "<r>a&amp;b<![CDATA[<raw&>]]>c &gt; d ]] e</r>",
        // Attributes with every escape-worthy byte.
        "<r a=\"q&quot;q\" b=\"tab&#9;nl&#10;\" c=\"&lt;&amp;&gt;\"><e/></r>",
        // Multi-byte text straddling scan words, comments and PIs.
        "<?xml version=\"1.0\"?><r>héllo 中文 😀<!--c--><?pi data?><x>t</x></r>",
        // Deeply nested self-closing run.
        "<a><b><c><d/><d/><d/></c></b></a>",
    ] {
        let first = events(doc);
        let rewritten = write_events(&first);
        assert_eq!(events(&rewritten), first, "doc: {doc}");
    }
}
