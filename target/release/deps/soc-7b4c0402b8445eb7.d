/root/repo/target/release/deps/soc-7b4c0402b8445eb7.d: src/lib.rs

/root/repo/target/release/deps/libsoc-7b4c0402b8445eb7.rlib: src/lib.rs

/root/repo/target/release/deps/libsoc-7b4c0402b8445eb7.rmeta: src/lib.rs

src/lib.rs:
