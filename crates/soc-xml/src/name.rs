//! Qualified names (`prefix:local`) as used by elements and attributes.

use std::fmt;

/// A qualified XML name, split into optional prefix and local part.
///
/// Namespace *resolution* (mapping prefixes to URIs through in-scope
/// `xmlns` declarations) is performed by the DOM layer; the reader only
/// records the syntactic split.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// Namespace prefix, e.g. `soap` in `soap:Envelope`; empty when the
    /// name is unprefixed.
    pub prefix: String,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// Build a name without a prefix.
    pub fn local(local: impl Into<String>) -> Self {
        QName { prefix: String::new(), local: local.into() }
    }

    /// Build a prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName { prefix: prefix.into(), local: local.into() }
    }

    /// Parse `prefix:local` or `local` syntax. Does not validate NCName
    /// character rules (the reader does that while lexing).
    pub fn parse(raw: &str) -> Self {
        match raw.split_once(':') {
            Some((p, l)) => QName::prefixed(p, l),
            None => QName::local(raw),
        }
    }

    /// True if this is an `xmlns` or `xmlns:*` namespace declaration name.
    pub fn is_xmlns(&self) -> bool {
        (self.prefix.is_empty() && self.local == "xmlns") || self.prefix == "xmlns"
    }

    /// The prefix being declared when [`Self::is_xmlns`] is true:
    /// `xmlns="…"` declares the default (empty) prefix, `xmlns:p="…"`
    /// declares `p`.
    pub fn declared_prefix(&self) -> Option<&str> {
        if self.prefix == "xmlns" {
            Some(&self.local)
        } else if self.prefix.is_empty() && self.local == "xmlns" {
            Some("")
        } else {
            None
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            f.write_str(&self.local)
        } else {
            write!(f, "{}:{}", self.prefix, self.local)
        }
    }
}

impl From<&str> for QName {
    fn from(raw: &str) -> Self {
        QName::parse(raw)
    }
}

/// Is `c` a valid first character of an XML name? (Pragmatic subset of
/// the NameStartChar production.)
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// Is `c` a valid continuation character of an XML name?
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_on_first_colon() {
        let q = QName::parse("soap:Envelope");
        assert_eq!(q.prefix, "soap");
        assert_eq!(q.local, "Envelope");
        assert_eq!(q.to_string(), "soap:Envelope");
    }

    #[test]
    fn parse_unprefixed() {
        let q = QName::parse("service");
        assert_eq!(q.prefix, "");
        assert_eq!(q.local, "service");
        assert_eq!(q.to_string(), "service");
    }

    #[test]
    fn xmlns_detection() {
        assert!(QName::parse("xmlns").is_xmlns());
        assert!(QName::parse("xmlns:soap").is_xmlns());
        assert!(!QName::parse("x:xmlns").is_xmlns());
        assert_eq!(QName::parse("xmlns").declared_prefix(), Some(""));
        assert_eq!(QName::parse("xmlns:soap").declared_prefix(), Some("soap"));
        assert_eq!(QName::parse("id").declared_prefix(), None);
    }

    #[test]
    fn name_char_classes() {
        assert!(is_name_start('a'));
        assert!(is_name_start('_'));
        assert!(!is_name_start('1'));
        assert!(is_name_char('1'));
        assert!(is_name_char('-'));
        assert!(!is_name_char(' '));
    }
}
