/root/repo/target/debug/deps/soc_curriculum-9523ae2ddf8b1342.d: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

/root/repo/target/debug/deps/soc_curriculum-9523ae2ddf8b1342: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

crates/soc-curriculum/src/lib.rs:
crates/soc-curriculum/src/acm.rs:
crates/soc-curriculum/src/chart.rs:
crates/soc-curriculum/src/enrollment.rs:
crates/soc-curriculum/src/evaluation.rs:
