//! The dataflow workflow graph and its event-driven executor.

use std::collections::HashMap;
use std::sync::Arc;

use soc_json::Value;
use soc_parallel::ThreadPool;

use crate::activity::{Activity, ActivityError, Ports};

/// Node identifier within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// How a node decides it is ready to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Firing {
    /// All connected input ports must hold a value (the default).
    All,
    /// Any one connected input port suffices (Merge semantics).
    Any,
}

/// Errors from graph construction, validation, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// Referenced a node that does not exist.
    NoSuchNode(String),
    /// Referenced a port the activity does not declare.
    NoSuchPort {
        /// Node name.
        node: String,
        /// Offending port.
        port: String,
    },
    /// An input port has two incoming edges.
    PortAlreadyConnected {
        /// Node name.
        node: String,
        /// Port with multiple writers.
        port: String,
    },
    /// The graph contains a dependency cycle.
    Cycle,
    /// An activity failed during execution.
    Activity {
        /// Node name.
        node: String,
        /// The underlying error.
        error: ActivityError,
    },
    /// Execution stalled: these nodes never received enough inputs.
    Stalled(Vec<String>),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::NoSuchNode(n) => write!(f, "no such node {n:?}"),
            WorkflowError::NoSuchPort { node, port } => {
                write!(f, "node {node:?} has no port {port:?}")
            }
            WorkflowError::PortAlreadyConnected { node, port } => {
                write!(f, "input {node:?}.{port:?} already has a producer")
            }
            WorkflowError::Cycle => write!(f, "workflow graph contains a cycle"),
            WorkflowError::Activity { node, error } => write!(f, "node {node:?}: {error}"),
            WorkflowError::Stalled(nodes) => {
                write!(f, "workflow stalled; nodes never fired: {nodes:?}")
            }
        }
    }
}

pub(crate) struct Node {
    pub(crate) name: String,
    pub(crate) activity: Arc<dyn Activity>,
    pub(crate) firing: Firing,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Edge {
    pub(crate) from: (usize, String),
    pub(crate) to: (usize, String),
}

/// A dataflow graph of activities — the VPL program model.
///
/// Besides the activity itself, each node may carry resilience
/// metadata used by the saga executor ([`WorkflowGraph::run_saga`]):
/// a [`crate::saga::ResiliencePolicy`], a compensator, and a fallback
/// activity. The plain [`WorkflowGraph::run`] path ignores all three.
#[derive(Default)]
pub struct WorkflowGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) policies: HashMap<usize, crate::saga::ResiliencePolicy>,
    pub(crate) compensators: HashMap<usize, Arc<dyn Activity>>,
    pub(crate) fallbacks: HashMap<usize, Arc<dyn Activity>>,
}

impl WorkflowGraph {
    /// Empty graph.
    pub fn new() -> Self {
        WorkflowGraph::default()
    }

    /// Add an activity with [`Firing::All`] semantics.
    pub fn add(&mut self, name: &str, activity: impl Activity + 'static) -> NodeId {
        self.add_with_firing(name, activity, Firing::All)
    }

    /// Add a merge-style activity that fires on any input.
    pub fn add_any(&mut self, name: &str, activity: impl Activity + 'static) -> NodeId {
        self.add_with_firing(name, activity, Firing::Any)
    }

    fn add_with_firing(
        &mut self,
        name: &str,
        activity: impl Activity + 'static,
        firing: Firing,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { name: name.to_string(), activity: Arc::new(activity), firing });
        id
    }

    /// Attach a [`crate::saga::ResiliencePolicy`] to a node. Only the
    /// saga executor ([`WorkflowGraph::run_saga`]) consults it.
    pub fn set_policy(
        &mut self,
        node: NodeId,
        policy: crate::saga::ResiliencePolicy,
    ) -> Result<(), WorkflowError> {
        self.check_node(node)?;
        self.policies.insert(node.0, policy);
        Ok(())
    }

    /// Register a compensator for a node. When a saga run fails after
    /// this node completed, the compensator executes with the node's
    /// recorded *output* ports as its inputs.
    pub fn set_compensation(
        &mut self,
        node: NodeId,
        compensator: impl Activity + 'static,
    ) -> Result<(), WorkflowError> {
        self.check_node(node)?;
        self.compensators.insert(node.0, Arc::new(compensator));
        Ok(())
    }

    /// Register a fallback activity for a node. When the node's own
    /// activity exhausts its retries (or times out), the fallback runs
    /// once with the same inputs; if it succeeds the node completes
    /// with the fallback's outputs.
    pub fn set_fallback(
        &mut self,
        node: NodeId,
        fallback: impl Activity + 'static,
    ) -> Result<(), WorkflowError> {
        self.check_node(node)?;
        self.fallbacks.insert(node.0, Arc::new(fallback));
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<(), WorkflowError> {
        if node.0 >= self.nodes.len() {
            return Err(WorkflowError::NoSuchNode(format!("#{}", node.0)));
        }
        Ok(())
    }

    /// Connect `from.out_port` → `to.in_port`.
    pub fn connect(
        &mut self,
        from: NodeId,
        out_port: &str,
        to: NodeId,
        in_port: &str,
    ) -> Result<(), WorkflowError> {
        let from_node = self
            .nodes
            .get(from.0)
            .ok_or_else(|| WorkflowError::NoSuchNode(format!("#{}", from.0)))?;
        if !from_node.activity.outputs().iter().any(|p| p == out_port) {
            return Err(WorkflowError::NoSuchPort {
                node: from_node.name.clone(),
                port: out_port.to_string(),
            });
        }
        let to_node =
            self.nodes.get(to.0).ok_or_else(|| WorkflowError::NoSuchNode(format!("#{}", to.0)))?;
        if !to_node.activity.inputs().iter().any(|p| p == in_port) {
            return Err(WorkflowError::NoSuchPort {
                node: to_node.name.clone(),
                port: in_port.to_string(),
            });
        }
        if self.edges.iter().any(|e| e.to == (to.0, in_port.to_string())) {
            return Err(WorkflowError::PortAlreadyConnected {
                node: to_node.name.clone(),
                port: in_port.to_string(),
            });
        }
        self.edges
            .push(Edge { from: (from.0, out_port.to_string()), to: (to.0, in_port.to_string()) });
        Ok(())
    }

    /// Validate the graph: no cycles. (Port existence is checked at
    /// connect time.)
    pub fn validate(&self) -> Result<(), WorkflowError> {
        // Kahn's algorithm over node dependencies.
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for e in &self.edges {
                if e.from.0 == i {
                    indegree[e.to.0] -= 1;
                    if indegree[e.to.0] == 0 {
                        queue.push(e.to.0);
                    }
                }
            }
        }
        if seen != n {
            return Err(WorkflowError::Cycle);
        }
        Ok(())
    }

    /// Run the workflow. `inputs` seeds ports by `"node.port"` key.
    /// Returns values on *unconnected* output ports, keyed `"node.port"`.
    ///
    /// Event-driven semantics: a node fires (once) when its connected
    /// inputs are satisfied per its [`Firing`] mode; nodes on untaken
    /// conditional branches simply never fire. If the graph makes no
    /// progress and no outputs were produced at all, that is reported as
    /// a stall.
    pub fn run(
        &self,
        inputs: &HashMap<String, Value>,
    ) -> Result<HashMap<String, Value>, WorkflowError> {
        self.run_inner(inputs, None)
    }

    /// Like [`WorkflowGraph::run`], but fires independent ready nodes in
    /// parallel waves on `pool` — VPL's implicit parallelism.
    pub fn run_parallel(
        &self,
        pool: &ThreadPool,
        inputs: &HashMap<String, Value>,
    ) -> Result<HashMap<String, Value>, WorkflowError> {
        self.run_inner(inputs, Some(pool))
    }

    fn run_inner(
        &self,
        inputs: &HashMap<String, Value>,
        pool: Option<&ThreadPool>,
    ) -> Result<HashMap<String, Value>, WorkflowError> {
        self.validate()?;
        // The whole run is one span; every node that fires becomes a
        // child, including nodes fired on pool threads (which inherit
        // `run_ctx` explicitly — thread-locals don't cross the pool).
        let mut run_span = soc_observe::span("workflow.run", soc_observe::SpanKind::Internal);
        run_span.set_attr("nodes", self.nodes.len().to_string());
        let _active = run_span.activate();
        let run_ctx = run_span.context();
        let n = self.nodes.len();
        // Values pending on each node's input ports.
        let mut pending = self.seed_pending(inputs)?;
        let mut fired = vec![false; n];
        let mut results: HashMap<String, Value> = HashMap::new();

        // Which input ports are connected (need a producer) per node.
        let connected_inputs = self.connected_inputs();

        loop {
            // Collect the ready wave.
            let ready: Vec<usize> = (0..n)
                .filter(|&i| !fired[i] && self.is_ready(i, &pending[i], &connected_inputs[i]))
                .collect();
            if ready.is_empty() {
                break;
            }
            // Fire the wave (parallel when a pool is given). Each node
            // fires inside its own activity span.
            let fire =
                |i: usize, act: &dyn Activity, ports: &Ports| -> Result<Ports, ActivityError> {
                    let mut span = soc_observe::child_span(
                        run_ctx,
                        "workflow.activity",
                        soc_observe::SpanKind::Internal,
                    );
                    span.set_attr("node", self.nodes[i].name.as_str());
                    let out = {
                        let _in_span = span.activate();
                        act.execute(ports)
                    };
                    if let Err(e) = &out {
                        span.set_error(e.to_string());
                    }
                    out
                };
            let mut outputs: Vec<(usize, Result<Ports, ActivityError>)> = match pool {
                Some(pool) if ready.len() > 1 => {
                    let jobs: Vec<(usize, Arc<dyn Activity>, Ports)> = ready
                        .iter()
                        .map(|&i| (i, self.nodes[i].activity.clone(), pending[i].clone()))
                        .collect();
                    let results = parking_lot::Mutex::new(Vec::new());
                    pool.scope(|s| {
                        for (i, act, ports) in &jobs {
                            let results = &results;
                            let fire = &fire;
                            s.spawn(move || {
                                let out = fire(*i, &**act, ports);
                                results.lock().push((*i, out));
                            });
                        }
                    });
                    results.into_inner()
                }
                _ => ready
                    .iter()
                    .map(|&i| (i, fire(i, &*self.nodes[i].activity, &pending[i])))
                    .collect(),
            };

            // The whole wave has been joined by now (`pool.scope` blocks
            // until every spawned node returns). Record every member of
            // the wave — marking fired and routing successful outputs —
            // *before* surfacing any error, so the completed-set stays
            // consistent; the saga executor relies on the same shape.
            outputs.sort_by_key(|(i, _)| *i);
            let mut wave_error: Option<WorkflowError> = None;
            for (i, out) in outputs {
                fired[i] = true;
                let out = match out {
                    Ok(out) => out,
                    Err(error) => {
                        if wave_error.is_none() {
                            wave_error = Some(WorkflowError::Activity {
                                node: self.nodes[i].name.clone(),
                                error,
                            });
                        }
                        continue;
                    }
                };
                for (port, value) in out {
                    // Propagate along edges; unconnected outputs become
                    // workflow results.
                    let mut routed = false;
                    for e in &self.edges {
                        if e.from == (i, port.clone()) {
                            pending[e.to.0].insert(e.to.1.clone(), value.clone());
                            routed = true;
                        }
                    }
                    if !routed {
                        results.insert(format!("{}.{}", self.nodes[i].name, port), value);
                    }
                }
            }
            if let Some(err) = wave_error {
                run_span.set_error(err.to_string());
                return Err(err);
            }
        }

        if results.is_empty() && fired.iter().any(|f| !f) {
            let stalled: Vec<String> =
                (0..n).filter(|&i| !fired[i]).map(|i| self.nodes[i].name.clone()).collect();
            run_span.set_error(format!("stalled: {stalled:?}"));
            return Err(WorkflowError::Stalled(stalled));
        }
        Ok(results)
    }

    /// Input ports with a producer edge, per node.
    pub(crate) fn connected_inputs(&self) -> Vec<Vec<String>> {
        let mut connected: Vec<Vec<String>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            connected[e.to.0].push(e.to.1.clone());
        }
        connected
    }

    /// Validate `"node.port"` seed keys and distribute them onto the
    /// per-node pending port maps.
    pub(crate) fn seed_pending(
        &self,
        inputs: &HashMap<String, Value>,
    ) -> Result<Vec<Ports>, WorkflowError> {
        let mut pending: Vec<Ports> = vec![Ports::new(); self.nodes.len()];
        for (key, value) in inputs {
            let Some((node_name, port)) = key.split_once('.') else {
                return Err(WorkflowError::NoSuchNode(key.clone()));
            };
            let idx = self
                .nodes
                .iter()
                .position(|nd| nd.name == node_name)
                .ok_or_else(|| WorkflowError::NoSuchNode(node_name.to_string()))?;
            if !self.nodes[idx].activity.inputs().iter().any(|p| p == port) {
                return Err(WorkflowError::NoSuchPort {
                    node: node_name.to_string(),
                    port: port.to_string(),
                });
            }
            pending[idx].insert(port.to_string(), value.clone());
        }
        Ok(pending)
    }

    /// A deterministic topological order (lowest node index first among
    /// the ready set) — the saga executor compensates completed nodes
    /// in the reverse of this order.
    pub(crate) fn topo_order(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        while order.len() < n {
            let Some(next) = (0..n).find(|&i| !placed[i] && indegree[i] == 0) else {
                break; // cycle — validate() reports it separately
            };
            placed[next] = true;
            order.push(next);
            for e in &self.edges {
                if e.from.0 == next {
                    indegree[e.to.0] -= 1;
                }
            }
        }
        order
    }

    pub(crate) fn is_ready(&self, idx: usize, pending: &Ports, connected: &[String]) -> bool {
        let node = &self.nodes[idx];
        let declared = node.activity.inputs();
        if declared.is_empty() {
            return true;
        }
        match node.firing {
            Firing::All => {
                // Every declared input that has a producer (or was seeded
                // externally) must be present; inputs with no producer
                // must have been seeded.
                declared.iter().all(|p| {
                    pending.contains_key(p) || (!connected.contains(p) && pending.contains_key(p))
                }) && declared.iter().all(|p| pending.contains_key(p))
            }
            Firing::Any => !pending.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Compute, Const, If, Merge};
    use soc_json::json;

    fn add_activity() -> Compute {
        Compute::new(&["a", "b"], |p| {
            Ok(Value::from(p["a"].as_i64().ok_or("a")? + p["b"].as_i64().ok_or("b")?))
        })
    }

    #[test]
    fn linear_pipeline() {
        let mut g = WorkflowGraph::new();
        let c1 = g.add("two", Const::new(2));
        let c2 = g.add("forty", Const::new(40));
        let sum = g.add("sum", add_activity());
        g.connect(c1, "out", sum, "a").unwrap();
        g.connect(c2, "out", sum, "b").unwrap();
        let out = g.run(&HashMap::new()).unwrap();
        assert_eq!(out["sum.out"].as_i64(), Some(42));
    }

    #[test]
    fn external_inputs_seed_ports() {
        let mut g = WorkflowGraph::new();
        g.add("sum", add_activity());
        let mut inputs = HashMap::new();
        inputs.insert("sum.a".to_string(), json!(1));
        inputs.insert("sum.b".to_string(), json!(2));
        let out = g.run(&inputs).unwrap();
        assert_eq!(out["sum.out"].as_i64(), Some(3));
    }

    #[test]
    fn conditional_branch_with_merge() {
        // cond -> If -> (then: double, else: negate) -> Merge.
        let build = |flag: bool| {
            let mut g = WorkflowGraph::new();
            let cond = g.add("cond", Const::new(flag));
            let val = g.add("val", Const::new(10));
            let iff = g.add("if", If::truthy());
            let double = g.add(
                "double",
                Compute::new(&["x"], |p| Ok(Value::from(p["x"].as_i64().unwrap() * 2))),
            );
            let negate = g.add(
                "negate",
                Compute::new(&["x"], |p| Ok(Value::from(-p["x"].as_i64().unwrap()))),
            );
            let merge = g.add_any("merge", Merge);
            g.connect(cond, "out", iff, "cond").unwrap();
            g.connect(val, "out", iff, "value").unwrap();
            g.connect(iff, "then", double, "x").unwrap();
            g.connect(iff, "else", negate, "x").unwrap();
            g.connect(double, "out", merge, "a").unwrap();
            g.connect(negate, "out", merge, "b").unwrap();
            g.run(&HashMap::new()).unwrap()
        };
        assert_eq!(build(true)["merge.out"].as_i64(), Some(20));
        assert_eq!(build(false)["merge.out"].as_i64(), Some(-10));
    }

    #[test]
    fn connect_validates_ports() {
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(1));
        let b = g.add("b", add_activity());
        assert!(matches!(g.connect(a, "nope", b, "a"), Err(WorkflowError::NoSuchPort { .. })));
        assert!(matches!(g.connect(a, "out", b, "nope"), Err(WorkflowError::NoSuchPort { .. })));
        g.connect(a, "out", b, "a").unwrap();
        // Double producer rejected.
        let c = g.add("c", Const::new(2));
        assert!(matches!(
            g.connect(c, "out", b, "a"),
            Err(WorkflowError::PortAlreadyConnected { .. })
        ));
    }

    #[test]
    fn cycles_rejected() {
        let mut g = WorkflowGraph::new();
        let inc = |_name: &str| Compute::new(&["x"], |p| Ok(p["x"].clone()));
        let a = g.add("a", inc("a"));
        let b = g.add("b", inc("b"));
        g.connect(a, "out", b, "x").unwrap();
        g.connect(b, "out", a, "x").unwrap();
        assert_eq!(g.run(&HashMap::new()), Err(WorkflowError::Cycle));
    }

    #[test]
    fn stall_detected() {
        let mut g = WorkflowGraph::new();
        g.add("sum", add_activity()); // no inputs ever arrive
        assert!(matches!(g.run(&HashMap::new()), Err(WorkflowError::Stalled(_))));
    }

    #[test]
    fn activity_error_carries_node_name() {
        let mut g = WorkflowGraph::new();
        let c = g.add("c", Const::new(1));
        let bad = g.add("bad", Compute::new(&["x"], |_| Err("broken".into())));
        g.connect(c, "out", bad, "x").unwrap();
        match g.run(&HashMap::new()) {
            Err(WorkflowError::Activity { node, .. }) => assert_eq!(node, "bad"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_seed_keys_rejected() {
        let g = WorkflowGraph::new();
        let mut inputs = HashMap::new();
        inputs.insert("ghost.x".to_string(), json!(1));
        assert!(matches!(g.run(&inputs), Err(WorkflowError::NoSuchNode(_))));
        let mut inputs = HashMap::new();
        inputs.insert("no-dot".to_string(), json!(1));
        assert!(g.run(&inputs).is_err());
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let mut g = WorkflowGraph::new();
        let mut adders = Vec::new();
        for i in 0..6 {
            let c1 = g.add(&format!("x{i}"), Const::new(i as i64));
            let c2 = g.add(&format!("y{i}"), Const::new(100));
            let s = g.add(&format!("s{i}"), add_activity());
            g.connect(c1, "out", s, "a").unwrap();
            g.connect(c2, "out", s, "b").unwrap();
            adders.push(s);
        }
        let seq = g.run(&HashMap::new()).unwrap();
        let pool = ThreadPool::new(3);
        let par = g.run_parallel(&pool, &HashMap::new()).unwrap();
        assert_eq!(seq, par);
        assert_eq!(par["s5.out"].as_i64(), Some(105));
    }
}
