/root/repo/target/debug/examples/collatz_speedup-77cc6b2a10fedaff.d: examples/collatz_speedup.rs

/root/repo/target/debug/examples/collatz_speedup-77cc6b2a10fedaff: examples/collatz_speedup.rs

examples/collatz_speedup.rs:
