//! What a crawl produces: services with fully typed operation
//! signatures, the replicas that serve them, and the directories that
//! advertised them.
//!
//! The catalog is the boundary between the crawler (which talks to the
//! network) and the search index / planner (which never do): everything
//! downstream of a crawl works from this snapshot alone.

use std::collections::btree_map::{BTreeMap, Values};

use soc_registry::ServiceDescriptor;
use soc_soap::contract::{Operation, Param};

/// One operation with its complete typed signature, as recovered from
/// the provider's WSDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedOperation {
    /// Operation name as declared in the contract (e.g. `Assess`).
    pub name: String,
    /// Input parameters in declaration order.
    pub inputs: Vec<Param>,
    /// Output parameters in declaration order.
    pub outputs: Vec<Param>,
    /// Contract documentation, when present.
    pub doc: Option<String>,
}

impl From<&Operation> for TypedOperation {
    fn from(op: &Operation) -> Self {
        TypedOperation {
            name: op.name.clone(),
            inputs: op.inputs.clone(),
            outputs: op.outputs.clone(),
            doc: op.doc.clone(),
        }
    }
}

/// A service the crawler has fully described: descriptor, typed
/// operations, and where (and via whom) it can be invoked.
#[derive(Debug, Clone)]
pub struct DiscoveredService {
    /// The descriptor from the first directory that advertised it.
    pub descriptor: ServiceDescriptor,
    /// Contract target namespace (empty when no WSDL was available).
    pub namespace: String,
    /// Base path operations hang off, on any replica. REST operations
    /// are invoked as `POST {base_path}/{operation, lowercased}`; SOAP
    /// envelopes are posted to `{base_path}` itself.
    pub base_path: String,
    /// Typed operations (empty when the WSDL was missing or broken).
    pub operations: Vec<TypedOperation>,
    /// Replica origins (`scheme://authority`) that serve the base
    /// path. Federation yields several: each directory may advertise a
    /// different deployment of the same service id.
    pub replicas: Vec<String>,
    /// Directories that advertised this service (crawl provenance).
    pub directories: Vec<String>,
}

impl DiscoveredService {
    /// The named operation, if the service offers it.
    pub fn operation(&self, name: &str) -> Option<&TypedOperation> {
        self.operations.iter().find(|o| o.name == name)
    }
}

/// The crawl's aggregated view of the federation, keyed by service id.
/// Iteration order is the id order, so everything built from a catalog
/// (indexes, plans) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    services: BTreeMap<String, DiscoveredService>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Merge one described service into the catalog. A service id seen
    /// from several directories accumulates replicas and provenance;
    /// typed operations are kept from whichever sighting had a
    /// parseable WSDL.
    pub fn merge(&mut self, svc: DiscoveredService) {
        match self.services.get_mut(&svc.descriptor.id) {
            None => {
                self.services.insert(svc.descriptor.id.clone(), svc);
            }
            Some(existing) => {
                for r in svc.replicas {
                    if !existing.replicas.contains(&r) {
                        existing.replicas.push(r);
                    }
                }
                for d in svc.directories {
                    if !existing.directories.contains(&d) {
                        existing.directories.push(d);
                    }
                }
                if existing.operations.is_empty() && !svc.operations.is_empty() {
                    existing.operations = svc.operations;
                    existing.namespace = svc.namespace;
                    existing.base_path = svc.base_path;
                }
            }
        }
    }

    /// The service with this id.
    pub fn get(&self, id: &str) -> Option<&DiscoveredService> {
        self.services.get(id)
    }

    /// All services, in id order.
    pub fn services(&self) -> Values<'_, String, DiscoveredService> {
        self.services.values()
    }

    /// Number of distinct services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether nothing has been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_registry::Binding;
    use soc_soap::XsdType;

    fn svc(id: &str, replica: &str, dir: &str, ops: usize) -> DiscoveredService {
        DiscoveredService {
            descriptor: ServiceDescriptor::new(id, id, &format!("{replica}/api"), Binding::Rest),
            namespace: "urn:test".into(),
            base_path: "/api".into(),
            operations: (0..ops)
                .map(|i| TypedOperation {
                    name: format!("Op{i}"),
                    inputs: vec![Param { name: "x".into(), ty: XsdType::Int }],
                    outputs: vec![Param { name: "y".into(), ty: XsdType::Int }],
                    doc: None,
                })
                .collect(),
            replicas: vec![replica.to_string()],
            directories: vec![dir.to_string()],
        }
    }

    #[test]
    fn merging_the_same_id_accumulates_replicas_and_provenance() {
        let mut cat = Catalog::new();
        cat.merge(svc("credit", "mem://a", "mem://dir-1", 0));
        cat.merge(svc("credit", "mem://b", "mem://dir-2", 2));
        cat.merge(svc("credit", "mem://a", "mem://dir-1", 1));
        assert_eq!(cat.len(), 1);
        let c = cat.get("credit").unwrap();
        assert_eq!(c.replicas, vec!["mem://a", "mem://b"]);
        assert_eq!(c.directories, vec!["mem://dir-1", "mem://dir-2"]);
        // First sighting had no WSDL; the typed ops came from the second.
        assert_eq!(c.operations.len(), 2);
        assert!(c.operation("Op1").is_some());
    }
}
