/root/repo/target/release/deps/soc_rest-00b1ffb59c40cc9e.d: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

/root/repo/target/release/deps/libsoc_rest-00b1ffb59c40cc9e.rlib: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

/root/repo/target/release/deps/libsoc_rest-00b1ffb59c40cc9e.rmeta: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

crates/soc-rest/src/lib.rs:
crates/soc-rest/src/client.rs:
crates/soc-rest/src/middleware.rs:
crates/soc-rest/src/negotiate.rs:
crates/soc-rest/src/resource.rs:
crates/soc-rest/src/router.rs:
