/root/repo/target/debug/deps/table4_enrollment-734b2a570cb1f5d3.d: crates/soc-bench/src/bin/table4_enrollment.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_enrollment-734b2a570cb1f5d3.rmeta: crates/soc-bench/src/bin/table4_enrollment.rs Cargo.toml

crates/soc-bench/src/bin/table4_enrollment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
