//! Property tests for the web-application layer: view-state integrity,
//! session-store behavioral model, and template-engine robustness.

use proptest::prelude::*;
use soc_webapp::session::SessionStore;
use soc_webapp::templates::{html_escape, render, Vars};
use soc_webapp::viewstate;

proptest! {
    #[test]
    fn viewstate_round_trip(
        secret in any::<u64>(),
        fields in proptest::collection::vec(("[a-z]{1,8}", "[ -~é中]{0,24}"), 0..8),
    ) {
        let fields: Vec<(String, String)> = fields;
        let token = viewstate::encode(secret, &fields);
        prop_assert_eq!(viewstate::decode(secret, &token).unwrap(), fields);
    }

    #[test]
    fn viewstate_rejects_other_secrets(
        secret in any::<u64>(),
        other in any::<u64>(),
        fields in proptest::collection::vec(("[a-z]{1,8}", "[ -~]{0,16}"), 1..4),
    ) {
        prop_assume!(secret != other);
        let token = viewstate::encode(secret, &fields);
        prop_assert!(viewstate::decode(other, &token).is_err());
    }

    #[test]
    fn viewstate_decode_never_panics(s in "[ -~]{0,96}") {
        let _ = viewstate::decode(7, &s);
    }

    #[test]
    fn html_escape_output_is_inert(s in "[ -~é中]{0,64}") {
        let out = html_escape(&s);
        prop_assert!(!out.contains('<'));
        prop_assert!(!out.contains('>'));
        prop_assert!(!out.contains('"'));
        // Escaping is injective on the dangerous characters: unescaping
        // the entities recovers the original.
        let back = out
            .replace("&lt;", "<")
            .replace("&gt;", ">")
            .replace("&quot;", "\"")
            .replace("&#39;", "'")
            .replace("&amp;", "&");
        prop_assert_eq!(back, s);
    }

    #[test]
    fn templates_never_panic(template in "[ -~{}#/]{0,96}", key in "[a-z]{1,4}", val in "[ -~]{0,16}") {
        let mut vars = Vars::new();
        vars.insert(key, val);
        let _ = render(&template, &vars);
    }

    #[test]
    fn plain_templates_pass_through(template in "[ -~&&[^{}]]{0,64}") {
        prop_assert_eq!(render(&template, &Vars::new()), template);
    }

    #[test]
    fn session_store_model(ops in proptest::collection::vec((0u8..3, "[a-c]", 0i64..100), 0..48)) {
        // Model sessions as a map; TTL chosen so nothing expires.
        let store = SessionStore::new(1_000_000, 1);
        let sid = store.create(0);
        let mut model: std::collections::HashMap<String, i64> = Default::default();
        for (t, (op, key, v)) in ops.into_iter().enumerate() {
            let now = t as u64;
            match op {
                0 => {
                    prop_assert!(store.set(&sid, &key, v, now));
                    model.insert(key, v);
                }
                1 => {
                    let got = store.get(&sid, &key, now).and_then(|x| x.as_i64());
                    prop_assert_eq!(got, model.get(&key).copied());
                }
                _ => {
                    prop_assert!(store.touch(&sid, now));
                }
            }
        }
    }
}
