//! Tables 1–3: the ACM CS curriculum topics the courses cover, with
//! Bloom's-taxonomy levels — and, for this reproduction, the workspace
//! module that *implements* each topic, making the coverage matrix an
//! executable claim.

/// Bloom's taxonomy levels used in the paper ("Knowledge (K),
/// Comprehension (C), and Application (A)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bloom {
    /// Knowledge.
    K,
    /// Comprehension.
    C,
    /// Application.
    A,
}

impl std::fmt::Display for Bloom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bloom::K => write!(f, "K"),
            Bloom::C => write!(f, "C"),
            Bloom::A => write!(f, "A"),
        }
    }
}

/// Which of the paper's tables a topic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopicTable {
    /// Table 1: programming topics.
    Programming,
    /// Table 2: algorithms topics.
    Algorithms,
    /// Table 3: cross-cutting and advanced topics.
    CrossCutting,
}

/// One row of Tables 1–3, extended with the implementing module(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topic {
    /// Which table the row is from.
    pub table: TopicTable,
    /// Topic name as printed.
    pub name: &'static str,
    /// Bloom levels listed.
    pub bloom: &'static [Bloom],
    /// Learning outcome (abridged).
    pub outcome: &'static str,
    /// Workspace modules implementing/demonstrating the topic.
    pub modules: &'static [&'static str],
}

/// The complete coverage matrix.
pub const TOPICS: &[Topic] = &[
    // ---- Table 1: programming topics --------------------------------
    Topic {
        table: TopicTable::Programming,
        name: "Client Server",
        bloom: &[Bloom::C],
        outcome: "notions of invoking and providing services (RPC, web services) as concurrent processes",
        modules: &["soc_http::server", "soc_http::client", "soc_soap::service", "soc_rest::router"],
    },
    Topic {
        table: TopicTable::Programming,
        name: "Task/thread spawning",
        bloom: &[Bloom::A],
        outcome: "write correct programs with threads, synchronize (fork-join, producer/consumer), dynamic threads",
        modules: &["soc_parallel::pool", "soc_parallel::sync"],
    },
    Topic {
        table: TopicTable::Programming,
        name: "Libraries",
        bloom: &[Bloom::A],
        outcome: "know one task-parallel library in detail (TBB/TPL-shaped)",
        modules: &["soc_parallel::par_iter", "soc_parallel::pipeline"],
    },
    Topic {
        table: TopicTable::Programming,
        name: "Tasks and threads",
        bloom: &[Bloom::K],
        outcome: "relationship between tasks/threads and cores; context-switch impact",
        modules: &["soc_parallel::pool", "soc_parallel::simcore"],
    },
    Topic {
        table: TopicTable::Programming,
        name: "Synchronization",
        bloom: &[Bloom::A],
        outcome: "shared-memory programs with critical regions, producer-consumer; monitors, semaphores",
        modules: &["soc_parallel::sync"],
    },
    Topic {
        table: TopicTable::Programming,
        name: "Performance metrics",
        bloom: &[Bloom::C],
        outcome: "speedup, efficiency, work, cost, Amdahl's law, scalability",
        modules: &["soc_parallel::metrics"],
    },
    // ---- Table 2: algorithms topics -----------------------------------
    Topic {
        table: TopicTable::Algorithms,
        name: "Speedup",
        bloom: &[Bloom::C],
        outcome: "use parallelism to solve the same problem faster or a larger problem in the same time",
        modules: &["soc_parallel::workloads", "soc_parallel::metrics"],
    },
    Topic {
        table: TopicTable::Algorithms,
        name: "Scalability in algorithms and architectures",
        bloom: &[Bloom::K],
        outcome: "more processors does not always mean faster: inherent sequentiality, DAG with a sequential spine",
        modules: &["soc_parallel::simcore"],
    },
    Topic {
        table: TopicTable::Algorithms,
        name: "Dependencies",
        bloom: &[Bloom::K, Bloom::A],
        outcome: "impact of dependencies; data dependencies in Web caching applications",
        modules: &["soc_parallel::simcore", "soc_services::cache"],
    },
    // ---- Table 3: cross-cutting and advanced topics ---------------------
    Topic {
        table: TopicTable::CrossCutting,
        name: "Cloud",
        bloom: &[Bloom::K],
        outcome: "shared distributed resources, on-demand, virtualized, service-oriented software and hardware",
        modules: &["soc_registry::directory", "soc_services::bindings"],
    },
    Topic {
        table: TopicTable::CrossCutting,
        name: "P2P",
        bloom: &[Bloom::K],
        outcome: "server and client roles of nodes with distributed data",
        modules: &["soc_registry::crawler"],
    },
    Topic {
        table: TopicTable::CrossCutting,
        name: "Security in Distributed Systems",
        bloom: &[Bloom::K],
        outcome: "distributed systems are more vulnerable to privacy/security threats; attack modes",
        modules: &["soc_services::access", "soc_services::crypto", "soc_rest::middleware"],
    },
    Topic {
        table: TopicTable::CrossCutting,
        name: "Web services",
        bloom: &[Bloom::A],
        outcome: "develop Web services and service clients to invoke services",
        modules: &["soc_soap::service", "soc_soap::client", "soc_rest::client", "soc_rest::resource"],
    },
];

/// Topics from one table.
pub fn topics_in(table: TopicTable) -> Vec<&'static Topic> {
    TOPICS.iter().filter(|t| t.table == table).collect()
}

/// The distinct module list referenced by the matrix (sorted).
pub fn referenced_modules() -> Vec<&'static str> {
    let mut mods: Vec<&'static str> =
        TOPICS.iter().flat_map(|t| t.modules.iter().copied()).collect();
    mods.sort();
    mods.dedup();
    mods
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_counts_match_paper() {
        assert_eq!(topics_in(TopicTable::Programming).len(), 6);
        assert_eq!(topics_in(TopicTable::Algorithms).len(), 3);
        assert_eq!(topics_in(TopicTable::CrossCutting).len(), 4);
    }

    #[test]
    fn every_topic_names_an_implementing_module() {
        for t in TOPICS {
            assert!(!t.modules.is_empty(), "{} has no implementation", t.name);
            assert!(!t.bloom.is_empty(), "{} has no Bloom level", t.name);
            assert!(!t.outcome.is_empty());
        }
    }

    #[test]
    fn module_references_point_into_this_workspace() {
        for m in referenced_modules() {
            let crate_name = m.split("::").next().unwrap();
            assert!(
                matches!(
                    crate_name,
                    "soc_http"
                        | "soc_rest"
                        | "soc_soap"
                        | "soc_parallel"
                        | "soc_registry"
                        | "soc_services"
                        | "soc_workflow"
                        | "soc_robotics"
                        | "soc_webapp"
                        | "soc_xml"
                        | "soc_json"
                ),
                "unknown crate in matrix: {m}"
            );
        }
    }

    #[test]
    fn bloom_display() {
        assert_eq!(Bloom::K.to_string(), "K");
        assert_eq!(Bloom::A.to_string(), "A");
    }

    #[test]
    fn dependencies_topic_is_dual_level_as_printed() {
        let dep = TOPICS.iter().find(|t| t.name == "Dependencies").unwrap();
        assert_eq!(dep.bloom, &[Bloom::K, Bloom::A]);
    }
}
