//! # soc-store — the durable state plane
//!
//! Every stateful component in the stack — the submission ledger, the
//! shopping cart, the message buffer, saga completion records — used to
//! live purely in process memory, so a crash lost exactly the state the
//! idempotency and compensation planes exist to protect. This crate is
//! the missing layer underneath them:
//!
//! * [`Wal`] — an append-only, CRC-framed, segmented write-ahead log
//!   with group-commit batching, an fsync-policy knob, and
//!   snapshot-then-truncate compaction. Recovery replays to a
//!   prefix-consistent state or fails loudly; it never silently applies
//!   a partial suffix.
//! * [`StateMachine`] / [`Durable`] — a deterministic replay contract:
//!   any component that expresses its mutations as logged commands
//!   reopens to its pre-crash state.
//! * [`ShardMap`] — consistent hashing over the registry's lease table
//!   with N-way replication: every key has one primary and `N-1`
//!   replica owners, and the ring rebuilds when leases join or expire.
//! * [`StoreNode`] / [`StoreClient`] — an HTTP key-value facade over a
//!   durable machine: primary-per-shard writes, replica catch-up via
//!   log shipping, and read-your-writes through per-key versions
//!   (replica reads are version-gated and fall back to the primary).
//!
//! The paper's account-application project (unit 5) stores state in a
//! durable `account.xml`; this crate is that obligation grown to a
//! production shape, per PAPERS.md's "Inter-Connectivity of Information
//! Systems" (multi-system state exchange with consistency obligations).

pub mod fence;
pub mod kv;
pub mod node;
pub mod rebalance;
pub mod shard;
pub mod state;
pub mod wal;

pub use fence::Fence;
pub use kv::KvMachine;
pub use node::{StoreClient, StoreNode, StoreNodeConfig};
pub use rebalance::{RebalanceConfig, Rebalancer};
pub use shard::{ShardMap, ShardNode};
pub use state::{Durable, StateMachine};
pub use wal::{FsyncPolicy, Lsn, Recovery, Wal, WalConfig};

use std::fmt;

/// Errors surfaced by the durable state plane.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem failed.
    Io(std::io::Error),
    /// The log or a snapshot is damaged in a way recovery cannot
    /// reconcile with prefix consistency (a hole before intact
    /// records, a missing history segment, an unreadable snapshot).
    Corrupt(String),
    /// A write was routed to a node that does not own the key's shard.
    NotPrimary {
        /// The shard key that was misrouted.
        key: String,
        /// The owning primary's endpoint, when the node knows it.
        primary: Option<String>,
    },
    /// A version-gated read hit a replica that has not caught up.
    Behind {
        /// Highest version applied locally.
        have: Lsn,
        /// Version floor the reader demanded.
        want: Lsn,
    },
    /// The node's fencing lease lapsed: it may still *hold* state but
    /// can no longer prove it is the primary, so it refuses writes.
    Fenced {
        /// The last epoch the node held a valid lease under.
        epoch: u64,
    },
    /// Replication traffic arrived under an epoch older than one this
    /// node has already obeyed — a partitioned old primary talking past
    /// its fence.
    StaleEpoch {
        /// The newest epoch this node has accepted from the source.
        have: u64,
        /// The epoch the stale shipment carried.
        got: u64,
    },
    /// A remote store call failed (transport or peer error).
    Remote(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(why) => write!(f, "corrupt log: {why}"),
            StoreError::NotPrimary { key, primary } => match primary {
                Some(p) => write!(f, "not primary for {key:?} (primary is {p})"),
                None => write!(f, "not primary for {key:?}"),
            },
            StoreError::Behind { have, want } => {
                write!(f, "replica behind: have version {have}, want {want}")
            }
            StoreError::Fenced { epoch } => {
                write!(f, "fencing lease lapsed (last held epoch {epoch}); refusing writes")
            }
            StoreError::StaleEpoch { have, got } => {
                write!(f, "stale fencing epoch {got} (newest accepted {have})")
            }
            StoreError::Remote(why) => write!(f, "remote store error: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A unique scratch directory under the system temp dir, removed on
/// drop — shared by this crate's tests, the recovery proptests, and
/// the store bench (which must point the WAL at a real filesystem).
pub struct TempDir {
    path: std::path::PathBuf,
}

impl TempDir {
    /// Create `soc-store-{pid}-{n}` under the system temp directory.
    pub fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("soc-store-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the record and
/// snapshot checksum. Table-driven; the table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn temp_dirs_are_distinct_and_cleaned() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().exists());
    }
}
