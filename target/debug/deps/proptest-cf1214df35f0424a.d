/root/repo/target/debug/deps/proptest-cf1214df35f0424a.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-cf1214df35f0424a: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
