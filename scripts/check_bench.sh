#!/usr/bin/env bash
# Guard the committed bench records: they must exist, carry the current
# schema, and cover every benchmark group/row that the bench binaries
# actually define (so a record can't silently go stale when a group is
# added or renamed).
set -euo pipefail

cd "$(dirname "$0")/.."
record=BENCH_xml.json
bench_src=crates/soc-bench/benches/xml.rs

if [[ ! -f "$record" ]]; then
    echo "error: $record is missing — run 'cargo bench -p soc-bench --bench xml' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$record"; then
    echo "error: $record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"baseline"' '"current"' '"speedup_large"'; do
    if ! grep -q "$section" "$record"; then
        echo "error: $record is missing the $section section" >&2
        exit 1
    fi
done

# Every BenchmarkId group in the bench source must appear in the record.
status=0
for group in $(grep -o 'BenchmarkId::new("[a-z_]*"' "$bench_src" | sed 's/.*"\([a-z_]*\)".*/\1/' | sort -u); do
    if ! grep -q "\"$group\"" "$record"; then
        echo "error: bench group '$group' exists in $bench_src but is absent from $record — re-record" >&2
        status=1
    fi
done

# The recorded borrowed-reader throughput on the large corpus must hold
# the data-plane floor: 500 MiB/s, the PR's tentpole claim for the
# SWAR-batched scanner.
reader_large=$(python3 - "$record" <<'PY'
import json, sys
rec = json.load(open(sys.argv[1]))
print(rec["current"]["results"]["reader_borrowed"]["large"]["throughput_mib_s"])
PY
)
if ! awk -v r="$reader_large" 'BEGIN { exit !(r >= 500) }'; then
    echo "error: $record records reader_borrowed large at $reader_large MiB/s — the floor is 500" >&2
    status=1
fi

# --- JSON data-plane record -------------------------------------------
# Same contract for the json bench: record present, current schema,
# every bench group covered, and the asserted budgets hold — the
# borrowed parser must beat the owned one on the large corpus, and the
# reuse serializer must hold its floor.
json_record=BENCH_json.json
json_src=crates/soc-bench/benches/json.rs

if [[ ! -f "$json_record" ]]; then
    echo "error: $json_record is missing — run 'cargo bench -p soc-bench --bench json' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$json_record"; then
    echo "error: $json_record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"baseline"' '"current"' '"speedup_large"'; do
    if ! grep -q "$section" "$json_record"; then
        echo "error: $json_record is missing the $section section" >&2
        exit 1
    fi
done

for group in $(grep -o 'BenchmarkId::new("[a-z_]*"' "$json_src" | sed 's/.*"\([a-z_]*\)".*/\1/' | sort -u); do
    if ! grep -q "\"$group\"" "$json_record"; then
        echo "error: bench group '$group' exists in $json_src but is absent from $json_record — re-record" >&2
        status=1
    fi
done

python3 - "$json_record" <<'PY' || status=1
import json, sys
rec = json.load(open(sys.argv[1]))["current"]["results"]
failures = []
borrowed = rec["parse_borrowed"]["large"]["throughput_mib_s"]
owned = rec["parse_owned"]["large"]["throughput_mib_s"]
if borrowed <= owned:
    failures.append(
        f"parse_borrowed large ({borrowed} MiB/s) must beat parse_owned ({owned} MiB/s)"
    )
if borrowed < 150:
    failures.append(f"parse_borrowed large at {borrowed} MiB/s — the floor is 150")
reuse = rec["serialize_reuse"]["large"]["throughput_mib_s"]
if reuse < 250:
    failures.append(f"serialize_reuse large at {reuse} MiB/s — the floor is 250")
for f in failures:
    print(f"error: BENCH_json.json: {f}", file=sys.stderr)
sys.exit(1 if failures else 0)
PY

# --- observability-plane overhead record ------------------------------
# The observe bench asserts its own budget when run (span_sampled_out
# must stay under BUDGET_SAMPLED_OUT_NS); here we keep the committed
# record honest: present, current schema, budget section, and one row
# per `bench("...")` call in the harness.
obs_record=BENCH_observe.json
obs_src=crates/soc-bench/benches/observe.rs

if [[ ! -f "$obs_record" ]]; then
    echo "error: $obs_record is missing — run 'cargo bench -p soc-bench --bench observe' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$obs_record"; then
    echo "error: $obs_record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"budget_ns"' '"current"' '"span_sampled_out"'; do
    if ! grep -q "$section" "$obs_record"; then
        echo "error: $obs_record is missing the $section section" >&2
        exit 1
    fi
done

for row in $(grep -o 'bench("[a-z_]*"' "$obs_src" | sed 's/.*"\([a-z_]*\)".*/\1/' | sort -u); do
    if ! grep -q "\"$row\"" "$obs_record"; then
        echo "error: bench row '$row' exists in $obs_src but is absent from $obs_record — re-record" >&2
        status=1
    fi
done

# --- resilience-layer overhead record ---------------------------------
# Same contract for the chaos bench: the harness asserts its budgets
# when run; the committed record must be present, on the current
# schema, carry the budget section, and cover every bench row.
chaos_record=BENCH_chaos.json
chaos_src=crates/soc-bench/benches/chaos.rs

if [[ ! -f "$chaos_record" ]]; then
    echo "error: $chaos_record is missing — run 'cargo bench -p soc-bench --bench chaos' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$chaos_record"; then
    echo "error: $chaos_record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"budget_ns"' '"current"' '"saga_noop"'; do
    if ! grep -q "$section" "$chaos_record"; then
        echo "error: $chaos_record is missing the $section section" >&2
        exit 1
    fi
done

for row in $(grep -o 'bench("[a-z_]*"' "$chaos_src" | sed 's/.*"\([a-z_]*\)".*/\1/' | sort -u); do
    if ! grep -q "\"$row\"" "$chaos_record"; then
        echo "error: bench row '$row' exists in $chaos_src but is absent from $chaos_record — re-record" >&2
        status=1
    fi
done

# --- discovery-layer overhead record ----------------------------------
# Same contract for the discover bench: crawl, index, search, and
# planner rows, budgets asserted by the harness, record kept honest
# here.
disc_record=BENCH_discover.json
disc_src=crates/soc-bench/benches/discover.rs

if [[ ! -f "$disc_record" ]]; then
    echo "error: $disc_record is missing — run 'cargo bench -p soc-bench --bench discover' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$disc_record"; then
    echo "error: $disc_record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"budget_ns"' '"current"' '"plan_chain_checked"'; do
    if ! grep -q "$section" "$disc_record"; then
        echo "error: $disc_record is missing the $section section" >&2
        exit 1
    fi
done

for row in $(grep -o 'bench("[a-z_]*"' "$disc_src" | sed 's/.*"\([a-z_]*\)".*/\1/' | sort -u); do
    if ! grep -q "\"$row\"" "$disc_record"; then
        echo "error: bench row '$row' exists in $disc_src but is absent from $disc_record — re-record" >&2
        status=1
    fi
done

# --- HTTP transport load record ---------------------------------------
# The http_load harness asserts its budgets when run (C10K p99, and
# reactor strictly above threaded at equal workers); the committed
# record must be present, on the current schema, cover every row the
# harness emits, and preserve the reactor > threaded ordering.
http_record=BENCH_http.json
http_src=crates/soc-bench/benches/http_load.rs

if [[ ! -f "$http_record" ]]; then
    echo "error: $http_record is missing — run 'cargo bench -p soc-bench --bench http_load' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$http_record"; then
    echo "error: $http_record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"budget_ns"' '"current"' '"reactor_vs_threaded"' '"c10k_conns"'; do
    if ! grep -q "$section" "$http_record"; then
        echo "error: $http_record is missing the $section section" >&2
        exit 1
    fi
done

for row in $(grep -o 'row("[a-z0-9_]*"' "$http_src" | sed 's/.*"\([a-z0-9_]*\)".*/\1/' | sort -u); do
    if ! grep -q "\"$row\"" "$http_record"; then
        echo "error: bench row '$row' exists in $http_src but is absent from $http_record — re-record" >&2
        status=1
    fi
done

# The recorded reactor throughput must be strictly above threaded at
# equal workers — the tentpole claim of the event-driven transport.
reactor_rps=$(sed -n 's/.*"reactor_rps": \([0-9.]*\).*/\1/p' "$http_record" | head -1)
threaded_rps=$(sed -n 's/.*"threaded_rps": \([0-9.]*\).*/\1/p' "$http_record" | head -1)
if [[ -z "$reactor_rps" || -z "$threaded_rps" ]]; then
    echo "error: $http_record must record reactor_rps and threaded_rps under reactor_vs_threaded" >&2
    status=1
elif ! awk -v r="$reactor_rps" -v t="$threaded_rps" 'BEGIN { exit !(r > t) }'; then
    echo "error: $http_record records reactor ($reactor_rps rps) <= threaded ($threaded_rps rps) — the reactor must win at equal workers" >&2
    status=1
fi

# --- durable state plane record ---------------------------------------
# The store bench asserts its budgets when run (pipelined group commit
# >= 10x fsync-per-record, replay rate floor, failover ceiling); the
# committed record must be present, on the current schema, cover every
# row, and preserve the asserted ratios and floors.
store_record=BENCH_store.json
store_src=crates/soc-bench/benches/store.rs

if [[ ! -f "$store_record" ]]; then
    echo "error: $store_record is missing — run 'cargo bench -p soc-bench --bench store' and record the results" >&2
    exit 1
fi

if ! grep -q '"schema_version": 1' "$store_record"; then
    echo "error: $store_record has an unknown schema_version (expected 1)" >&2
    exit 1
fi

for section in '"budget"' '"current"' '"group_commit_ratio"'; do
    if ! grep -q "$section" "$store_record"; then
        echo "error: $store_record is missing the $section section" >&2
        exit 1
    fi
done

for row in wal_append_fsync_always wal_append_group_commit wal_append_concurrent \
           recovery_replay shard_failover failover_under_rebalance; do
    if ! grep -q "\"$row\"" "$store_record"; then
        echo "error: bench row '$row' is absent from $store_record — re-record" >&2
        status=1
    fi
    if ! grep -q "\"$row\"" "$store_src"; then
        echo "error: bench row '$row' is absent from $store_src — record and harness have diverged" >&2
        status=1
    fi
done

python3 - "$store_record" <<'PY' || status=1
import json, sys
rec = json.load(open(sys.argv[1]))
budget = rec["budget"]
results = rec["current"]["results"]
failures = []
always = results["wal_append_fsync_always"]["time_ns"]
group = results["wal_append_group_commit"]["time_ns"]
concurrent = results["wal_append_concurrent"]["time_ns"]
ratio = always / group
if ratio < budget["group_commit_ratio_min"]:
    failures.append(
        f"group commit is only {ratio:.1f}x over fsync-per-record — "
        f"the floor is {budget['group_commit_ratio_min']}x"
    )
if always / concurrent < budget["concurrent_ratio_min"]:
    failures.append(
        f"concurrent appends are only {always / concurrent:.1f}x over "
        f"fsync-per-record — the floor is {budget['concurrent_ratio_min']}x"
    )
replay = results["recovery_replay"]["records_per_s"]
if replay < budget["replay_records_per_s_min"]:
    failures.append(
        f"recovery replays {replay:.0f} records/s — the floor is "
        f"{budget['replay_records_per_s_min']:.0f}"
    )
failover = results["shard_failover"]["time_ns"]
if failover > budget["failover_ns_max"]:
    failures.append(
        f"shard failover at {failover:.0f} ns — the ceiling is "
        f"{budget['failover_ns_max']:.0f}"
    )
elastic = results["failover_under_rebalance"]["time_ns"]
if elastic > budget["rebalance_failover_ns_max"]:
    failures.append(
        f"lease-driven failover at {elastic:.0f} ns — the ceiling is "
        f"{budget['rebalance_failover_ns_max']:.0f}"
    )
for f in failures:
    print(f"error: BENCH_store.json: {f}", file=sys.stderr)
sys.exit(1 if failures else 0)
PY

exit $status
