//! Load-balancing policies.
//!
//! Three classics, selectable per gateway:
//!
//! * **Round-robin** — fair rotation, oblivious to load.
//! * **Random two-choice** — pick two replicas at random, send to the
//!   less loaded one. The "power of two choices" gets most of the
//!   benefit of full load tracking at a fraction of the coordination.
//! * **Least-latency** — send to the replica with the lowest observed
//!   mean latency, as measured by the shared
//!   [`QosMonitor`](soc_registry::monitor::QosMonitor) that the
//!   gateway feeds with every proxied request.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;

/// Which balancing policy a gateway runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Rotate through replicas in order.
    RoundRobin,
    /// Two random candidates; the less loaded wins.
    RandomTwoChoice,
    /// Lowest observed mean latency wins; unmeasured replicas are
    /// explored first.
    LeastLatency,
}

impl Policy {
    /// Lower-case label for stats output.
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::RandomTwoChoice => "random-two-choice",
            Policy::LeastLatency => "least-latency",
        }
    }
}

/// What the balancer knows about one candidate replica at pick time.
#[derive(Debug, Clone)]
pub struct UpstreamView {
    /// The replica's endpoint URL.
    pub endpoint: String,
    /// Requests currently in flight to it through this gateway.
    pub in_flight: usize,
    /// Mean latency observed by the QoS monitor, when any.
    pub mean_latency: Option<Duration>,
}

/// A small, fast, seedable PRNG (xorshift64*). The gateway avoids a
/// heavyweight RNG dependency; statistical quality well beyond what
/// jitter and two-choice sampling need.
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        // splitmix64 step so that small seeds still start well mixed.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64 { state: (z ^ (z >> 31)) | 1 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `0..n`. `n` must be non-zero.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Backoff jitter factor in `[0.5, 1.5)`.
    pub(crate) fn jitter(&mut self) -> f64 {
        0.5 + (self.next() % 1_000) as f64 / 1_000.0
    }
}

/// The policy engine: holds per-service round-robin cursors and the
/// RNG for two-choice sampling.
pub struct Balancer {
    policy: Policy,
    cursors: Mutex<HashMap<String, usize>>,
    rng: Mutex<XorShift64>,
}

impl Balancer {
    /// A balancer running `policy`, with a deterministic seed for
    /// reproducible experiments.
    pub fn new(policy: Policy, seed: u64) -> Self {
        Balancer {
            policy,
            cursors: Mutex::new(HashMap::new()),
            rng: Mutex::new(XorShift64::new(seed)),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Pick one of `candidates` for `service`. Returns an index into
    /// `candidates`, or `None` when there are none.
    pub fn pick(&self, service: &str, candidates: &[UpstreamView]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return Some(0);
        }
        match self.policy {
            Policy::RoundRobin => {
                let mut cursors = self.cursors.lock();
                let cursor = cursors.entry(service.to_string()).or_insert(0);
                let i = *cursor % candidates.len();
                *cursor = cursor.wrapping_add(1);
                Some(i)
            }
            Policy::RandomTwoChoice => {
                let (a, b) = {
                    let mut rng = self.rng.lock();
                    let a = rng.below(candidates.len());
                    let mut b = rng.below(candidates.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    (a, b)
                };
                Some(less_loaded(candidates, a, b))
            }
            Policy::LeastLatency => {
                // Unmeasured replicas first — otherwise a replica with
                // no traffic never earns a measurement.
                if let Some(i) = candidates.iter().position(|c| c.mean_latency.is_none()) {
                    return Some(i);
                }
                candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| (c.mean_latency.unwrap_or_default(), c.in_flight))
                    .map(|(i, _)| i)
            }
        }
    }
}

/// Two-choice tie-break order: fewer in-flight, then lower latency,
/// then first.
fn less_loaded(candidates: &[UpstreamView], a: usize, b: usize) -> usize {
    let (ca, cb) = (&candidates[a], &candidates[b]);
    let key = |c: &UpstreamView| (c.in_flight, c.mean_latency.unwrap_or_default());
    if key(cb) < key(ca) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(endpoint: &str, in_flight: usize, latency_ms: Option<u64>) -> UpstreamView {
        UpstreamView {
            endpoint: endpoint.to_string(),
            in_flight,
            mean_latency: latency_ms.map(Duration::from_millis),
        }
    }

    #[test]
    fn round_robin_cycles_per_service() {
        let b = Balancer::new(Policy::RoundRobin, 7);
        let c = vec![view("a", 0, None), view("b", 0, None), view("c", 0, None)];
        let picks: Vec<usize> = (0..6).map(|_| b.pick("svc", &c).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Another service has its own cursor.
        assert_eq!(b.pick("other", &c), Some(0));
    }

    #[test]
    fn two_choice_prefers_the_less_loaded() {
        let b = Balancer::new(Policy::RandomTwoChoice, 42);
        // One idle replica among loaded ones: with two random probes it
        // must win every comparison it appears in, so it gets picked
        // far more often than 1/3 of the time.
        let c = vec![view("busy1", 10, None), view("idle", 0, None), view("busy2", 10, None)];
        let idle_picks = (0..300).filter(|_| b.pick("svc", &c) == Some(1)).count();
        assert!(idle_picks > 120, "idle replica picked only {idle_picks}/300");
    }

    #[test]
    fn least_latency_picks_the_fastest_known() {
        let b = Balancer::new(Policy::LeastLatency, 1);
        let c = vec![view("slow", 0, Some(80)), view("fast", 0, Some(5)), view("mid", 0, Some(20))];
        assert_eq!(b.pick("svc", &c), Some(1));
    }

    #[test]
    fn least_latency_explores_unmeasured_replicas() {
        let b = Balancer::new(Policy::LeastLatency, 1);
        let c = vec![view("fast", 0, Some(5)), view("new", 0, None)];
        assert_eq!(b.pick("svc", &c), Some(1));
    }

    #[test]
    fn empty_and_singleton_candidate_sets() {
        let b = Balancer::new(Policy::RoundRobin, 1);
        assert_eq!(b.pick("svc", &[]), None);
        assert_eq!(b.pick("svc", &[view("only", 3, None)]), Some(0));
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift64::new(99);
        let mut b = XorShift64::new(99);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<&u64> = xs.iter().collect();
        assert!(distinct.len() >= 7);
        for _ in 0..100 {
            let j = a.jitter();
            assert!((0.5..1.5).contains(&j));
        }
    }
}
