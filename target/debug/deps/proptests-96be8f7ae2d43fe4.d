/root/repo/target/debug/deps/proptests-96be8f7ae2d43fe4.d: crates/soc-webapp/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-96be8f7ae2d43fe4.rmeta: crates/soc-webapp/tests/proptests.rs Cargo.toml

crates/soc-webapp/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
