//! # soc-http — HTTP/1.1 substrate for the service stack
//!
//! The paper's services are hosted over HTTP (ASP.NET/WCF in the
//! original; here a from-scratch implementation). This crate provides:
//!
//! - [`types`] — methods, status codes, case-insensitive headers,
//!   [`Request`]/[`Response`] with builder APIs.
//! - [`url`] — a small URL parser with percent-encoding and query/form
//!   handling (`application/x-www-form-urlencoded`).
//! - [`codec`] — wire encode/decode: request/response lines, headers,
//!   `Content-Length` and `chunked` bodies.
//! - [`server`] — a TCP server ([`HttpServer`]) running any [`Handler`]
//!   on a `soc-parallel` pool, with keep-alive and graceful shutdown.
//!   On Linux the default transport is a readiness-driven epoll
//!   reactor (see [`poller`]) that multiplexes every connection on one
//!   event-loop thread; a threaded blocking transport remains as the
//!   portable fallback and differential-testing baseline.
//! - [`client`] — a blocking TCP client ([`HttpClient`]) with
//!   keep-alive connection pooling (bounded per-host idle pools,
//!   idle-timeout eviction, retire-on-error).
//! - [`mem`] — an in-memory virtual network ([`mem::MemNetwork`]): the
//!   same `Handler` interface without sockets, so whole multi-service
//!   topologies (provider + broker + client, crawler across
//!   directories) run deterministically inside one process. `mem://`
//!   URLs address it.
//! - [`cookies`] — cookie parsing/formatting for the web-app state
//!   management unit.
//! - [`fault`] — deterministic seeded fault injection (probabilistic
//!   failures, lost responses, corruption/truncation, burst windows)
//!   applied by [`mem::MemNetwork`]; host-pair partitions live on the
//!   network itself.
//!
//! ```
//! use soc_http::{Handler, Request, Response, Status};
//! use soc_http::mem::{MemNetwork, Transport};
//!
//! let net = MemNetwork::new();
//! net.host("echo.example", |req: Request| {
//!     Response::new(Status::OK).with_body_bytes(req.body.clone())
//! });
//! let resp = net.send(Request::post("mem://echo.example/", b"hi".to_vec())).unwrap();
//! assert_eq!(resp.body, b"hi");
//! ```

pub mod client;
pub mod codec;
pub mod cookies;
pub mod fault;
pub mod mem;
pub mod observe;
#[cfg(target_os = "linux")]
pub mod poller;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
pub mod types;
pub mod url;

pub use client::{ClientPoolStats, HttpClient, PoolConfig};
pub use fault::{FaultConfig, FaultRng, FaultVerdict, FaultWindow};
pub use mem::{MemNetwork, Transport};
pub use observe::ObserveEndpoints;
pub use server::{Handler, HttpServer, ServerConfig, ServerTransport};
pub use types::{
    fresh_idempotency_key, Headers, HttpError, HttpResult, Method, Request, Response, Status,
    Version, IDEMPOTENCY_KEY,
};
pub use url::Url;
