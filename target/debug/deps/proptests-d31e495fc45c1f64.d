/root/repo/target/debug/deps/proptests-d31e495fc45c1f64.d: crates/soc-robotics/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d31e495fc45c1f64.rmeta: crates/soc-robotics/tests/proptests.rs Cargo.toml

crates/soc-robotics/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
