//! OTLP-shaped span export: batches of finished spans encoded as
//! OTLP/JSON (`ExportTraceServiceRequest`), the wire form an
//! OpenTelemetry collector accepts on `/v1/traces`.
//!
//! The encoder is deliberately a *batcher*: callers hand it a slice of
//! [`SpanRecord`]s and get back one encoded request. [`OtlpExporter`]
//! keeps both the JSON tree's string buffer and the batch staging
//! vector across calls, so a periodic export loop settles into zero
//! steady-state allocation growth — the same buffer-reuse discipline as
//! [`soc_json::ser::write_into`], which it uses to render.
//!
//! Timestamps are nanoseconds on the process-relative monotonic clock
//! the span store records (`start_us`); a collector pinning them to the
//! epoch would add the process start time. Field spelling and nesting
//! (`resourceSpans` → `scopeSpans` → `spans`, `stringValue` attribute
//! wrappers, stringified 64-bit integers) follow the OTLP/JSON mapping
//! so the output shape matches what real exporters emit.

use soc_json::Value;

use crate::span::{SpanKind, SpanRecord, SpanStatus};

/// OTLP enum value for a span kind (`SPAN_KIND_*`).
fn kind_code(kind: SpanKind) -> i64 {
    match kind {
        SpanKind::Internal => 1,
        SpanKind::Server => 2,
        SpanKind::Client => 3,
    }
}

/// OTLP enum value for a status (`STATUS_CODE_*`).
fn status_code(status: SpanStatus) -> i64 {
    match status {
        SpanStatus::Ok => 1,
        SpanStatus::Error => 2,
    }
}

/// One OTLP attribute: `{"key": k, "value": {"stringValue": v}}`.
fn attr(key: &str, value: &str) -> Value {
    let mut wrapped = Value::object();
    wrapped.set("stringValue", value);
    let mut a = Value::object();
    a.set("key", key);
    a.set("value", wrapped);
    a
}

/// Encode one finished span in OTLP/JSON span form.
pub fn span_to_otlp(rec: &SpanRecord) -> Value {
    let mut s = Value::object();
    s.set("traceId", rec.trace_id.to_hex());
    s.set("spanId", rec.span_id.to_hex());
    if let Some(parent) = rec.parent {
        s.set("parentSpanId", parent.to_hex());
    }
    s.set("name", rec.name.as_str());
    s.set("kind", kind_code(rec.kind));
    // OTLP/JSON carries 64-bit nanos as decimal strings.
    s.set("startTimeUnixNano", (rec.start_us * 1000).to_string());
    s.set("endTimeUnixNano", ((rec.start_us + rec.duration_us) * 1000).to_string());
    let mut attrs: Vec<Value> = rec.attrs.iter().map(|(k, v)| attr(k, v)).collect();
    if let Some(err) = &rec.error {
        attrs.push(attr("error.message", err));
    }
    if !attrs.is_empty() {
        s.set("attributes", Value::Array(attrs));
    }
    let mut status = Value::object();
    status.set("code", status_code(rec.status));
    if let Some(err) = &rec.error {
        status.set("message", err.as_str());
    }
    s.set("status", status);
    s
}

/// Batched span-export encoder with reused buffers.
///
/// ```
/// use soc_observe::otlp::OtlpExporter;
///
/// let mut exporter = OtlpExporter::new("soc-demo");
/// // e.g. the spans of a finished trace, pulled from the store:
/// let batch: Vec<soc_observe::SpanRecord> = Vec::new();
/// let request_body = exporter.encode_batch(&batch);
/// assert!(request_body.starts_with("{\"resourceSpans\":"));
/// ```
pub struct OtlpExporter {
    service_name: String,
    buf: String,
}

impl OtlpExporter {
    /// An exporter stamping every batch with `service.name`.
    pub fn new(service_name: impl Into<String>) -> OtlpExporter {
        OtlpExporter { service_name: service_name.into(), buf: String::new() }
    }

    /// Encode a batch as one OTLP/JSON `ExportTraceServiceRequest`.
    ///
    /// The returned slice borrows the exporter's internal buffer and is
    /// valid until the next call; the buffer's capacity is retained
    /// across batches.
    pub fn encode_batch(&mut self, spans: &[SpanRecord]) -> &str {
        let mut scope = Value::object();
        let mut scope_id = Value::object();
        scope_id.set("name", "soc-observe");
        scope.set("scope", scope_id);
        scope.set("spans", Value::Array(spans.iter().map(span_to_otlp).collect()));

        let mut resource = Value::object();
        resource.set("attributes", Value::Array(vec![attr("service.name", &self.service_name)]));
        let mut resource_spans = Value::object();
        resource_spans.set("resource", resource);
        resource_spans.set("scopeSpans", Value::Array(vec![scope]));

        let mut root = Value::object();
        root.set("resourceSpans", Value::Array(vec![resource_spans]));

        self.buf.clear();
        root.write_into(&mut self.buf);
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SpanId, TraceId};

    fn record(name: &str, error: Option<&str>) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(0xabcd),
            span_id: SpanId(0x1234),
            parent: Some(SpanId(0x5678)),
            name: name.to_string(),
            kind: SpanKind::Server,
            start_us: 1_000,
            duration_us: 250,
            status: if error.is_some() { SpanStatus::Error } else { SpanStatus::Ok },
            error: error.map(String::from),
            attrs: vec![("http.method".into(), "GET".into())],
        }
    }

    #[test]
    fn span_mapping_follows_the_otlp_shape() {
        let v = span_to_otlp(&record("gw.attempt", None));
        assert_eq!(
            v.pointer("/traceId").and_then(Value::as_str),
            Some(TraceId(0xabcd).to_hex()).as_deref()
        );
        assert_eq!(
            v.pointer("/spanId").and_then(Value::as_str),
            Some(SpanId(0x1234).to_hex()).as_deref()
        );
        assert_eq!(v.pointer("/kind").and_then(Value::as_i64), Some(2));
        assert_eq!(v.pointer("/startTimeUnixNano").and_then(Value::as_str), Some("1000000"));
        assert_eq!(v.pointer("/endTimeUnixNano").and_then(Value::as_str), Some("1250000"));
        assert_eq!(v.pointer("/status/code").and_then(Value::as_i64), Some(1));
        assert_eq!(v.pointer("/attributes/0/key").and_then(Value::as_str), Some("http.method"));
        assert_eq!(
            v.pointer("/attributes/0/value/stringValue").and_then(Value::as_str),
            Some("GET")
        );
    }

    #[test]
    fn errors_carry_status_and_message() {
        let v = span_to_otlp(&record("gw.attempt", Some("connection reset")));
        assert_eq!(v.pointer("/status/code").and_then(Value::as_i64), Some(2));
        assert_eq!(v.pointer("/status/message").and_then(Value::as_str), Some("connection reset"));
        assert_eq!(
            v.pointer("/attributes/1/value/stringValue").and_then(Value::as_str),
            Some("connection reset")
        );
    }

    #[test]
    fn batches_nest_under_one_resource_and_reuse_the_buffer() {
        let mut exporter = OtlpExporter::new("soc-test");
        let batch = [record("a", None), record("b", Some("boom"))];
        let first = exporter.encode_batch(&batch).to_string();
        let v = Value::parse(&first).unwrap();
        assert_eq!(
            v.pointer("/resourceSpans/0/resource/attributes/0/value/stringValue")
                .and_then(Value::as_str),
            Some("soc-test")
        );
        assert_eq!(
            v.pointer("/resourceSpans/0/scopeSpans/0/scope/name").and_then(Value::as_str),
            Some("soc-observe")
        );
        let spans = v.pointer("/resourceSpans/0/scopeSpans/0/spans").unwrap();
        assert_eq!(spans.as_array().map(<[Value]>::len), Some(2));

        // Re-encoding the same batch into the retained buffer is
        // byte-identical, and the capacity survives the round.
        let cap = {
            exporter.encode_batch(&batch);
            exporter.buf.capacity()
        };
        assert_eq!(exporter.encode_batch(&batch), first);
        assert_eq!(exporter.buf.capacity(), cap, "buffer must be reused, not reallocated");

        // An empty batch is still a well-formed request.
        let empty = Value::parse(exporter.encode_batch(&[])).unwrap();
        assert_eq!(
            empty
                .pointer("/resourceSpans/0/scopeSpans/0/spans")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
    }
}
