/root/repo/target/debug/deps/table4_enrollment-ddc0a07f35a3c5e7.d: crates/soc-bench/src/bin/table4_enrollment.rs

/root/repo/target/debug/deps/table4_enrollment-ddc0a07f35a3c5e7: crates/soc-bench/src/bin/table4_enrollment.rs

crates/soc-bench/src/bin/table4_enrollment.rs:
