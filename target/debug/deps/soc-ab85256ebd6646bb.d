/root/repo/target/debug/deps/soc-ab85256ebd6646bb.d: src/lib.rs

/root/repo/target/debug/deps/soc-ab85256ebd6646bb: src/lib.rs

src/lib.rs:
