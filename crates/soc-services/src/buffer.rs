//! The messaging-buffer service: named bounded queues over
//! [`soc_parallel::sync::BoundedBuffer`] — the producer/consumer
//! primitive from unit 2, promoted to a service.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use soc_parallel::sync::{BoundedBuffer, BufferError};

/// The service: a namespace of independently bounded queues.
pub struct MessageBufferService {
    queues: RwLock<HashMap<String, Arc<BoundedBuffer<String>>>>,
    default_capacity: usize,
}

impl MessageBufferService {
    /// Service whose queues hold `default_capacity` messages.
    pub fn new(default_capacity: usize) -> Self {
        MessageBufferService {
            queues: RwLock::new(HashMap::new()),
            default_capacity: default_capacity.max(1),
        }
    }

    fn queue(&self, name: &str) -> Arc<BoundedBuffer<String>> {
        if let Some(q) = self.queues.read().get(name) {
            return q.clone();
        }
        let mut queues = self.queues.write();
        queues
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(BoundedBuffer::new(self.default_capacity)))
            .clone()
    }

    /// Enqueue, waiting up to `timeout` for space. Returns `false` on
    /// timeout or a closed queue.
    pub fn send(&self, queue: &str, message: &str, timeout: Duration) -> bool {
        match self.queue(queue).put_timeout(message.to_string(), timeout) {
            Ok(()) => true,
            Err(BufferError::Closed(_) | BufferError::Timeout(_)) => false,
        }
    }

    /// Non-blocking receive.
    pub fn try_receive(&self, queue: &str) -> Option<String> {
        self.queue(queue).try_take()
    }

    /// Blocking receive with a timeout. `Ok(None)` means the queue was
    /// closed and drained; `Err(())` means timeout (the only failure
    /// mode, so the unit error is deliberate).
    #[allow(clippy::result_unit_err)]
    pub fn receive(&self, queue: &str, timeout: Duration) -> Result<Option<String>, ()> {
        self.queue(queue).take_timeout(timeout)
    }

    /// Messages waiting in a queue.
    pub fn depth(&self, queue: &str) -> usize {
        self.queues.read().get(queue).map(|q| q.len()).unwrap_or(0)
    }

    /// Close a queue: producers fail, consumers drain.
    pub fn close(&self, queue: &str) {
        if let Some(q) = self.queues.read().get(queue) {
            q.close();
        }
    }

    /// Names of all queues (sorted).
    pub fn queue_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.queues.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(100);

    #[test]
    fn send_receive_fifo() {
        let svc = MessageBufferService::new(8);
        assert!(svc.send("orders", "a", T));
        assert!(svc.send("orders", "b", T));
        assert_eq!(svc.depth("orders"), 2);
        assert_eq!(svc.receive("orders", T).unwrap().as_deref(), Some("a"));
        assert_eq!(svc.try_receive("orders").as_deref(), Some("b"));
        assert_eq!(svc.try_receive("orders"), None);
    }

    #[test]
    fn queues_are_independent() {
        let svc = MessageBufferService::new(8);
        svc.send("a", "1", T);
        svc.send("b", "2", T);
        assert_eq!(svc.depth("a"), 1);
        assert_eq!(svc.depth("b"), 1);
        assert_eq!(svc.queue_names(), vec!["a", "b"]);
    }

    #[test]
    fn capacity_bounds_producers() {
        let svc = MessageBufferService::new(1);
        assert!(svc.send("q", "1", T));
        // Queue full: short-timeout send fails.
        assert!(!svc.send("q", "2", Duration::from_millis(10)));
    }

    #[test]
    fn close_semantics() {
        let svc = MessageBufferService::new(4);
        svc.send("q", "last", T);
        svc.close("q");
        assert!(!svc.send("q", "after", T));
        assert_eq!(svc.receive("q", T).unwrap().as_deref(), Some("last"));
        assert_eq!(svc.receive("q", T).unwrap(), None);
    }

    #[test]
    fn receive_timeout() {
        let svc = MessageBufferService::new(4);
        assert_eq!(svc.receive("empty", Duration::from_millis(10)), Err(()));
    }

    #[test]
    fn cross_thread_transfer() {
        let svc = Arc::new(MessageBufferService::new(2));
        let svc2 = svc.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..20 {
                assert!(svc2.send("work", &format!("job-{i}"), Duration::from_secs(5)));
            }
            svc2.close("work");
        });
        let mut got = Vec::new();
        while let Ok(Some(msg)) = svc.receive("work", Duration::from_secs(5)) {
            got.push(msg);
        }
        producer.join().unwrap();
        assert_eq!(got.len(), 20);
        assert_eq!(got[0], "job-0");
        assert_eq!(got[19], "job-19");
    }
}
