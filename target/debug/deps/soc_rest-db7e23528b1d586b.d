/root/repo/target/debug/deps/soc_rest-db7e23528b1d586b.d: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_rest-db7e23528b1d586b.rmeta: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs Cargo.toml

crates/soc-rest/src/lib.rs:
crates/soc-rest/src/client.rs:
crates/soc-rest/src/middleware.rs:
crates/soc-rest/src/negotiate.rs:
crates/soc-rest/src/resource.rs:
crates/soc-rest/src/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
