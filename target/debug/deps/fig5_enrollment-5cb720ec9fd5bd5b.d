/root/repo/target/debug/deps/fig5_enrollment-5cb720ec9fd5bd5b.d: crates/soc-bench/src/bin/fig5_enrollment.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_enrollment-5cb720ec9fd5bd5b.rmeta: crates/soc-bench/src/bin/fig5_enrollment.rs Cargo.toml

crates/soc-bench/src/bin/fig5_enrollment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
