/root/repo/target/release/deps/soc_workflow-d09f8e07a6f29a82.d: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

/root/repo/target/release/deps/libsoc_workflow-d09f8e07a6f29a82.rlib: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

/root/repo/target/release/deps/libsoc_workflow-d09f8e07a6f29a82.rmeta: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

crates/soc-workflow/src/lib.rs:
crates/soc-workflow/src/activity.rs:
crates/soc-workflow/src/bpel.rs:
crates/soc-workflow/src/fsm.rs:
crates/soc-workflow/src/graph.rs:
