/root/repo/target/debug/deps/soc_registry-149e297c77bd3a27.d: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

/root/repo/target/debug/deps/libsoc_registry-149e297c77bd3a27.rlib: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

/root/repo/target/debug/deps/libsoc_registry-149e297c77bd3a27.rmeta: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

crates/soc-registry/src/lib.rs:
crates/soc-registry/src/crawler.rs:
crates/soc-registry/src/descriptor.rs:
crates/soc-registry/src/directory.rs:
crates/soc-registry/src/monitor.rs:
crates/soc-registry/src/ontology.rs:
crates/soc-registry/src/repository.rs:
crates/soc-registry/src/search.rs:
