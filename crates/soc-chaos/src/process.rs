//! Process-level chaos: `kill -9` a shard primary or a saga
//! coordinator mid-campaign and prove the durable state plane brings
//! the survivors back to a consistent world.
//!
//! The in-process campaigns in [`crate::harness`] inject *network*
//! faults; this module injects *process death*. The `victim` binary
//! (this crate's second bin target) runs either a [`StoreNode`] or a
//! durable saga coordinator as a child process; the campaign driver
//! SIGKILLs it at a seeded point — no signal handler, no destructors,
//! no WAL flush beyond what was already acknowledged — restarts it
//! against the same on-disk state, and then audits the invariants that
//! define crash-consistency:
//!
//! - **no lost writes** — every store write the client saw acknowledged
//!   is readable after replay, with the acknowledged value and a
//!   version at least as new;
//! - **no duplicated applications** — every mortgage application
//!   executed at most once across both coordinator lives
//!   ([`SubmissionLedger::max_executions_per_content`] stays ≤ 1),
//!   because the restarted coordinator resumes or compensates from the
//!   [`SagaJournal`] and re-submissions carry the same deterministic
//!   idempotency key;
//! - **no dangling sagas** — after the second life exits, the journal's
//!   open-saga table is empty.
//!
//! Both campaigns also run without child processes on [`MemNetwork`]
//! (crash = drop the node / unwind the coordinator mid-saga and reopen
//! its WAL directory), so the same invariants are checked on the mem
//! and TCP transports.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use soc_http::{HttpClient, HttpServer, MemNetwork, Request, Response, Status, Transport};
use soc_json::{json, Value};
use soc_rest::RestClient;
use soc_services::bindings::ServiceHost;
use soc_services::ledger::SubmissionLedger;
use soc_store::wal::{Lsn, WalConfig};
use soc_store::{ShardMap, ShardNode, StoreClient, StoreNode, StoreNodeConfig, TempDir};
use soc_workflow::activity::{Activity, ActivityError, Compute, Const, Ports};
use soc_workflow::{SagaConfig, SagaJournal, WorkflowGraph};

// ---------------------------------------------------------------------------
// Deterministic campaign vocabulary (shared with the victim binary)
// ---------------------------------------------------------------------------

/// The idempotency key for run `run` of a seeded campaign. Unlike the
/// trace-derived keys [`soc_workflow::activity::ServiceCall`] mints,
/// this survives a process restart — which is exactly what lets a
/// resumed coordinator re-fire a step whose response was lost and have
/// the ledger dedupe it.
pub fn application_key(seed: u64, run: usize) -> String {
    format!("app-{seed:x}-{run}")
}

/// A distinct mortgage application per run, so the ledger's by-content
/// audit can catch a duplicated decision.
pub fn application_body(seed: u64, run: usize) -> Value {
    let ssn = seed.wrapping_mul(2_654_435_761).wrapping_add(run as u64) % 1_000_000_000;
    json!({
        "name": (format!("proc-{seed:x}-{run}")),
        "ssn": (format!("{ssn:09}")),
        "annual_income": 120_000,
        "loan_amount": 240_000,
        "term_years": 30
    })
}

/// POST one input port's JSON to a fixed URL, optionally under a fixed
/// idempotency key, and emit the response JSON on `out`.
pub struct KeyedPost {
    transport: Arc<dyn Transport>,
    url: String,
    key: Option<String>,
    input: String,
}

impl KeyedPost {
    /// A keyed (or keyless, for non-idempotent fan-out like finalize)
    /// POST activity reading its body from input port `input`.
    pub fn new(
        transport: Arc<dyn Transport>,
        url: impl Into<String>,
        key: Option<&str>,
        input: &str,
    ) -> KeyedPost {
        KeyedPost {
            transport,
            url: url.into(),
            key: key.map(str::to_string),
            input: input.to_string(),
        }
    }
}

impl Activity for KeyedPost {
    fn inputs(&self) -> Vec<String> {
        vec![self.input.clone()]
    }

    fn outputs(&self) -> Vec<String> {
        vec!["out".to_string()]
    }

    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let body = inputs[&self.input].to_compact().into_bytes();
        let mut req =
            Request::post(self.url.clone(), body).with_header("Content-Type", "application/json");
        if let Some(key) = &self.key {
            req = req.with_idempotency_key(key);
        }
        let resp = self.transport.send(req).map_err(|e| ActivityError::Service(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(ActivityError::Service(format!("{} returned {}", self.url, resp.status.0)));
        }
        let text = resp.text_body().map_err(|e| ActivityError::Service(e.to_string()))?;
        let value = Value::parse(text)
            .map_err(|e| ActivityError::Service(format!("bad JSON from {}: {e:?}", self.url)))?;
        Ok([("out".to_string(), value)].into())
    }
}

/// Compensator for a keyed submission: cancel the reservation under
/// the key chosen up front. Safe whether or not the submission ever
/// landed — an unknown key leaves a tombstone that refuses a
/// straggling replay, so this never produces an orphan cancel.
pub struct KeyedCancel {
    transport: Arc<dyn Transport>,
    base: String,
    key: String,
}

impl Activity for KeyedCancel {
    fn inputs(&self) -> Vec<String> {
        Vec::new()
    }

    fn outputs(&self) -> Vec<String> {
        vec!["out".to_string()]
    }

    fn execute(&self, _inputs: &Ports) -> Result<Ports, ActivityError> {
        let body = json!({ "application_id": (self.key.as_str()) }).to_compact().into_bytes();
        let req = Request::post(format!("{}/mortgage/cancel-reservation", self.base), body)
            .with_header("Content-Type", "application/json");
        let resp = self.transport.send(req).map_err(|e| ActivityError::Service(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(ActivityError::Service(format!(
                "cancel-reservation returned {}",
                resp.status.0
            )));
        }
        Ok([("out".to_string(), Value::Null)].into())
    }
}

/// The three-node saga every coordinator campaign runs:
/// `application` (constant) → `apply` (idempotency-keyed POST to the
/// mortgage service, compensated by a reservation cancel) → `finalize`
/// (caller-supplied — the slow or crashing step the kill lands in).
pub fn mortgage_saga(
    transport: &Arc<dyn Transport>,
    mortgage_base: &str,
    key: &str,
    body: Value,
    finalize: impl Activity + 'static,
) -> WorkflowGraph {
    let mut g = WorkflowGraph::new();
    let app = g.add("application", Const::new(body));
    let apply = g.add(
        "apply",
        KeyedPost::new(
            transport.clone(),
            format!("{mortgage_base}/mortgage/apply"),
            Some(key),
            "application",
        ),
    );
    let fin = g.add("finalize", finalize);
    g.connect(app, "out", apply, "application").expect("wire application -> apply");
    g.connect(apply, "out", fin, "decision").expect("wire apply -> finalize");
    g.set_compensation(
        apply,
        KeyedCancel {
            transport: transport.clone(),
            base: mortgage_base.to_string(),
            key: key.to_string(),
        },
    )
    .expect("apply compensator");
    g
}

/// How a restarted coordinator settles the sagas its previous life
/// left open in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Seed journalled completions and run the remaining suffix.
    Resume,
    /// Run the compensators of every journalled completion in reverse.
    Compensate,
}

impl RecoveryMode {
    /// Command-line form, for the victim binary.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryMode::Resume => "resume",
            RecoveryMode::Compensate => "compensate",
        }
    }

    /// Parse the command-line form.
    pub fn parse(s: &str) -> Option<RecoveryMode> {
        match s {
            "resume" => Some(RecoveryMode::Resume),
            "compensate" => Some(RecoveryMode::Compensate),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The child process under test
// ---------------------------------------------------------------------------

/// A child process under test: spawned with piped stdout, killed with
/// SIGKILL (never a graceful shutdown), restartable with the same
/// arguments against the same on-disk state.
pub struct Victim {
    exe: String,
    args: Vec<String>,
    child: Child,
    lines: BufReader<std::process::ChildStdout>,
}

impl Victim {
    /// Spawn `exe args...` with stdout piped back to the campaign.
    pub fn spawn(exe: &str, args: &[String]) -> io::Result<Victim> {
        let mut child = Command::new(exe).args(args).stdout(Stdio::piped()).spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        Ok(Victim {
            exe: exe.to_string(),
            args: args.to_vec(),
            child,
            lines: BufReader::new(stdout),
        })
    }

    /// Next stdout line, or `None` once the child's stdout closes.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        if self.lines.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        Ok(Some(line.trim_end().to_string()))
    }

    /// Read until a line starting with `prefix`; returns the remainder
    /// of that line. Errors if the child exits first.
    pub fn expect_line(&mut self, prefix: &str) -> io::Result<String> {
        while let Some(line) = self.next_line()? {
            if let Some(rest) = line.strip_prefix(prefix) {
                return Ok(rest.trim().to_string());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("child exited before printing {prefix:?}"),
        ))
    }

    /// `kill -9`: no signal handler runs, no buffers flush, no
    /// destructor executes. Reaps the child.
    pub fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Respawn the same command line — same directories, same identity
    /// — so the new incarnation recovers from the old one's WAL.
    pub fn restart(&mut self) -> io::Result<()> {
        let fresh = Victim::spawn(&self.exe, &self.args)?;
        let mut old = std::mem::replace(self, fresh);
        old.kill9();
        Ok(())
    }

    /// Wait for the child to exit; true on a zero status.
    pub fn wait_success(&mut self) -> io::Result<bool> {
        Ok(self.child.wait()?.success())
    }
}

impl Drop for Victim {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Store-primary kill campaigns
// ---------------------------------------------------------------------------

/// Knobs for a store-primary kill campaign.
#[derive(Debug, Clone)]
pub struct StoreKillConfig {
    /// Seeds key names and payloads.
    pub seed: u64,
    /// Store nodes in the fleet.
    pub nodes: usize,
    /// N-way replication factor for the shard map.
    pub replication: usize,
    /// Distinct keys written each round.
    pub keys: usize,
    /// Write rounds (every key is rewritten per round).
    pub rounds: usize,
    /// Round at whose start the first key's primary is killed.
    pub kill_round: usize,
}

impl Default for StoreKillConfig {
    fn default() -> StoreKillConfig {
        StoreKillConfig {
            seed: 0xC0FFEE,
            nodes: 3,
            replication: 2,
            keys: 16,
            rounds: 4,
            kill_round: 2,
        }
    }
}

/// What a store kill campaign observed; [`StoreKillReport::violations`]
/// is the verdict.
#[derive(Debug, Default)]
pub struct StoreKillReport {
    /// Writes the client saw acknowledged.
    pub acked: usize,
    /// Nodes killed and restarted.
    pub restarts: usize,
    /// Id of the killed primary.
    pub killed: String,
    /// Writes refused while the primary was down (the window is real).
    pub failed_writes: usize,
    /// Acked keys unreadable after recovery.
    pub lost: Vec<String>,
    /// Acked keys that read back a different value.
    pub mismatched: Vec<String>,
    /// Acked keys that read back an older version than acknowledged.
    pub stale: Vec<String>,
}

impl StoreKillReport {
    /// Invariant violations; empty means the campaign passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.restarts == 0 {
            v.push("campaign never killed a primary".to_string());
        }
        if !self.lost.is_empty() {
            v.push(format!("acked writes lost after recovery: {:?}", self.lost));
        }
        if !self.mismatched.is_empty() {
            v.push(format!("acked writes read back wrong values: {:?}", self.mismatched));
        }
        if !self.stale.is_empty() {
            v.push(format!("reads regressed below acked versions: {:?}", self.stale));
        }
        v
    }
}

fn key_name(seed: u64, k: usize) -> String {
    format!("k{seed:x}-{k}")
}

/// One store fleet the campaign can address, kill, and restart —
/// child processes over TCP or in-process nodes on [`MemNetwork`].
trait StoreFleet {
    fn ids(&self) -> &[String];
    fn endpoint(&self, idx: usize) -> String;
    fn transport(&self) -> Arc<dyn Transport>;
    fn kill(&mut self, idx: usize);
    fn restart(&mut self, idx: usize) -> io::Result<()>;
}

/// Publish the fleet's current shard map to every node (over the
/// `POST /store/map` route, same as a registry-driven rebalance) and
/// install it in the client.
fn publish_map(
    fleet: &dyn StoreFleet,
    client: &StoreClient,
    version: u64,
    replication: usize,
) -> io::Result<Arc<ShardMap>> {
    let rest = RestClient::new(fleet.transport());
    let nodes: Vec<ShardNode> = fleet
        .ids()
        .iter()
        .enumerate()
        .map(|(i, id)| ShardNode { id: id.clone(), endpoint: fleet.endpoint(i) })
        .collect();
    let map = Arc::new(ShardMap::build(version, nodes, replication));
    for node in map.nodes() {
        rest.post(&format!("{}/store/map", node.endpoint), &map.to_json())
            .map_err(|e| io::Error::other(format!("publish map to {}: {e:?}", node.id)))?;
    }
    client.set_map(map.clone());
    Ok(map)
}

fn put_with_retry(client: &StoreClient, key: &str, value: &Value) -> io::Result<Lsn> {
    let mut last = String::new();
    for _ in 0..20 {
        match client.put(key, value) {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = format!("{e:?}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(io::Error::other(format!("write of {key} never succeeded: {last}")))
}

fn drive_store_kill(
    fleet: &mut dyn StoreFleet,
    cfg: &StoreKillConfig,
) -> io::Result<StoreKillReport> {
    let client = StoreClient::new(fleet.transport());
    let mut version = 1;
    publish_map(fleet, &client, version, cfg.replication)?;

    let mut report = StoreKillReport::default();
    let mut expected: HashMap<String, (Value, Lsn)> = HashMap::new();

    for round in 0..cfg.rounds {
        if round == cfg.kill_round {
            // The first key's primary dies mid-campaign. Prove the
            // window is real — a write routed at the dead primary must
            // fail rather than falsely acknowledge — then restart it
            // against the same WAL directory and republish the map
            // (its new incarnation comes up empty-mapped and, over
            // TCP, on a new port).
            let victim_key = key_name(cfg.seed, 0);
            let primary_id = client.map().primary(&victim_key).expect("ring has nodes").id.clone();
            let idx = fleet.ids().iter().position(|id| *id == primary_id).expect("known id");
            report.killed = primary_id;
            fleet.kill(idx);
            if client.put(&victim_key, &json!({ "round": (-1) })).is_err() {
                report.failed_writes += 1;
            }
            fleet.restart(idx)?;
            report.restarts += 1;
            version += 1;
            publish_map(fleet, &client, version, cfg.replication)?;
        }
        for k in 0..cfg.keys {
            let key = key_name(cfg.seed, k);
            let value = json!({
                "seed": (cfg.seed as i64),
                "key": (k as i64),
                "round": (round as i64)
            });
            let ver = put_with_retry(&client, &key, &value)?;
            expected.insert(key, (value, ver));
            report.acked += 1;
        }
    }

    // Every acknowledged write must survive the crash: readable, the
    // acknowledged value, at a version no older than acknowledged.
    for (key, (value, ver)) in &expected {
        match client.get(key) {
            Ok(Some((got, gv))) => {
                if got != *value {
                    report.mismatched.push(key.clone());
                }
                if gv < *ver {
                    report.stale.push(key.clone());
                }
            }
            Ok(None) | Err(_) => report.lost.push(key.clone()),
        }
    }
    Ok(report)
}

struct TcpStoreFleet {
    ids: Vec<String>,
    endpoints: Vec<String>,
    victims: Vec<Victim>,
    _dirs: Vec<TempDir>,
    http: Arc<HttpClient>,
}

impl StoreFleet for TcpStoreFleet {
    fn ids(&self) -> &[String] {
        &self.ids
    }

    fn endpoint(&self, idx: usize) -> String {
        self.endpoints[idx].clone()
    }

    fn transport(&self) -> Arc<dyn Transport> {
        self.http.clone()
    }

    fn kill(&mut self, idx: usize) {
        self.victims[idx].kill9();
    }

    fn restart(&mut self, idx: usize) -> io::Result<()> {
        self.victims[idx].restart()?;
        self.endpoints[idx] = self.victims[idx].expect_line("READY")?;
        Ok(())
    }
}

/// Kill -9 a shard primary mid-campaign over real sockets: store nodes
/// run as child processes of the `victim` binary, the killed one is
/// respawned against its WAL directory, and every acknowledged write
/// must survive the replay.
pub fn run_tcp_store_kill(victim_exe: &str, cfg: &StoreKillConfig) -> io::Result<StoreKillReport> {
    let dirs: Vec<TempDir> =
        (0..cfg.nodes).map(|i| TempDir::new(&format!("kill-store-{i}"))).collect();
    let ids: Vec<String> = (0..cfg.nodes).map(|i| format!("store-{i}")).collect();
    let mut victims = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..cfg.nodes {
        let args = vec!["store".to_string(), dirs[i].path().display().to_string(), ids[i].clone()];
        let mut v = Victim::spawn(victim_exe, &args)?;
        endpoints.push(v.expect_line("READY")?);
        victims.push(v);
    }
    let mut fleet =
        TcpStoreFleet { ids, endpoints, victims, _dirs: dirs, http: Arc::new(HttpClient::new()) };
    drive_store_kill(&mut fleet, cfg)
}

struct MemStoreFleet {
    ids: Vec<String>,
    nodes: Vec<Option<StoreNode>>,
    dirs: Vec<TempDir>,
    net: Arc<MemNetwork>,
}

impl MemStoreFleet {
    fn open(&self, idx: usize) -> io::Result<StoreNode> {
        StoreNode::open(
            StoreNodeConfig::new(&self.ids[idx]),
            self.dirs[idx].path(),
            self.net.clone(),
        )
        .map_err(|e| io::Error::other(format!("reopen {}: {e:?}", self.ids[idx])))
    }
}

impl StoreFleet for MemStoreFleet {
    fn ids(&self) -> &[String] {
        &self.ids
    }

    fn endpoint(&self, idx: usize) -> String {
        format!("mem://{}", self.ids[idx])
    }

    fn transport(&self) -> Arc<dyn Transport> {
        self.net.clone()
    }

    fn kill(&mut self, idx: usize) {
        // As close to kill -9 as one process allows: unhost (the
        // router's clone drops) and drop our handle without any
        // graceful shutdown or compaction. Acknowledged writes are
        // already on disk by the WAL's ack contract.
        self.net.unhost(&self.ids[idx]);
        self.nodes[idx] = None;
    }

    fn restart(&mut self, idx: usize) -> io::Result<()> {
        let node = self.open(idx)?;
        self.net.host(&self.ids[idx], node.router());
        self.nodes[idx] = Some(node);
        Ok(())
    }
}

/// The store-primary kill campaign on the in-memory transport: the
/// "crash" drops the node without compaction or shutdown and reopens
/// its WAL directory. Same invariants as [`run_tcp_store_kill`].
pub fn run_mem_store_kill(cfg: &StoreKillConfig) -> io::Result<StoreKillReport> {
    let net = Arc::new(MemNetwork::new());
    let dirs: Vec<TempDir> =
        (0..cfg.nodes).map(|i| TempDir::new(&format!("mem-kill-store-{i}"))).collect();
    let ids: Vec<String> = (0..cfg.nodes).map(|i| format!("mstore-{i}")).collect();
    let mut fleet = MemStoreFleet { ids, nodes: Vec::new(), dirs, net };
    for i in 0..cfg.nodes {
        let node = fleet.open(i)?;
        fleet.net.host(&fleet.ids[i], node.router());
        fleet.nodes.push(Some(node));
    }
    drive_store_kill(&mut fleet, cfg)
}

// ---------------------------------------------------------------------------
// Coordinator kill campaigns
// ---------------------------------------------------------------------------

/// Knobs for a saga-coordinator kill campaign.
#[derive(Debug, Clone)]
pub struct CoordKillConfig {
    /// Seeds idempotency keys and application bodies.
    pub seed: u64,
    /// Sagas the campaign runs.
    pub runs: usize,
    /// Run during which the coordinator is killed.
    pub kill_run: usize,
    /// How the restarted coordinator settles open sagas.
    pub mode: RecoveryMode,
    /// How long the finalize step stalls — the width of the kill
    /// window between the journalled `apply` and the saga's `end`.
    pub finalize_delay: Duration,
    /// Delay between the victim announcing the kill run and SIGKILL.
    pub kill_delay: Duration,
}

impl Default for CoordKillConfig {
    fn default() -> CoordKillConfig {
        CoordKillConfig {
            seed: 7,
            runs: 6,
            kill_run: 3,
            mode: RecoveryMode::Resume,
            finalize_delay: Duration::from_millis(150),
            kill_delay: Duration::from_millis(50),
        }
    }
}

/// Ledger + journal audit after both coordinator lives.
#[derive(Debug)]
pub struct CoordKillReport {
    /// The campaign that produced this report.
    pub cfg_runs: usize,
    /// The killed run's idempotency key.
    pub kill_key: String,
    /// Recovery mode the second life used.
    pub mode: RecoveryMode,
    /// `(key, executions, cancellations)` for every ledger entry.
    pub entries: Vec<(String, u64, u64)>,
    /// Expected keys with no ledger entry at all.
    pub missing: Vec<String>,
    /// Worst duplication factor across application bodies.
    pub max_per_content: u64,
    /// Cancels addressed at ids the ledger never saw.
    pub orphan_cancels: u64,
    /// Submissions that arrived without an idempotency key.
    pub keyless: u64,
    /// Reservation tombstones no submission ever claimed.
    pub pending_tombstones: u64,
    /// Open sagas left in the journal after the second life.
    pub incomplete_after: Vec<String>,
    /// `SETTLED ...` lines the second life reported.
    pub settled: Vec<String>,
    /// Whether the second life exited cleanly.
    pub clean_exit: bool,
}

impl CoordKillReport {
    /// Invariant violations; empty means the campaign passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.clean_exit {
            v.push("restarted coordinator did not exit cleanly".to_string());
        }
        if !self.incomplete_after.is_empty() {
            v.push(format!("sagas left open after recovery: {:?}", self.incomplete_after));
        }
        if self.max_per_content > 1 {
            v.push(format!(
                "an application decided {} times (duplicate execution)",
                self.max_per_content
            ));
        }
        if self.orphan_cancels > 0 {
            v.push(format!("{} cancels hit unknown applications", self.orphan_cancels));
        }
        if self.keyless > 0 {
            v.push(format!("{} submissions arrived keyless", self.keyless));
        }
        for (key, execs, cancels) in &self.entries {
            if *execs != 1 {
                v.push(format!("{key} executed {execs} times"));
            }
            let is_kill = *key == self.kill_key;
            if *cancels > 0 && !(is_kill && self.mode == RecoveryMode::Compensate) {
                v.push(format!("{key} was cancelled unexpectedly"));
            }
        }
        match self.mode {
            RecoveryMode::Resume => {
                // Every run must have landed exactly once.
                if !self.missing.is_empty() {
                    v.push(format!("applications never landed: {:?}", self.missing));
                }
            }
            RecoveryMode::Compensate => {
                // Only the killed run may be missing, and only if its
                // reservation was tombstoned before it ever landed.
                for key in &self.missing {
                    if *key != self.kill_key {
                        v.push(format!("application {key} never landed"));
                    } else if self.pending_tombstones == 0 {
                        v.push(format!("{key} missing without a reservation tombstone"));
                    }
                }
            }
        }
        v
    }
}

fn audit_coordinator(
    cfg: &CoordKillConfig,
    ledger: &SubmissionLedger,
    incomplete_after: Vec<String>,
    settled: Vec<String>,
    clean_exit: bool,
) -> CoordKillReport {
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for run in 0..cfg.runs {
        let key = application_key(cfg.seed, run);
        match ledger.entry(&key) {
            Some(e) => entries.push((key, e.executions, e.cancellations)),
            None => missing.push(key),
        }
    }
    CoordKillReport {
        cfg_runs: cfg.runs,
        kill_key: application_key(cfg.seed, cfg.kill_run),
        mode: cfg.mode,
        entries,
        missing,
        max_per_content: ledger.max_executions_per_content(),
        orphan_cancels: ledger.orphan_cancels(),
        keyless: ledger.keyless_submissions(),
        pending_tombstones: ledger.pending_tombstones(),
        incomplete_after,
        settled,
        clean_exit,
    }
}

/// Kill -9 a durable saga coordinator mid-run over real sockets. The
/// parent hosts the mortgage service (shared ledger) and a slow
/// finalize service; the `victim` binary is the coordinator. It dies
/// inside the kill run's finalize window, restarts against the same
/// journal directory, settles the open saga per [`RecoveryMode`], and
/// finishes the campaign — after which the ledger must show every
/// application decided at most once and the journal no open sagas.
pub fn run_tcp_coordinator_kill(
    victim_exe: &str,
    cfg: &CoordKillConfig,
) -> io::Result<CoordKillReport> {
    let ledger = Arc::new(SubmissionLedger::new());
    let mortgage =
        HttpServer::bind("127.0.0.1:0", 4, ServiceHost::with_ledger(cfg.seed, ledger.clone()))
            .map_err(|e| io::Error::other(format!("bind mortgage host: {e:?}")))?;
    let delay = cfg.finalize_delay;
    let finalize = HttpServer::bind("127.0.0.1:0", 4, move |req: Request| {
        if req.path() == "/finalize" {
            std::thread::sleep(delay);
            Response::json(&json!({ "finalized": true }).to_compact())
        } else {
            Response::error(Status::NOT_FOUND, "unknown route")
        }
    })
    .map_err(|e| io::Error::other(format!("bind finalize host: {e:?}")))?;

    let journal_dir = TempDir::new("kill-saga");
    let args = vec![
        "coordinator".to_string(),
        journal_dir.path().display().to_string(),
        mortgage.url(),
        finalize.url(),
        cfg.seed.to_string(),
        cfg.runs.to_string(),
        "0".to_string(),
        cfg.mode.as_str().to_string(),
    ];

    // First life: wait for the kill run to start, give its apply time
    // to land and journal, then SIGKILL mid-finalize.
    let mut victim = Victim::spawn(victim_exe, &args)?;
    let needle = format!("RUN {}", cfg.kill_run);
    loop {
        match victim.next_line()? {
            Some(line) if line == needle => {
                std::thread::sleep(cfg.kill_delay);
                victim.kill9();
                break;
            }
            Some(_) => {}
            None => break,
        }
    }

    // Second life: same arguments, same journal directory. It settles
    // the open saga, re-walks the campaign (replays dedupe), and exits.
    victim.restart()?;
    let mut settled = Vec::new();
    let clean_exit = loop {
        match victim.next_line()? {
            Some(line) if line.starts_with("SETTLED") => settled.push(line),
            Some(line) if line == "DONE" => break victim.wait_success()?,
            Some(_) => {}
            None => break false,
        }
    };
    drop(victim);

    let journal = SagaJournal::open(journal_dir.path(), WalConfig::default())
        .map_err(|e| io::Error::other(format!("reopen journal: {e:?}")))?;
    Ok(audit_coordinator(cfg, &ledger, journal.incomplete(), settled, clean_exit))
}

/// The coordinator kill campaign on the in-memory transport. The
/// "crash" is a panic planted in the kill run's finalize step: the
/// saga unwinds past its `end` event (journalled completions stay),
/// the journal handle is dropped cold, and a second life reopens the
/// directory to settle and finish. Same invariants as
/// [`run_tcp_coordinator_kill`].
pub fn run_mem_coordinator_kill(cfg: &CoordKillConfig) -> io::Result<CoordKillReport> {
    let net = Arc::new(MemNetwork::new());
    let ledger = Arc::new(SubmissionLedger::new());
    net.host("services", ServiceHost::with_ledger(cfg.seed, ledger.clone()));
    let transport: Arc<dyn Transport> = net.clone();
    let base = "mem://services";
    let journal_dir = TempDir::new("mem-kill-saga");
    let saga_cfg = SagaConfig::default();

    let healthy_finalize = || Compute::new(&["decision"], |_| Ok(Value::from(true)));

    // First life: runs until the planted panic "kills" the process.
    let crashed = {
        let journal = SagaJournal::open(journal_dir.path(), WalConfig::default())
            .map_err(|e| io::Error::other(format!("open journal: {e:?}")))?;
        let mut died = false;
        for run in 0..cfg.runs {
            let lethal = run == cfg.kill_run;
            let fin = Compute::new(&["decision"], move |_| {
                if lethal {
                    panic!("simulated kill -9: finalize never returns");
                }
                Ok(Value::from(true))
            });
            let g = mortgage_saga(
                &transport,
                base,
                &application_key(cfg.seed, run),
                application_body(cfg.seed, run),
                fin,
            );
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g.run_saga_durable(&journal, &format!("saga-{run}"), &HashMap::new(), &saga_cfg)
            }));
            std::panic::set_hook(hook);
            match result {
                Ok(outcome) => {
                    outcome.map_err(|e| io::Error::other(format!("saga run {run}: {e:?}")))?;
                }
                Err(_) => {
                    died = true;
                    break;
                }
            }
        }
        died
    };

    // Second life: reopen, settle, finish. Re-walking earlier runs is
    // deliberate — their keyed applies must dedupe, not duplicate.
    let journal = SagaJournal::open(journal_dir.path(), WalConfig::default())
        .map_err(|e| io::Error::other(format!("reopen journal: {e:?}")))?;
    let mut settled = Vec::new();
    let mut settled_ids = HashSet::new();
    for saga_id in journal.incomplete() {
        let run: usize = saga_id.strip_prefix("saga-").and_then(|s| s.parse().ok()).unwrap_or(0);
        let g = mortgage_saga(
            &transport,
            base,
            &application_key(cfg.seed, run),
            application_body(cfg.seed, run),
            healthy_finalize(),
        );
        match cfg.mode {
            RecoveryMode::Resume => {
                g.resume_saga(&journal, &saga_id, &HashMap::new(), &saga_cfg)
                    .map_err(|e| io::Error::other(format!("resume {saga_id}: {e:?}")))?;
                settled.push(format!("SETTLED {saga_id} resumed"));
            }
            RecoveryMode::Compensate => {
                let (_, errors) = g.compensate_saga(&journal, &saga_id);
                if !errors.is_empty() {
                    return Err(io::Error::other(format!("compensate {saga_id}: {errors:?}")));
                }
                settled.push(format!("SETTLED {saga_id} compensated"));
            }
        }
        settled_ids.insert(saga_id);
    }
    for run in 0..cfg.runs {
        let saga_id = format!("saga-{run}");
        if settled_ids.contains(&saga_id) {
            continue;
        }
        let g = mortgage_saga(
            &transport,
            base,
            &application_key(cfg.seed, run),
            application_body(cfg.seed, run),
            healthy_finalize(),
        );
        g.run_saga_durable(&journal, &saga_id, &HashMap::new(), &saga_cfg)
            .map_err(|e| io::Error::other(format!("rerun {saga_id}: {e:?}")))?;
    }

    let incomplete = journal.incomplete();
    let mut report = audit_coordinator(cfg, &ledger, incomplete, settled, true);
    if !crashed {
        report.clean_exit = false; // the kill never landed: campaign invalid
    }
    Ok(report)
}
