/root/repo/target/release/examples/_verify_tcp_probe-d070ec3861c34537.d: examples/_verify_tcp_probe.rs

/root/repo/target/release/examples/_verify_tcp_probe-d070ec3861c34537: examples/_verify_tcp_probe.rs

examples/_verify_tcp_probe.rs:
