//! CRUD resources: implement [`Resource`], get REST conventions free.
//!
//! `mount` wires the standard five routes:
//!
//! | Route | Method | Resource call |
//! |---|---|---|
//! | `/{base}` | GET | `list` |
//! | `/{base}` | POST | `create` |
//! | `/{base}/{id}` | GET | `get` |
//! | `/{base}/{id}` | PUT | `update` |
//! | `/{base}/{id}` | DELETE | `delete` |

use std::sync::Arc;

use soc_http::{Request, Response, Status};
use soc_json::Value;

use crate::negotiate::render;
use crate::router::Router;

/// Outcome of a resource operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Success with a JSON body.
    Ok(Value),
    /// Resource created (201) with its JSON representation.
    Created(Value),
    /// Success with no body (204).
    NoContent,
    /// No such id (404).
    NotFound,
    /// The request body was unacceptable (422 with a message).
    Invalid(String),
    /// State conflict, e.g. duplicate id (409 with a message).
    Conflict(String),
}

/// A JSON-typed CRUD resource.
pub trait Resource: Send + Sync + 'static {
    /// All items.
    fn list(&self) -> Outcome;
    /// One item by id.
    fn get(&self, id: &str) -> Outcome;
    /// Create from a JSON document.
    fn create(&self, body: Value) -> Outcome;
    /// Replace the item with `id`.
    fn update(&self, id: &str, body: Value) -> Outcome;
    /// Delete the item with `id`.
    fn delete(&self, id: &str) -> Outcome;
}

fn respond(req: &Request, root: &str, outcome: Outcome) -> Response {
    match outcome {
        Outcome::Ok(v) => render(req, root, &v),
        Outcome::Created(v) => {
            let mut resp = render(req, root, &v);
            resp.status = Status::CREATED;
            resp
        }
        Outcome::NoContent => Response::new(Status::NO_CONTENT),
        Outcome::NotFound => Response::error(Status::NOT_FOUND, "no such resource"),
        Outcome::Invalid(msg) => Response::error(Status::UNPROCESSABLE, &msg),
        Outcome::Conflict(msg) => Response::error(Status::CONFLICT, &msg),
    }
}

fn parse_body(req: &Request) -> Result<Value, Response> {
    let text = req.text().map_err(|_| Response::error(Status::BAD_REQUEST, "body is not UTF-8"))?;
    Value::parse(text).map_err(|e| Response::error(Status::BAD_REQUEST, &e.to_string()))
}

/// Mount `resource` under `/{base}` on `router`.
pub fn mount(router: &mut Router, base: &str, resource: Arc<dyn Resource>) {
    let base = base.trim_matches('/').to_string();
    let root = base.trim_end_matches('s').to_string();
    let collection = format!("/{base}");
    let item = format!("/{base}/{{id}}");

    {
        let (r, root) = (resource.clone(), root.clone());
        router.get(&collection, move |req, _p| respond(&req, &format!("{root}s"), r.list()));
    }
    {
        let (r, root) = (resource.clone(), root.clone());
        router.post(&collection, move |req, _p| match parse_body(&req) {
            Ok(v) => respond(&req, &root, r.create(v)),
            Err(resp) => resp,
        });
    }
    {
        let (r, root) = (resource.clone(), root.clone());
        router.get(&item, move |req, p| respond(&req, &root, r.get(p.get("id").unwrap_or(""))));
    }
    {
        let (r, root) = (resource.clone(), root.clone());
        router.put(&item, move |req, p| match parse_body(&req) {
            Ok(v) => respond(&req, &root, r.update(p.get("id").unwrap_or(""), v)),
            Err(resp) => resp,
        });
    }
    {
        let r = resource;
        router
            .delete(&item, move |req, p| respond(&req, &root, r.delete(p.get("id").unwrap_or(""))));
    }
}

/// A thread-safe in-memory resource keyed by an `id` member — the
/// default backing store for examples and tests.
pub struct MemoryResource {
    items: parking_lot::RwLock<Vec<(String, Value)>>,
    /// Which JSON member is the id.
    id_field: String,
}

impl MemoryResource {
    /// Empty store using `id_field` as the key member.
    pub fn new(id_field: &str) -> Self {
        MemoryResource {
            items: parking_lot::RwLock::new(Vec::new()),
            id_field: id_field.to_string(),
        }
    }

    fn id_of(&self, v: &Value) -> Option<String> {
        v.get(&self.id_field).and_then(Value::as_str).map(str::to_string)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.read().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Resource for MemoryResource {
    fn list(&self) -> Outcome {
        Outcome::Ok(Value::Array(self.items.read().iter().map(|(_, v)| v.clone()).collect()))
    }

    fn get(&self, id: &str) -> Outcome {
        match self.items.read().iter().find(|(k, _)| k == id) {
            Some((_, v)) => Outcome::Ok(v.clone()),
            None => Outcome::NotFound,
        }
    }

    fn create(&self, body: Value) -> Outcome {
        let Some(id) = self.id_of(&body) else {
            return Outcome::Invalid(format!("missing string member {:?}", self.id_field));
        };
        let mut items = self.items.write();
        if items.iter().any(|(k, _)| *k == id) {
            return Outcome::Conflict(format!("id {id:?} already exists"));
        }
        items.push((id, body.clone()));
        Outcome::Created(body)
    }

    fn update(&self, id: &str, body: Value) -> Outcome {
        if self.id_of(&body).is_some_and(|body_id| body_id != id) {
            return Outcome::Invalid("body id does not match path id".into());
        }
        let mut items = self.items.write();
        match items.iter_mut().find(|(k, _)| k == id) {
            Some(slot) => {
                slot.1 = body.clone();
                Outcome::Ok(body)
            }
            None => Outcome::NotFound,
        }
    }

    fn delete(&self, id: &str) -> Outcome {
        let mut items = self.items.write();
        let before = items.len();
        items.retain(|(k, _)| k != id);
        if items.len() == before {
            Outcome::NotFound
        } else {
            Outcome::NoContent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::{Handler, Method};
    use soc_json::json;

    fn app() -> (Router, Arc<MemoryResource>) {
        let mut router = Router::new();
        let store = Arc::new(MemoryResource::new("id"));
        mount(&mut router, "services", store.clone());
        (router, store)
    }

    fn post(router: &Router, path: &str, body: &Value) -> Response {
        router.handle(
            Request::new(Method::Post, path).with_text("application/json", &body.to_compact()),
        )
    }

    #[test]
    fn full_crud_lifecycle() {
        let (router, store) = app();
        // Create.
        let resp = post(&router, "/services", &json!({ "id": "echo", "cost": 0 }));
        assert_eq!(resp.status, Status::CREATED);
        assert_eq!(store.len(), 1);
        // Read.
        let resp = router.handle(Request::get("/services/echo"));
        assert_eq!(resp.status, Status::OK);
        let v = Value::parse(resp.text_body().unwrap()).unwrap();
        assert_eq!(v.get("cost").and_then(Value::as_i64), Some(0));
        // List.
        let resp = router.handle(Request::get("/services"));
        let list = Value::parse(resp.text_body().unwrap()).unwrap();
        assert_eq!(list.as_array().unwrap().len(), 1);
        // Update.
        let resp = router.handle(
            Request::new(Method::Put, "/services/echo")
                .with_text("application/json", &json!({ "id": "echo", "cost": 5 }).to_compact()),
        );
        assert_eq!(resp.status, Status::OK);
        // Delete.
        let resp = router.handle(Request::delete("/services/echo"));
        assert_eq!(resp.status, Status::NO_CONTENT);
        assert_eq!(router.handle(Request::get("/services/echo")).status, Status::NOT_FOUND);
    }

    #[test]
    fn duplicate_create_conflicts() {
        let (router, _) = app();
        post(&router, "/services", &json!({ "id": "x" }));
        let resp = post(&router, "/services", &json!({ "id": "x" }));
        assert_eq!(resp.status, Status::CONFLICT);
    }

    #[test]
    fn create_without_id_is_invalid() {
        let (router, _) = app();
        let resp = post(&router, "/services", &json!({ "cost": 1 }));
        assert_eq!(resp.status, Status::UNPROCESSABLE);
    }

    #[test]
    fn malformed_json_is_bad_request() {
        let (router, _) = app();
        let resp = router
            .handle(Request::new(Method::Post, "/services").with_text("application/json", "{nope"));
        assert_eq!(resp.status, Status::BAD_REQUEST);
    }

    #[test]
    fn update_id_mismatch_rejected() {
        let (router, _) = app();
        post(&router, "/services", &json!({ "id": "a" }));
        let resp = router.handle(
            Request::new(Method::Put, "/services/a")
                .with_text("application/json", &json!({ "id": "b" }).to_compact()),
        );
        assert_eq!(resp.status, Status::UNPROCESSABLE);
    }

    #[test]
    fn xml_negotiated_list() {
        let (router, _) = app();
        post(&router, "/services", &json!({ "id": "e" }));
        let resp = router.handle(Request::get("/services").with_header("Accept", "text/xml"));
        assert!(resp.text_body().unwrap().starts_with("<services>"));
    }

    #[test]
    fn delete_missing_is_404() {
        let (router, _) = app();
        assert_eq!(router.handle(Request::delete("/services/zzz")).status, Status::NOT_FOUND);
    }
}
