/root/repo/target/debug/deps/soc-b431456864b95ab3.d: src/lib.rs

/root/repo/target/debug/deps/libsoc-b431456864b95ab3.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoc-b431456864b95ab3.rmeta: src/lib.rs

src/lib.rs:
