//! The JSON value model.

use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer that fits in `i64`.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// As `f64` (always possible).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// As `i64` when exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document or fragment.
///
/// Objects preserve insertion order (a `Vec` of pairs), which keeps
/// serialization deterministic — important for tests and for HTTP
/// response caching.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered key → value map (later duplicates win on lookup).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse from text (see [`crate::parse`]).
    pub fn parse(input: &str) -> crate::JsonResult<Value> {
        crate::parse::parse(input)
    }

    /// `true` when `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as `&str` when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `i64` when a number that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` when a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow the array items.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (last duplicate wins, per common practice).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array index lookup.
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_array()?.get(index)
    }

    /// JSON Pointer lookup (see [`crate::pointer`]).
    pub fn pointer(&self, ptr: &str) -> Option<&Value> {
        crate::pointer::lookup(self, ptr)
    }

    /// Insert or replace a member on an object. Panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        match self {
            Value::Object(o) => {
                if let Some(slot) = o.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value.into();
                } else {
                    o.push((key, value.into()));
                }
            }
            _ => panic!("set() on a non-object JSON value"),
        }
    }

    /// An empty object, ready for [`Value::set`].
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Serialize compactly.
    pub fn to_compact(&self) -> String {
        crate::ser::to_string(self, false)
    }

    /// Append the compact serialization to `out`, reusing the caller's
    /// buffer (see [`crate::ser::write_into`]).
    pub fn write_into(&self, out: &mut String) {
        crate::ser::write_into(self, out)
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty(&self) -> String {
        crate::ser::to_string(self, true)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Number(Number::Int(i as i64))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::Int(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Number(Number::Int(i as i64))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Number(Number::Int(i as i64))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1)),
            ("b".into(), Value::from("x")),
            ("c".into(), Value::from(vec![1, 2])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(|c| c.at(1)).and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("zzz"), None);
    }

    #[test]
    fn set_inserts_and_replaces() {
        let mut v = Value::object();
        v.set("k", 1);
        v.set("k", 2);
        v.set("l", "x");
        assert_eq!(v.get("k").and_then(Value::as_i64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn number_exactness() {
        assert_eq!(Number::Int(7).as_i64(), Some(7));
        assert_eq!(Number::Float(7.0).as_i64(), Some(7));
        assert_eq!(Number::Float(7.5).as_i64(), None);
        assert_eq!(Number::Int(7), Number::Float(7.0));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(Some(3)), Value::from(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(vec!["a", "b"]).at(0).and_then(Value::as_str), Some("a"));
    }

    #[test]
    fn duplicate_keys_last_wins_on_lookup() {
        let v = Value::Object(vec![("k".into(), Value::from(1)), ("k".into(), Value::from(2))]);
        assert_eq!(v.get("k").and_then(Value::as_i64), Some(2));
    }
}
