//! A blocking HTTP client over TCP, with keep-alive connection pooling.
//!
//! Connections are pooled per `host:port`: after a clean exchange whose
//! framing allows reuse, the connection is parked in a bounded idle
//! pool instead of closed, and the next request to the same authority
//! skips the TCP handshake. Clones share one pool, so a gateway holding
//! an `Arc<HttpClient>` stops paying a connect per attempt/hedge. Idle
//! connections are evicted after [`PoolConfig::idle_timeout`]; a
//! connection that fails mid-exchange is retired, and if it failed
//! before any response byte arrived the request is retried on a fresh
//! connection (the server may have reaped the idle socket between our
//! checkout and our write — that race is inherent to keep-alive reuse).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::codec::{self, DEFAULT_BODY_LIMIT};
use crate::types::{HttpError, HttpResult, Request, Response, Version};
use crate::url::Url;

/// Connection-pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Idle connections retained per `host:port`.
    pub max_idle_per_host: usize,
    /// How long a parked connection stays eligible for reuse.
    pub idle_timeout: Duration,
    /// Disable to restore one-connection-per-request behaviour (each
    /// request then carries `Connection: close`).
    pub enabled: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { max_idle_per_host: 8, idle_timeout: Duration::from_secs(15), enabled: true }
    }
}

/// A snapshot of the pool's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientPoolStats {
    /// Fresh TCP connections opened.
    pub opened: u64,
    /// Requests served over a reused pooled connection.
    pub reused: u64,
    /// Pooled connections retired on error (stale reuse, poisoned
    /// socket) — idle-timeout evictions are not errors and not counted.
    pub retired: u64,
}

struct IdleConn {
    reader: BufReader<TcpStream>,
    parked_at: Instant,
}

struct Pool {
    cfg: PoolConfig,
    idle: Mutex<HashMap<String, Vec<IdleConn>>>,
    opened: AtomicU64,
    reused: AtomicU64,
    retired: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("cfg", &self.cfg)
            .field("opened", &self.opened)
            .field("reused", &self.reused)
            .field("retired", &self.retired)
            .finish()
    }
}

impl Pool {
    fn new(cfg: PoolConfig) -> Pool {
        Pool {
            cfg,
            idle: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            retired: AtomicU64::new(0),
        }
    }

    /// Take the freshest healthy idle connection for `key`, evicting
    /// expired or visibly-dead ones along the way.
    fn checkout(&self, key: &str) -> Option<BufReader<TcpStream>> {
        let mut idle = self.idle.lock();
        let list = idle.get_mut(key)?;
        while let Some(conn) = list.pop() {
            if conn.parked_at.elapsed() > self.cfg.idle_timeout {
                continue; // expired; dropping closes the socket
            }
            if let Some(reader) = probe_alive(conn.reader) {
                return Some(reader);
            }
            // Dead or poisoned while parked: not an error, just gone.
        }
        None
    }

    /// Park a connection for reuse, bounding the per-host idle list
    /// (the oldest connection is dropped when full).
    fn park(&self, key: &str, reader: BufReader<TcpStream>) {
        let mut idle = self.idle.lock();
        let list = idle.entry(key.to_string()).or_default();
        if list.len() >= self.cfg.max_idle_per_host.max(1) {
            list.remove(0);
        }
        list.push(IdleConn { reader, parked_at: Instant::now() });
    }
}

/// Cheap liveness probe on a parked connection: a nonblocking read that
/// yields `WouldBlock` means the socket is open with nothing buffered —
/// exactly the state a reusable keep-alive connection must be in. EOF
/// means the server closed it while parked; actual bytes mean a
/// desynchronized (poisoned) connection. Both are discarded.
fn probe_alive(mut reader: BufReader<TcpStream>) -> Option<BufReader<TcpStream>> {
    if !reader.buffer().is_empty() {
        return None;
    }
    let stream = reader.get_mut();
    if stream.set_nonblocking(true).is_err() {
        return None;
    }
    let mut probe = [0u8; 1];
    let verdict =
        matches!(stream.read(&mut probe), Err(e) if e.kind() == std::io::ErrorKind::WouldBlock);
    if stream.set_nonblocking(false).is_err() {
        return None;
    }
    verdict.then_some(reader)
}

/// A blocking client with per-authority keep-alive pooling. The
/// request's `target` must be an absolute `http://` URL; the client
/// rewrites it to origin-form on the wire. Clones share the pool.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
    body_limit: usize,
    pool: Arc<Pool>,
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one wire exchange: the response plus the connection if
/// it is still reusable.
type ExchangeOk = (Response, Option<BufReader<TcpStream>>);

impl HttpClient {
    /// Client with a 30 s timeout and default pooling.
    pub fn new() -> Self {
        HttpClient {
            timeout: Duration::from_secs(30),
            body_limit: DEFAULT_BODY_LIMIT,
            pool: Arc::new(Pool::new(PoolConfig::default())),
        }
    }

    /// Client with an explicit connect/read/write timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        HttpClient {
            timeout,
            body_limit: DEFAULT_BODY_LIMIT,
            pool: Arc::new(Pool::new(PoolConfig::default())),
        }
    }

    /// Cap the accepted response body size.
    pub fn with_body_limit(mut self, limit: usize) -> Self {
        self.body_limit = limit;
        self
    }

    /// Replace the pool configuration (fresh, empty pool).
    pub fn with_pool(mut self, cfg: PoolConfig) -> Self {
        self.pool = Arc::new(Pool::new(cfg));
        self
    }

    /// Lifetime pool counters (shared across clones).
    pub fn pool_stats(&self) -> ClientPoolStats {
        ClientPoolStats {
            opened: self.pool.opened.load(Ordering::Relaxed),
            reused: self.pool.reused.load(Ordering::Relaxed),
            retired: self.pool.retired.load(Ordering::Relaxed),
        }
    }

    /// Send `req` and wait for the response.
    pub fn send(&self, req: Request) -> HttpResult<Response> {
        self.dispatch(req, None)
    }

    /// Send `req`, giving up once `deadline` passes.
    ///
    /// The deadline is a whole-request budget, distinct from the
    /// client's socket timeout: the socket timeout bounds each blocking
    /// read/write, while the deadline bounds connect + write + read
    /// end to end. Per-socket-operation waits are capped at whatever
    /// remains of the budget, so a slow-dripping peer cannot stretch a
    /// 100 ms deadline into repeated 30 s socket waits. An expired
    /// budget yields [`HttpError::DeadlineExceeded`].
    pub fn send_with_deadline(&self, req: Request, deadline: Instant) -> HttpResult<Response> {
        self.dispatch(req, Some(deadline))
    }

    /// Remaining budget, or the socket timeout when no deadline is set.
    /// Zero remaining means the request is already too late.
    fn op_timeout(&self, deadline: Option<Instant>) -> HttpResult<Duration> {
        match deadline {
            None => Ok(self.timeout),
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    Err(HttpError::DeadlineExceeded)
                } else {
                    Ok(left.min(self.timeout))
                }
            }
        }
    }

    fn dispatch(&self, req: Request, deadline: Option<Instant>) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        if url.scheme != "http" {
            return Err(HttpError::BadUrl(format!(
                "HttpClient only speaks http://, got {}",
                url.scheme
            )));
        }
        let key = format!("{}:{}", url.host, url.port);
        loop {
            // Fail fast once the budget is gone, including between
            // retry rounds.
            self.op_timeout(deadline)?;
            let (reader, reused) = match self.pool.cfg.enabled.then(|| self.pool.checkout(&key)) {
                Some(Some(reader)) => (reader, true),
                _ => {
                    let stream = self.connect(&url, deadline)?;
                    self.pool.opened.fetch_add(1, Ordering::Relaxed);
                    (BufReader::new(stream), false)
                }
            };
            match self.exchange(reader, &req, &url, deadline) {
                Ok((resp, keep)) => {
                    if reused {
                        self.pool.reused.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(reader) = keep {
                        self.pool.park(&key, reader);
                    }
                    return Ok(resp);
                }
                Err((e, before_response)) => {
                    if reused {
                        self.pool.retired.fetch_add(1, Ordering::Relaxed);
                    }
                    // Safe retry: only on a *reused* connection that
                    // failed before the server said anything — the
                    // idle socket raced the server's reaper, and the
                    // request provably never reached a handler's
                    // response path. Deadline errors are terminal.
                    let retryable = reused && before_response && e != HttpError::DeadlineExceeded;
                    if retryable {
                        continue;
                    }
                    // A read failure after the budget ran out is the
                    // deadline's fault, not the peer's.
                    return match deadline {
                        Some(d) if Instant::now() >= d => Err(HttpError::DeadlineExceeded),
                        _ => Err(e),
                    };
                }
            }
        }
    }

    /// Open a fresh TCP connection. With no deadline, `TcpStream::
    /// connect` already walks every resolved address. Under a deadline,
    /// `connect_timeout` needs explicit addresses — and must try each
    /// of them within the remaining budget, not just the first: a host
    /// resolving IPv6-first would otherwise never reach an IPv4-only
    /// listener.
    fn connect(&self, url: &Url, deadline: Option<Instant>) -> HttpResult<TcpStream> {
        let addr = (url.host.as_str(), url.port);
        let map_connect_err = |e: std::io::Error| {
            if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
                HttpError::DeadlineExceeded
            } else {
                HttpError::Io(e.to_string())
            }
        };
        if deadline.is_none() {
            return TcpStream::connect(addr).map_err(|e| HttpError::Io(e.to_string()));
        }
        let addrs: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(&addr)
            .map_err(|e| HttpError::Io(e.to_string()))?
            .collect();
        if addrs.is_empty() {
            return Err(HttpError::BadUrl(format!("unresolvable host: {}", url.host)));
        }
        let mut last = None;
        for a in &addrs {
            let budget = match self.op_timeout(deadline) {
                Ok(b) => b,
                Err(e) => return Err(last.unwrap_or(e)),
            };
            match TcpStream::connect_timeout(a, budget) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(map_connect_err(e)),
            }
        }
        Err(last.expect("at least one address was tried"))
    }

    /// One request/response over an established connection. Errors
    /// carry whether they happened before any response byte arrived
    /// (the precondition for a safe retry on a reused connection).
    fn exchange(
        &self,
        mut reader: BufReader<TcpStream>,
        req: &Request,
        url: &Url,
        deadline: Option<Instant>,
    ) -> Result<ExchangeOk, (HttpError, bool)> {
        let pre = |e: HttpError| (e, true);
        let post = |e: HttpError| (e, false);

        {
            let stream = reader.get_ref();
            stream.set_read_timeout(Some(self.op_timeout(deadline).map_err(pre)?)).ok();
            stream.set_write_timeout(Some(self.op_timeout(deadline).map_err(pre)?)).ok();
            stream.set_nodelay(true).ok();
        }

        let mut wire_req = req.clone();
        wire_req.target = url.path_and_query();
        // Propagate the thread's active trace context across the hop.
        crate::observe::inject_traceparent(&mut wire_req.headers);
        // With pooling disabled this is a one-shot connection: tell the
        // server not to wait for more. Pooled connections stay on the
        // HTTP/1.1 persistent default.
        if !self.pool.cfg.enabled && !wire_req.headers.contains("Connection") {
            wire_req.headers.set("Connection", "close");
        }
        let mut writer =
            reader.get_ref().try_clone().map_err(|e| pre(HttpError::Io(e.to_string())))?;
        codec::write_request(&mut writer, &wire_req, Some(&url.authority())).map_err(pre)?;
        // Re-arm the read timeout with whatever budget the write left.
        reader.get_ref().set_read_timeout(Some(self.op_timeout(deadline).map_err(pre)?)).ok();
        // Peek before parsing: an EOF or error *here* means the server
        // never started a response (stale pooled connection, reaped
        // idle socket) — retry-safe. Once bytes exist, failures are
        // real protocol or transfer errors.
        match reader.fill_buf() {
            Ok([]) => return Err(pre(HttpError::UnexpectedEof)),
            Ok(_) => {}
            Err(e) => return Err(pre(HttpError::Io(e.to_string()))),
        }
        let (resp, version) =
            codec::read_response_versioned(&mut reader, self.body_limit).map_err(post)?;

        // Reuse only when both sides allow it and the response framing
        // was explicit (a length-less EOF-delimited body can't share a
        // connection).
        let resp_closes = resp.headers.has_token("Connection", "close")
            || (version == Version::Http10 && !resp.headers.has_token("Connection", "keep-alive"));
        let req_closes = wire_req.headers.has_token("Connection", "close");
        let self_delimited = resp.headers.contains("Content-Length")
            || resp
                .headers
                .get("Transfer-Encoding")
                .is_some_and(|te| te.eq_ignore_ascii_case("chunked"));
        let keep = self.pool.cfg.enabled && !resp_closes && !req_closes && self_delimited;
        Ok((resp, keep.then_some(reader)))
    }

    /// GET an absolute URL.
    pub fn get(&self, url: &str) -> HttpResult<Response> {
        self.send(Request::get(url))
    }

    /// POST text with a content type.
    pub fn post(&self, url: &str, content_type: &str, body: &str) -> HttpResult<Response> {
        self.send(Request::post(url, Vec::new()).with_text(content_type, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_http_urls() {
        let c = HttpClient::new();
        assert!(matches!(c.get("mem://x/"), Err(HttpError::BadUrl(_))));
        assert!(matches!(c.get("not a url"), Err(HttpError::BadUrl(_))));
    }

    #[test]
    fn connection_refused_is_io_error() {
        let c = HttpClient::with_timeout(Duration::from_millis(300));
        // Port 1 on localhost is essentially never listening.
        assert!(matches!(c.get("http://127.0.0.1:1/"), Err(HttpError::Io(_))));
    }

    #[test]
    fn expired_deadline_fails_fast() {
        let c = HttpClient::with_timeout(Duration::from_secs(30));
        let past = Instant::now() - Duration::from_millis(1);
        let err = c.send_with_deadline(Request::get("http://127.0.0.1:1/"), past).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
    }

    #[test]
    fn deadline_bounds_a_stalled_server() {
        // A listener that accepts and then never responds: the socket
        // timeout alone (30 s) would hang the call; the deadline must
        // cut it short.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let c = HttpClient::with_timeout(Duration::from_secs(30));
        let deadline = Instant::now() + Duration::from_millis(80);
        let start = Instant::now();
        let err =
            c.send_with_deadline(Request::get(format!("http://{addr}/")), deadline).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
        assert!(start.elapsed() < Duration::from_secs(5), "deadline did not bound the wait");
        server.join().unwrap();
    }

    #[test]
    fn generous_deadline_does_not_interfere() {
        let server =
            crate::HttpServer::bind("127.0.0.1:0", 2, |_req: Request| crate::Response::text("ok"))
                .unwrap();
        let url = format!("http://{}/", server.addr());
        let c = HttpClient::with_timeout(Duration::from_secs(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        let resp = c.send_with_deadline(Request::get(&url), deadline).unwrap();
        assert!(resp.status.is_success());
    }

    #[test]
    fn deadline_connect_tries_every_resolved_address() {
        // Regression for first-address-only resolution: hand-build the
        // situation where the first address refuses and a later one
        // serves. `localhost` may resolve to `::1` before `127.0.0.1`;
        // the old code took `.next()` and never reached the listener.
        let server =
            crate::HttpServer::bind("127.0.0.1:0", 1, |_req: Request| crate::Response::text("ok"))
                .unwrap();
        let c = HttpClient::with_timeout(Duration::from_secs(2));
        let url = Url::parse(&format!("http://localhost:{}/", server.addr().port())).unwrap();
        // Whatever order the resolver yields, the connect must land on
        // the one family that is actually listening.
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        let stream = c.connect(&url, deadline).expect("must try every resolved address");
        drop(stream);
    }

    #[test]
    fn pooled_connection_is_reused() {
        let server = crate::HttpServer::bind("127.0.0.1:0", 2, |req: Request| {
            crate::Response::text(format!("echo {}", req.path()))
        })
        .unwrap();
        let c = HttpClient::new();
        for i in 0..5 {
            let resp = c.get(&format!("{}/r{i}", server.url())).unwrap();
            assert!(resp.status.is_success());
        }
        let stats = c.pool_stats();
        assert_eq!(stats.opened, 1, "five sequential requests must share one connection");
        assert_eq!(stats.reused, 4);
        assert_eq!(server.served(), 5);
    }

    #[test]
    fn disabled_pool_opens_per_request() {
        let server =
            crate::HttpServer::bind("127.0.0.1:0", 2, |_req: Request| crate::Response::text("ok"))
                .unwrap();
        let c = HttpClient::new().with_pool(PoolConfig { enabled: false, ..PoolConfig::default() });
        for _ in 0..3 {
            assert!(c.get(&format!("{}/x", server.url())).unwrap().status.is_success());
        }
        let stats = c.pool_stats();
        assert_eq!(stats.opened, 3);
        assert_eq!(stats.reused, 0);
    }

    #[test]
    fn stale_pooled_connection_is_retired_and_retried() {
        // Serve one request, then shut the server down and bring up a
        // fresh one on the same port: the parked connection is dead,
        // and the client must transparently retry on a new connection.
        let mut server =
            crate::HttpServer::bind("127.0.0.1:0", 2, |_req: Request| crate::Response::text("one"))
                .unwrap();
        let addr = server.addr();
        let c = HttpClient::with_timeout(Duration::from_secs(5));
        assert_eq!(c.get(&format!("http://{addr}/")).unwrap().text_body().unwrap(), "one");
        server.shutdown();
        drop(server);
        let server2 = crate::HttpServer::bind(&addr.to_string(), 2, |_req: Request| {
            crate::Response::text("two")
        })
        .unwrap();
        assert_eq!(server2.addr(), addr, "rebind on the same port");
        let resp = c.get(&format!("http://{addr}/")).unwrap();
        assert_eq!(resp.text_body().unwrap(), "two");
        let stats = c.pool_stats();
        assert!(stats.opened >= 2, "a fresh connection replaced the dead one: {stats:?}");
    }

    #[test]
    fn server_close_is_honored_not_pooled() {
        // The handler demands teardown; the client must not park the
        // connection.
        let server = crate::HttpServer::bind("127.0.0.1:0", 2, |_req: Request| {
            crate::Response::text("bye").with_header("Connection", "close")
        })
        .unwrap();
        let c = HttpClient::new();
        for _ in 0..3 {
            assert!(c.get(&format!("{}/x", server.url())).unwrap().status.is_success());
        }
        let stats = c.pool_stats();
        assert_eq!(stats.opened, 3, "Connection: close responses must not be reused");
        assert_eq!(stats.reused, 0);
    }
}
