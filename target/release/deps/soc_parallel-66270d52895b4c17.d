/root/repo/target/release/deps/soc_parallel-66270d52895b4c17.d: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs

/root/repo/target/release/deps/libsoc_parallel-66270d52895b4c17.rlib: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs

/root/repo/target/release/deps/libsoc_parallel-66270d52895b4c17.rmeta: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs

crates/soc-parallel/src/lib.rs:
crates/soc-parallel/src/metrics.rs:
crates/soc-parallel/src/par_iter.rs:
crates/soc-parallel/src/pipeline.rs:
crates/soc-parallel/src/pool.rs:
crates/soc-parallel/src/simcore.rs:
crates/soc-parallel/src/sync/mod.rs:
crates/soc-parallel/src/sync/barrier.rs:
crates/soc-parallel/src/sync/buffer.rs:
crates/soc-parallel/src/sync/event.rs:
crates/soc-parallel/src/sync/semaphore.rs:
crates/soc-parallel/src/sync/spinlock.rs:
crates/soc-parallel/src/workloads.rs:
