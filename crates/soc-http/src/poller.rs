//! A minimal readiness poller over Linux `epoll`, plus an
//! `eventfd`-based [`Waker`] for cross-thread wakeups.
//!
//! This is the substrate the reactor transport stands on: the event
//! loop registers nonblocking sockets here and sleeps in
//! [`Poller::wait`] until the kernel reports readiness, instead of
//! parking one blocked thread per connection. The workspace vendors no
//! FFI crates, so the handful of syscalls are declared directly against
//! the system libc that `std` already links.
//!
//! Level-triggered mode throughout: a readiness bit stays set until the
//! state machine drains it, which keeps the connection logic re-entrant
//! and immune to the classic edge-trigger starvation bugs.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

mod sys {
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
}

/// One readiness report from the kernel.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen token the fd was registered under.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or socket error: the fd needs attention even if the
    /// caller asked for neither direction.
    pub hangup: bool,
}

/// Capacity of the per-wait event buffer.
const MAX_EVENTS: usize = 1024;

/// A registration interest set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const NONE: Interest = Interest { readable: false, writable: false };

    fn bits(self) -> u32 {
        // RDHUP is always on: a half-closed peer must wake the loop so
        // idle keep-alive connections are reaped promptly.
        let mut e = sys::EPOLLRDHUP;
        if self.readable {
            e |= sys::EPOLLIN;
        }
        if self.writable {
            e |= sys::EPOLLOUT;
        }
        e
    }
}

/// Thin safe wrapper over one `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: interest.bits(), data: token };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interests.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interests (and token) of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister `fd`. Harmless to call for an fd the kernel already
    /// dropped (closing an fd removes it from every epoll set).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` = forever). Ready events are appended to
    /// `events`, which is cleared first. Returns the number delivered.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                // Round sub-millisecond waits up so a near deadline
                // doesn't degenerate into a zero-timeout busy loop.
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            let rc = unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in buf.iter().take(n) {
            // Copy out of the (packed) kernel struct before use.
            let (bits, token) = (ev.events, ev.data);
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

// The epoll fd is just a kernel handle; epoll_ctl/epoll_wait are
// thread-safe on the same instance.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

/// Cross-thread wakeup for a [`Poller`] loop, backed by an `eventfd`.
///
/// Worker threads finishing a handler call [`Waker::wake`]; the reactor
/// sees the eventfd turn readable under the waker's token and drains
/// its completion queue. Writes coalesce (an eventfd is a counter), so
/// waking an already-woken loop is one cheap syscall.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Create a waker and register it on `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker { fd };
        poller.add(fd, token, Interest::READ)?;
        Ok(waker)
    }

    /// Make the poller's next (or current) `wait` return.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { sys::write(self.fd, &one as *const u64 as *const u8, 8) };
    }

    /// Clear the pending wakeup count so level-triggered polling stops
    /// reporting the waker readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { sys::read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn socket_readiness_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: times out empty.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        (&client).write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(client);

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].hangup || events[0].readable);
    }

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 99).unwrap();

        let mut events = Vec::new();
        waker.wake();
        waker.wake(); // coalesces
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 99);
        waker.drain();

        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "drained waker must go quiet");
    }

    #[test]
    fn modify_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // A connected socket with room in its send buffer is instantly
        // writable — but we only ask for readability first.
        poller.add(server.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        poller.modify(server.as_raw_fd(), 3, Interest::WRITE).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
    }
}
