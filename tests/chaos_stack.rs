//! The seeded chaos matrix: the whole stack — directory-less gateway,
//! replicated mortgage services sharing a ledger, the mortgage saga
//! with compensation — driven under deterministic fault schedules, on
//! the in-memory network and over real TCP through the fault proxy.
//!
//! These are the invariants the resilience layers exist to uphold:
//! every run resolves within its deadline, no logical application is
//! ever executed twice (idempotency keys absorb retries/hedges/replays),
//! compensation exactly balances completed steps and runs in reverse
//! order, and the gateway's breakers close again once faults clear.

use std::time::Duration;

use soc::chaos::{live_threads, run_mem_chaos, run_tcp_chaos, ChaosConfig};

/// Drive `seeds` campaigns, `parallel` at a time (campaigns are
/// independent stacks; running them concurrently just overlaps their
/// breaker cool-down waits).
fn sweep(
    seeds: std::ops::Range<u64>,
    parallel: usize,
    cfg: ChaosConfig,
) -> Vec<soc::chaos::ChaosReport> {
    let mut reports = Vec::new();
    let seeds: Vec<u64> = seeds.collect();
    for chunk in seeds.chunks(parallel.max(1)) {
        let handles: Vec<_> = chunk
            .iter()
            .map(|&seed| {
                let cfg = ChaosConfig { seed, ..cfg.clone() };
                std::thread::spawn(move || run_mem_chaos(&cfg))
            })
            .collect();
        for h in handles {
            reports.push(h.join().expect("campaign panicked"));
        }
    }
    reports
}

/// The CI seed matrix: 32 pinned seeds at the 20% fault budget, every
/// invariant upheld on each, and ≥99% of runs client-visibly fine
/// (completed or cleanly compensated) in aggregate.
#[test]
fn mem_chaos_32_pinned_seeds_uphold_invariants() {
    let cfg = ChaosConfig {
        runs: 12,
        fault_pct: 0.2,
        deadline: Duration::from_secs(5),
        ..ChaosConfig::default()
    };
    let reports = sweep(1..33, 8, cfg);
    assert_eq!(reports.len(), 32);

    let mut total = 0usize;
    let mut good = 0usize;
    let mut deduped = 0u64;
    for report in &reports {
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "seed {:#x} violated invariants: {violations:?}\n{}",
            report.seed,
            report.summary()
        );
        total += report.outcomes.len();
        good += report.completed() + report.compensated_clean();
        deduped += report.deduped_replays;
    }
    let ratio = good as f64 / total as f64;
    assert!(ratio >= 0.99, "success-or-clean-compensation {ratio:.4} below 0.99 over {total} runs");
    // Evidence the idempotency plane is actually absorbing replays, not
    // just idle: across 384 runs at 20% faults, some POST retried into
    // the ledger cache.
    assert!(deduped > 0, "no deduped replays across the whole matrix — keys not exercised?");
}

/// A pinned seed that drives the mortgage workflow into compensation:
/// finalize is fully down, so every run rolls back — compensators run
/// in reverse topological order (`notify` before `apply`) exactly once
/// each, and the ledger ends balanced: all applications cancelled,
/// no orphan cancels.
#[test]
fn compensation_runs_in_reverse_order_exactly_once() {
    let cfg = ChaosConfig {
        seed: 0x5EED,
        runs: 4,
        fault_pct: 0.0,
        finalize_offline: true,
        partition: false,
        deadline: Duration::from_secs(5),
        ..ChaosConfig::default()
    };
    let report = run_mem_chaos(&cfg);
    let violations = report.violations();
    assert!(violations.is_empty(), "{violations:?}");

    assert_eq!(report.completed(), 0, "finalize is down; nothing may complete");
    assert_eq!(report.compensated_clean(), 4, "every run must compensate cleanly");
    for outcome in &report.outcomes {
        assert_eq!(outcome.failed_at.as_deref(), Some("finalize"));
        // Reverse topological order, exactly once each: the graph is
        // application → apply → notify → finalize, so rollback is
        // notify first, then apply.
        assert_eq!(
            outcome.compensated,
            vec!["notify".to_string(), "apply".to_string()],
            "run {}",
            outcome.run
        );
    }
    assert_eq!(report.open_applications, 0, "every application must be cancelled");
    assert_eq!(report.cancelled_app_ids.len(), 4);
    assert_eq!(report.orphan_cancels, 0);
    assert_eq!(report.open_notifications, 0, "every notification must be cancelled");
}

/// The same 20%-fault schedule over real TCP sockets: replicas fronted
/// by fault proxies injecting delay, mid-header resets, and mid-body
/// truncation on the wire. Invariants hold, ≥99% of runs are fine, and
/// the proxies leak no tunnels after shutdown.
#[test]
fn tcp_chaos_upholds_invariants_without_leaking_tunnels() {
    let mut total = 0usize;
    let mut good = 0usize;
    for seed in [0xAC1D, 0xBEEF] {
        let cfg = ChaosConfig {
            seed,
            runs: 10,
            replicas: 2,
            fault_pct: 0.2,
            deadline: Duration::from_secs(8),
            ..ChaosConfig::default()
        };
        let (report, open_tunnels) = run_tcp_chaos(&cfg);
        let violations = report.violations();
        assert!(violations.is_empty(), "seed {seed:#x}: {violations:?}\n{}", report.summary());
        assert!(
            open_tunnels.iter().all(|&n| n == 0),
            "seed {seed:#x}: leaked proxy tunnels: {open_tunnels:?}"
        );
        total += report.outcomes.len();
        good += report.completed() + report.compensated_clean();
    }
    let ratio = good as f64 / total as f64;
    assert!(ratio >= 0.99, "TCP success-or-clean-compensation {ratio:.4} below 0.99");
}

/// A campaign must not leak threads: every activity thread, straggler,
/// hedge arm, and proxy tunnel is joined by the time the report is in
/// hand. (Other tests run concurrently in this binary, so the check
/// polls — the count must *settle* back to the baseline.)
#[test]
fn chaos_campaign_does_not_leak_threads() {
    let Some(before) = live_threads() else {
        return; // not on Linux — nothing to measure
    };
    let cfg = ChaosConfig {
        seed: 0x7EAD,
        runs: 8,
        fault_pct: 0.3,
        deadline: Duration::from_secs(5),
        ..ChaosConfig::default()
    };
    let report = run_mem_chaos(&cfg);
    assert!(report.violations().is_empty());

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let after = live_threads().unwrap();
        // Slack for the concurrent test threads in this binary.
        if after <= before + 4 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread count did not settle: {before} before, {after} after"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
