/root/repo/target/debug/deps/fig5_enrollment-44ac71ac4c76cc59.d: crates/soc-bench/src/bin/fig5_enrollment.rs

/root/repo/target/debug/deps/fig5_enrollment-44ac71ac4c76cc59: crates/soc-bench/src/bin/fig5_enrollment.rs

crates/soc-bench/src/bin/fig5_enrollment.rs:
