//! WSDL 1.1 document generation and parsing.
//!
//! `generate` produces the document a provider serves at `?wsdl`;
//! `parse` recovers a [`Contract`] plus endpoint from such a document —
//! which is exactly what the service broker stores and what a consumer
//! needs to call the service.

use soc_xml::{Document, NodeId, XmlWriter};

use crate::contract::{Contract, Operation, XsdType};
use crate::{SOAP_ENV_NS, WSDL_NS, XSD_NS};

/// Render a WSDL 1.1 document (document/literal convention) for a
/// contract hosted at `endpoint`.
pub fn generate(contract: &Contract, endpoint: &str) -> String {
    let mut doc = Document::new("wsdl:definitions");
    let root = doc.root();
    doc.set_attr(root, "xmlns:wsdl", WSDL_NS);
    doc.set_attr(root, "xmlns:xsd", XSD_NS);
    doc.set_attr(root, "xmlns:soapenv", SOAP_ENV_NS);
    doc.set_attr(root, "xmlns:tns", contract.namespace.clone());
    doc.set_attr(root, "targetNamespace", contract.namespace.clone());
    doc.set_attr(root, "name", contract.name.clone());

    // <types>: one element per message payload.
    let types = doc.add_element(root, "wsdl:types");
    let schema = doc.add_element(types, "xsd:schema");
    doc.set_attr(schema, "targetNamespace", contract.namespace.clone());
    for op in &contract.operations {
        add_message_element(&mut doc, schema, &op.name, &op.inputs);
        add_message_element(&mut doc, schema, &format!("{}Response", op.name), &op.outputs);
    }

    // <message> pairs.
    for op in &contract.operations {
        for (suffix, element) in
            [("Input", op.name.clone()), ("Output", format!("{}Response", op.name))]
        {
            let msg = doc.add_element(root, "wsdl:message");
            doc.set_attr(msg, "name", format!("{}{suffix}", op.name));
            let part = doc.add_element(msg, "wsdl:part");
            doc.set_attr(part, "name", "parameters");
            doc.set_attr(part, "element", format!("tns:{element}"));
        }
    }

    // <portType>.
    let port_type = doc.add_element(root, "wsdl:portType");
    doc.set_attr(port_type, "name", format!("{}PortType", contract.name));
    for op in &contract.operations {
        let o = doc.add_element(port_type, "wsdl:operation");
        doc.set_attr(o, "name", op.name.clone());
        if let Some(text) = &op.doc {
            doc.add_text_element(o, "wsdl:documentation", text.clone());
        }
        let input = doc.add_element(o, "wsdl:input");
        doc.set_attr(input, "message", format!("tns:{}Input", op.name));
        let output = doc.add_element(o, "wsdl:output");
        doc.set_attr(output, "message", format!("tns:{}Output", op.name));
    }

    // <binding> (document/literal over SOAP-HTTP).
    let binding = doc.add_element(root, "wsdl:binding");
    doc.set_attr(binding, "name", format!("{}Binding", contract.name));
    doc.set_attr(binding, "type", format!("tns:{}PortType", contract.name));
    for op in &contract.operations {
        let o = doc.add_element(binding, "wsdl:operation");
        doc.set_attr(o, "name", op.name.clone());
        doc.set_attr(o, "soapAction", format!("{}#{}", contract.namespace, op.name));
    }

    // <service>/<port>.
    let service = doc.add_element(root, "wsdl:service");
    doc.set_attr(service, "name", contract.name.clone());
    let port = doc.add_element(service, "wsdl:port");
    doc.set_attr(port, "name", format!("{}Port", contract.name));
    doc.set_attr(port, "binding", format!("tns:{}Binding", contract.name));
    let address = doc.add_element(port, "soapenv:address");
    doc.set_attr(address, "location", endpoint);

    // Serialize declaration + document into one buffer: no intermediate
    // String from `to_pretty_xml`, no second copy.
    let mut out = String::with_capacity(2048);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    let mut w = XmlWriter::pretty_to(&mut out);
    w.write_document(&doc);
    w.finish();
    out
}

fn add_message_element(
    doc: &mut Document,
    schema: NodeId,
    element_name: &str,
    params: &[crate::contract::Param],
) {
    let el = doc.add_element(schema, "xsd:element");
    doc.set_attr(el, "name", element_name);
    let ct = doc.add_element(el, "xsd:complexType");
    let seq = doc.add_element(ct, "xsd:sequence");
    for p in params {
        let pe = doc.add_element(seq, "xsd:element");
        doc.set_attr(pe, "name", p.name.clone());
        doc.set_attr(pe, "type", p.ty.xsd_name());
    }
}

/// A contract plus its endpoint, recovered from WSDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedWsdl {
    /// The recovered contract.
    pub contract: Contract,
    /// The `soapenv:address location` the service is reachable at.
    pub endpoint: String,
}

/// Parse a WSDL document (as produced by [`generate`]).
pub fn parse(xml: &str) -> Result<ParsedWsdl, String> {
    let doc = Document::parse_str(xml).map_err(|e| e.to_string())?;
    let root = doc.root();
    if doc.name(root).map(|q| q.local.as_str()) != Some("definitions") {
        return Err("not a WSDL document (no definitions root)".into());
    }
    let namespace = doc.attr(root, "targetNamespace").ok_or("missing targetNamespace")?.to_string();
    let name = doc.attr(root, "name").unwrap_or("Service").to_string();
    let mut contract = Contract::new(&name, &namespace);

    // Recover parameter types from the schema.
    let mut elements: Vec<(String, Vec<(String, XsdType)>)> = Vec::new();
    if let Some(types) = doc.find_child(root, "types") {
        if let Some(schema) = doc.find_child(types, "schema") {
            for el in doc.find_children(schema, "element") {
                let Some(el_name) = doc.attr(el, "name") else { continue };
                let mut params = Vec::new();
                if let Some(ct) = doc.find_child(el, "complexType") {
                    if let Some(seq) = doc.find_child(ct, "sequence") {
                        for pe in doc.find_children(seq, "element") {
                            let pname = doc.attr(pe, "name").unwrap_or("").to_string();
                            let ty = doc
                                .attr(pe, "type")
                                .and_then(XsdType::parse)
                                .unwrap_or(XsdType::String);
                            params.push((pname, ty));
                        }
                    }
                }
                elements.push((el_name.to_string(), params));
            }
        }
    }
    // Message catalog: `wsdl:message` name → the parameters it
    // carries. A document/literal part references a schema element; an
    // rpc-style part carries `name`/`type` directly. A crawler sees
    // both conventions in the wild, so each message resolves to a
    // concrete parameter list here rather than at the portType.
    let strip_prefix = |qname: &str| qname.rsplit(':').next().unwrap_or(qname).to_string();
    let element_params = |name: &str| -> Option<Vec<(String, XsdType)>> {
        elements.iter().find(|(n, _)| n == name).map(|(_, p)| p.clone())
    };
    let mut messages: Vec<(String, Vec<(String, XsdType)>)> = Vec::new();
    for msg in doc.find_children(root, "message") {
        let Some(msg_name) = doc.attr(msg, "name") else { continue };
        let mut params = Vec::new();
        for part in doc.find_children(msg, "part") {
            if let Some(element) = doc.attr(part, "element") {
                params.extend(element_params(&strip_prefix(element)).unwrap_or_default());
            } else if let Some(ty) = doc.attr(part, "type") {
                let pname = doc.attr(part, "name").unwrap_or("").to_string();
                params.push((pname, XsdType::parse(ty).unwrap_or(XsdType::String)));
            }
        }
        messages.push((msg_name.to_string(), params));
    }
    let message_params = |attr: Option<&str>| -> Option<Vec<(String, XsdType)>> {
        let name = strip_prefix(attr?);
        messages.iter().find(|(n, _)| *n == name).map(|(_, p)| p.clone())
    };

    // Operations from the portType. Input/output parameters resolve
    // through the operation's message reference; documents that skip
    // the message layer fall back to the `{op}`/`{op}Response` schema
    // element convention.
    let port_type = doc.find_child(root, "portType").ok_or("missing portType")?;
    for o in doc.find_children(port_type, "operation") {
        let Some(op_name) = doc.attr(o, "name") else { continue };
        let mut op = Operation::new(op_name);
        if let Some(d) = doc.child_text(o, "documentation") {
            op.doc = Some(d);
        }
        let resolve = |dir: &str, fallback: &str| -> Vec<(String, XsdType)> {
            doc.find_child(o, dir)
                .and_then(|n| message_params(doc.attr(n, "message")))
                .or_else(|| element_params(fallback))
                .unwrap_or_default()
        };
        for (pname, ty) in resolve("input", op_name) {
            op.inputs.push(crate::contract::Param { name: pname, ty });
        }
        for (pname, ty) in resolve("output", &format!("{op_name}Response")) {
            op.outputs.push(crate::contract::Param { name: pname, ty });
        }
        contract.operations.push(op);
    }

    // Endpoint from service/port/address.
    let endpoint = doc
        .find_child(root, "service")
        .and_then(|s| doc.find_child(s, "port"))
        .and_then(|p| doc.find_child(p, "address"))
        .and_then(|a| doc.attr(a, "location").map(str::to_string))
        .ok_or("missing service address")?;

    Ok(ParsedWsdl { contract, endpoint })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Contract, Operation, XsdType};

    fn calc() -> Contract {
        Contract::new("Calc", "urn:soc:calc")
            .operation(
                Operation::new("Add")
                    .input("a", XsdType::Int)
                    .input("b", XsdType::Int)
                    .output("sum", XsdType::Int)
                    .doc("adds integers"),
            )
            .operation(
                Operation::new("Hypot")
                    .input("x", XsdType::Double)
                    .input("y", XsdType::Double)
                    .output("r", XsdType::Double),
            )
    }

    #[test]
    fn generate_parse_round_trip() {
        let wsdl = generate(&calc(), "http://example.com/calc");
        let parsed = parse(&wsdl).unwrap();
        assert_eq!(parsed.endpoint, "http://example.com/calc");
        assert_eq!(parsed.contract, calc());
    }

    #[test]
    fn generated_document_mentions_standard_namespaces() {
        let wsdl = generate(&calc(), "mem://calc/soap");
        assert!(wsdl.contains(crate::WSDL_NS));
        assert!(wsdl.contains(crate::XSD_NS));
        assert!(wsdl.contains("targetNamespace=\"urn:soc:calc\""));
        assert!(wsdl.contains("soapAction=\"urn:soc:calc#Add\""));
    }

    #[test]
    fn parse_rejects_non_wsdl() {
        assert!(parse("<random/>").is_err());
        assert!(parse("garbage").is_err());
    }

    #[test]
    fn parse_requires_address() {
        let wsdl =
            generate(&calc(), "mem://calc/soap").replace("soapenv:address", "soapenv:elsewhere");
        assert!(parse(&wsdl).is_err());
    }

    #[test]
    fn parse_follows_message_indirection() {
        // Element names deliberately do NOT follow the `{op}` /
        // `{op}Response` convention: the parser must resolve
        // portType → message → part → schema element to see the types.
        let wsdl = r#"<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
            xmlns:tns="urn:x" targetNamespace="urn:x" name="Quote">
          <wsdl:types><xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:x">
            <xsd:element name="QuoteReq"><xsd:complexType><xsd:sequence>
              <xsd:element name="symbol" type="xsd:string"/>
            </xsd:sequence></xsd:complexType></xsd:element>
            <xsd:element name="QuoteResp"><xsd:complexType><xsd:sequence>
              <xsd:element name="price" type="xsd:double"/>
            </xsd:sequence></xsd:complexType></xsd:element>
          </xsd:schema></wsdl:types>
          <wsdl:message name="GetQuoteIn"><wsdl:part name="parameters" element="tns:QuoteReq"/></wsdl:message>
          <wsdl:message name="GetQuoteOut"><wsdl:part name="parameters" element="tns:QuoteResp"/></wsdl:message>
          <wsdl:portType name="QuotePortType"><wsdl:operation name="GetQuote">
            <wsdl:input message="tns:GetQuoteIn"/><wsdl:output message="tns:GetQuoteOut"/>
          </wsdl:operation></wsdl:portType>
          <wsdl:service name="Quote"><wsdl:port name="QuotePort" binding="tns:B">
            <soapenv:address xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/" location="mem://quote/soap"/>
          </wsdl:port></wsdl:service>
        </wsdl:definitions>"#;
        let parsed = parse(wsdl).unwrap();
        let op = parsed.contract.find("GetQuote").unwrap();
        assert_eq!(op.inputs.len(), 1);
        assert_eq!((op.inputs[0].name.as_str(), op.inputs[0].ty), ("symbol", XsdType::String));
        assert_eq!((op.outputs[0].name.as_str(), op.outputs[0].ty), ("price", XsdType::Double));
    }

    #[test]
    fn parse_recovers_rpc_style_typed_parts() {
        // rpc-style: no schema at all, parts carry name/type directly.
        let wsdl = r#"<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
            xmlns:tns="urn:rpc" targetNamespace="urn:rpc" name="Calc">
          <wsdl:message name="AddIn">
            <wsdl:part name="a" type="xsd:int"/><wsdl:part name="b" type="xsd:int"/>
          </wsdl:message>
          <wsdl:message name="AddOut"><wsdl:part name="sum" type="xsd:long"/></wsdl:message>
          <wsdl:portType name="CalcPortType"><wsdl:operation name="Add">
            <wsdl:input message="tns:AddIn"/><wsdl:output message="tns:AddOut"/>
          </wsdl:operation></wsdl:portType>
          <wsdl:service name="Calc"><wsdl:port name="CalcPort" binding="tns:B">
            <soapenv:address xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/" location="mem://calc"/>
          </wsdl:port></wsdl:service>
        </wsdl:definitions>"#;
        let parsed = parse(wsdl).unwrap();
        let op = parsed.contract.find("Add").unwrap();
        let names: Vec<&str> = op.inputs.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(op.inputs.iter().all(|p| p.ty == XsdType::Int));
        assert_eq!((op.outputs[0].name.as_str(), op.outputs[0].ty), ("sum", XsdType::Int));
    }

    #[test]
    fn unknown_types_default_to_string() {
        let wsdl = generate(&calc(), "mem://x").replace("xsd:int", "xsd:duration");
        let parsed = parse(&wsdl).unwrap();
        let add = parsed.contract.find("Add").unwrap();
        assert!(add.inputs.iter().all(|p| p.ty == XsdType::String));
    }
}
