/root/repo/target/debug/deps/fig3_collatz_speedup-a00f95e0b7045fbe.d: crates/soc-bench/benches/fig3_collatz_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_collatz_speedup-a00f95e0b7045fbe.rmeta: crates/soc-bench/benches/fig3_collatz_speedup.rs Cargo.toml

crates/soc-bench/benches/fig3_collatz_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
