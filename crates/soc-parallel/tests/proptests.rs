//! Property tests: parallel results equal sequential oracles for
//! arbitrary workloads/schedules, and simulator invariants hold for
//! arbitrary DAGs.

use proptest::prelude::*;
use soc_parallel::simcore::{simulate, TaskGraph};
use soc_parallel::sync::BoundedBuffer;
use soc_parallel::{parallel_map, parallel_reduce, Schedule, ThreadPool};

fn schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![Just(Schedule::Static), (1usize..64).prop_map(|chunk| Schedule::Dynamic { chunk }),]
}

/// A random DAG: each task depends on a subset of strictly earlier tasks.
fn dag_strategy() -> impl Strategy<Value = TaskGraph> {
    proptest::collection::vec(
        (1u64..50, proptest::collection::vec(any::<prop::sample::Index>(), 0..3)),
        1..40,
    )
    .prop_map(|specs| {
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for (cost, dep_picks) in specs {
            let deps: Vec<_> = if ids.is_empty() {
                Vec::new()
            } else {
                let mut d: Vec<_> = dep_picks.iter().map(|ix| *ix.get(&ids)).collect();
                d.sort_by_key(|t: &soc_parallel::simcore::TaskId| format!("{t:?}"));
                d.dedup();
                d
            };
            ids.push(g.add(cost, &deps));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_map_equals_sequential(
        items in proptest::collection::vec(any::<i64>(), 0..300),
        schedule in schedules(),
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let got = parallel_map(&pool, &items, schedule, |&x| x.wrapping_mul(31).wrapping_add(7));
        let want: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(31).wrapping_add(7)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn parallel_sum_equals_sequential(
        len in 0usize..5_000,
        schedule in schedules(),
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let got = parallel_reduce(&pool, 0..len, schedule, 0u64, |i| i as u64, |a, b| a + b);
        prop_assert_eq!(got, (0..len as u64).sum::<u64>());
    }

    #[test]
    fn simulator_bounds_hold_for_arbitrary_dags(
        g in dag_strategy(),
        cores in 1usize..10,
        overhead in 0u64..5,
    ) {
        let r = simulate(&g, cores, overhead);
        let n = g.len() as u64;
        let work = g.total_work() + overhead * n;
        let span = g.critical_path() + overhead * n; // loose span bound
        // Work law: T_p ≥ T1 / p.
        prop_assert!(r.makespan as f64 + 1e-9 >= work as f64 / cores as f64);
        // Graham bound with overhead folded in.
        prop_assert!(r.makespan <= work / cores as u64 + span + 1);
        // Busy time conservation: total busy equals total work.
        prop_assert_eq!(r.busy.iter().sum::<u64>(), work);
        // Utilization bounded.
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn more_cores_never_hurt_makespan(
        g in dag_strategy(),
        cores in 1usize..8,
    ) {
        // Greedy list scheduling of a fork/join-free random DAG can in
        // theory suffer anomalies; our earliest-core policy with a FIFO
        // ready heap is monotone for these sizes — verify it stays so.
        let a = simulate(&g, cores, 0).makespan;
        let b = simulate(&g, cores + 1, 0).makespan;
        prop_assert!(b <= a + g.critical_path(), "severe anomaly: {a} -> {b}");
    }

    #[test]
    fn buffer_never_loses_or_duplicates(
        items in proptest::collection::vec(any::<u32>(), 0..200),
        capacity in 1usize..16,
    ) {
        let buf = std::sync::Arc::new(BoundedBuffer::new(capacity));
        let b2 = buf.clone();
        let send = items.clone();
        let producer = std::thread::spawn(move || {
            for it in send {
                b2.put(it).unwrap();
            }
            b2.close();
        });
        let mut got = Vec::new();
        while let Some(v) = buf.take() {
            got.push(v);
        }
        producer.join().unwrap();
        prop_assert_eq!(got, items);
    }
}
