/root/repo/target/debug/examples/collatz_speedup-54546cf163533cc6.d: examples/collatz_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libcollatz_speedup-54546cf163533cc6.rmeta: examples/collatz_speedup.rs Cargo.toml

examples/collatz_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
