/root/repo/target/debug/deps/soc-b62c1d13afcd450a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoc-b62c1d13afcd450a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
