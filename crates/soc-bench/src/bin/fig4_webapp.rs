//! **Figure 4 harness** — the "Web application project": scripted
//! client sessions driving every decision box of the figure — check
//! existence, credit score, approval, strong-password and match checks,
//! user-ID issuance, login — and the resulting `account.xml`.
//!
//! ```sh
//! cargo run -p soc-bench --bin fig4_webapp
//! ```

use std::sync::Arc;

use soc_http::url::encode_form;
use soc_http::{MemNetwork, Request, Response};
use soc_services::mortgage::CreditScoreService;
use soc_webapp::account_app::{AccountApp, MIN_SCORE};

fn post(net: &MemNetwork, url: &str, fields: &[(&str, &str)]) -> Response {
    let body = encode_form(
        &fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect::<Vec<_>>(),
    );
    soc_http::mem::Transport::send(
        net,
        Request::post(url, Vec::new()).with_text("application/x-www-form-urlencoded", &body),
    )
    .expect("app reachable")
}

fn outcome(resp: &Response) -> String {
    let body = resp.text_body().unwrap_or("");
    for marker in [
        "You do not qualify",
        "already exists",
        "weak password",
        "do not match",
        "Password created",
        "Your user ID",
        "invalid user ID or password",
    ] {
        if body.contains(marker) {
            return marker.to_string();
        }
    }
    format!("status {}", resp.status)
}

fn main() {
    println!("Figure 4: account-application web app, every decision path");
    soc_bench::print_rule(70);

    let net = MemNetwork::new();
    soc_services::bindings::host_all(&net, 4);
    let app = AccountApp::new(Arc::new(net.clone()), "mem://services.asu/credit/score");
    let store = app.store();
    net.host("bank", app);

    let good = (0..)
        .map(|i| format!("{i:09}"))
        .find(|s| CreditScoreService::score(s) >= MIN_SCORE)
        .unwrap();
    let bad = (0..)
        .map(|i| format!("{i:09}"))
        .find(|s| CreditScoreService::score(s) < MIN_SCORE)
        .unwrap();

    println!("{:<46} provider outcome", "scripted client action");
    soc_bench::print_rule(70);

    // 1. Rejected applicant (Approval? → No).
    let r = post(
        &net,
        "mem://bank/subscribe",
        &[("name", "Bob"), ("ssn", &bad), ("address", "2 Oak"), ("dob", "1985-03-04")],
    );
    println!(
        "{:<46} {}",
        format!("subscribe (score {})", CreditScoreService::score(&bad)),
        outcome(&r)
    );

    // 2. Approved applicant (Approval? → Yes → Issue User ID).
    let r = post(
        &net,
        "mem://bank/subscribe",
        &[("name", "Ann"), ("ssn", &good), ("address", "1 Mill"), ("dob", "1990-01-02")],
    );
    println!(
        "{:<46} {}",
        format!("subscribe (score {})", CreditScoreService::score(&good)),
        outcome(&r)
    );
    let body = r.text_body().unwrap();
    let s = body.find("<b>U").unwrap() + 3;
    let e = body[s..].find("</b>").unwrap() + s;
    let user = body[s..e].to_string();

    // 3. Duplicate SSN (Check existence → exists).
    let r = post(
        &net,
        "mem://bank/subscribe",
        &[("name", "Ann2"), ("ssn", &good), ("address", "x"), ("dob", "d")],
    );
    println!("{:<46} {}", "subscribe again with the same SSN", outcome(&r));

    // 4. Weak password (Strong? → No).
    let r = post(
        &net,
        "mem://bank/password",
        &[("user", &user), ("password", "weakpw"), ("retype", "weakpw")],
    );
    println!("{:<46} {}", "create password 'weakpw'", outcome(&r));

    // 5. Mismatched retype (Match? → No).
    let r = post(
        &net,
        "mem://bank/password",
        &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass!")],
    );
    println!("{:<46} {}", "create password with mismatched retype", outcome(&r));

    // 6. Accepted password (addPwd).
    let r = post(
        &net,
        "mem://bank/password",
        &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass")],
    );
    println!("{:<46} {}", "create password 'Str0ngPass' (retyped)", outcome(&r));

    // 7. Wrong password at login.
    let r = post(&net, "mem://bank/login", &[("user", &user), ("password", "Nope12345")]);
    println!("{:<46} {}", "login with wrong password", outcome(&r));

    // 8. Correct login → session → home.
    let r = post(&net, "mem://bank/login", &[("user", &user), ("password", "Str0ngPass")]);
    let cookie = r.headers.get("Set-Cookie").unwrap().split(';').next().unwrap().to_string();
    let home = soc_http::mem::Transport::send(
        &net,
        Request::get("mem://bank/home").with_header("Cookie", &cookie),
    )
    .unwrap();
    println!(
        "{:<46} {}",
        "login with correct password, GET /home",
        if home.text_body().unwrap_or("").contains("Welcome Ann") {
            "Welcome Ann (session active)"
        } else {
            "?"
        }
    );

    // The provider's data pane.
    println!("\naccount.xml after the session:\n{}", store.to_account_xml());
}
