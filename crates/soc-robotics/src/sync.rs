//! Virtual ↔ physical robot synchronization.
//!
//! The paper: *"The virtual robot in the Web can communicate and
//! synchronize with the physical robot to add excitement to the
//! learners."* We reproduce the synchronization problem with two
//! simulator instances — the authoritative *virtual* robot and a
//! *physical* robot behind an unreliable command channel that can drop
//! commands. A sequence-numbered command log with acknowledgement and
//! replay brings the physical robot back in sync.

use crate::maze::Maze;
use crate::robot::{Action, Robot};

/// A command with a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Monotone sequence number (0-based).
    pub seq: u64,
    /// The robot action.
    pub action: Action,
}

/// The unreliable channel to the physical robot: drops every `n`-th
/// command (deterministic, like [`soc_http::mem::FaultConfig`]).
pub struct LossyChannel {
    drop_every: u64,
    sent: u64,
}

impl LossyChannel {
    /// Channel dropping every `drop_every`-th command (0 = reliable).
    pub fn new(drop_every: u64) -> Self {
        LossyChannel { drop_every, sent: 0 }
    }

    /// Attempt delivery; `false` means dropped.
    pub fn deliver(&mut self) -> bool {
        self.sent += 1;
        !(self.drop_every > 0 && self.sent.is_multiple_of(self.drop_every))
    }
}

/// The paired robots plus the synchronization machinery.
pub struct SyncedPair {
    maze: Maze,
    /// The authoritative robot driven by the user/algorithm.
    pub virtual_robot: Robot,
    /// The mirrored robot behind the lossy channel.
    pub physical_robot: Robot,
    channel: LossyChannel,
    /// Full command log, indexed by sequence number.
    log: Vec<Command>,
    /// Next sequence the physical robot expects (= number applied).
    physical_applied: u64,
}

impl SyncedPair {
    /// Create a synchronized pair in `maze` with the given channel.
    pub fn new(maze: Maze, channel: LossyChannel) -> Self {
        let virtual_robot = Robot::at_start(&maze);
        let physical_robot = Robot::at_start(&maze);
        SyncedPair {
            maze,
            virtual_robot,
            physical_robot,
            channel,
            log: Vec::new(),
            physical_applied: 0,
        }
    }

    /// Drive the virtual robot and attempt to mirror the command. The
    /// physical robot applies a command only if it is the next expected
    /// sequence (later commands are ignored until replay fills the gap).
    pub fn command(&mut self, action: Action) {
        let seq = self.log.len() as u64;
        self.log.push(Command { seq, action });
        self.virtual_robot.act(&self.maze, action);
        if self.channel.deliver() && seq == self.physical_applied {
            self.physical_robot.act(&self.maze, action);
            self.physical_applied += 1;
        }
        // If the delivery was dropped (or out of order), the physical
        // robot silently falls behind until `reconcile`.
    }

    /// How many commands behind the physical robot is.
    pub fn lag(&self) -> u64 {
        self.log.len() as u64 - self.physical_applied
    }

    /// Are both robots at the same pose?
    pub fn in_sync(&self) -> bool {
        self.virtual_robot.position == self.physical_robot.position
            && self.virtual_robot.heading == self.physical_robot.heading
    }

    /// Replay the missing suffix of the command log to the physical
    /// robot (the acknowledgement-driven catch-up pass). Replay is
    /// assumed to run over a reliable (retried) channel.
    pub fn reconcile(&mut self) {
        while (self.physical_applied as usize) < self.log.len() {
            let cmd = self.log[self.physical_applied as usize];
            self.physical_robot.act(&self.maze, cmd.action);
            self.physical_applied += 1;
        }
    }

    /// The command log so far.
    pub fn log(&self) -> &[Command] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Hand, Navigator, Percept, WallFollower};

    fn percept_of(pair: &SyncedPair, m: &Maze) -> Percept {
        Percept {
            sensors: pair.virtual_robot.sense(m),
            position: pair.virtual_robot.position,
            heading: pair.virtual_robot.heading,
            exit: m.exit,
        }
    }

    fn maze() -> Maze {
        Maze::generate(9, 9, 12)
    }

    #[test]
    fn reliable_channel_stays_in_sync() {
        let mut pair = SyncedPair::new(maze(), LossyChannel::new(0));
        let mut nav = WallFollower::new(Hand::Right);
        for _ in 0..100 {
            let action = nav.decide(percept_of(&pair, &maze()));
            pair.command(action);
            assert!(pair.in_sync());
        }
        assert_eq!(pair.lag(), 0);
    }

    #[test]
    fn lossy_channel_diverges_then_reconciles() {
        let m = maze();
        let mut pair = SyncedPair::new(m.clone(), LossyChannel::new(3));
        let mut nav = WallFollower::new(Hand::Right);
        let mut diverged = false;
        for _ in 0..60 {
            let action = nav.decide(percept_of(&pair, &m));
            pair.command(action);
            if !pair.in_sync() {
                diverged = true;
            }
        }
        assert!(diverged, "a 1-in-3 drop rate must cause divergence");
        assert!(pair.lag() > 0);
        pair.reconcile();
        assert!(pair.in_sync(), "replay must restore sync");
        assert_eq!(pair.lag(), 0);
    }

    #[test]
    fn dropped_command_blocks_later_ones() {
        // Sequence gaps must not be applied out of order.
        let m = {
            // Straight corridor so every Forward is legal.
            let mut m = Maze::walled(6, 2);
            for x in 0..5 {
                m.carve((x, 0), crate::maze::Direction::East);
            }
            m
        };
        let mut pair = SyncedPair::new(m, LossyChannel::new(2));
        for _ in 0..4 {
            pair.command(Action::Forward);
        }
        // Drops at seq 1 and 3 → physical applied only seq 0 (then gap).
        assert_eq!(pair.physical_robot.steps(), 1);
        assert_eq!(pair.lag(), 3);
        pair.reconcile();
        assert_eq!(pair.physical_robot.steps(), 4);
        assert!(pair.in_sync());
    }

    #[test]
    fn log_records_all_commands() {
        let mut pair = SyncedPair::new(maze(), LossyChannel::new(2));
        pair.command(Action::TurnLeft);
        pair.command(Action::TurnRight);
        assert_eq!(pair.log().len(), 2);
        assert_eq!(pair.log()[1].seq, 1);
    }
}
