/root/repo/target/debug/deps/proptests-18e9e4f50c5d0698.d: crates/soc-soap/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-18e9e4f50c5d0698.rmeta: crates/soc-soap/tests/proptests.rs Cargo.toml

crates/soc-soap/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
