/root/repo/target/debug/deps/webapp-261fcffe2f1c1737.d: crates/soc-bench/benches/webapp.rs Cargo.toml

/root/repo/target/debug/deps/libwebapp-261fcffe2f1c1737.rmeta: crates/soc-bench/benches/webapp.rs Cargo.toml

crates/soc-bench/benches/webapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
