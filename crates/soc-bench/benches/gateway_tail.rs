//! Tail-latency ablation for the gateway's hedging + ejection layer.
//!
//! Three replicas, one of which develops a 15 ms stall after warm-up —
//! the paper's "too slow" public service. With the tail layer off,
//! round-robin sends every third request into the stall and p95/p99 sit
//! at the stall; with it on, hedges mask the stall immediately and the
//! outlier ejector then removes the replica from rotation. The run
//! asserts the layer cuts p99 by at least 2x on both transports, so
//! `cargo bench --bench gateway_tail` is an executable acceptance
//! check, not just a table.
//!
//! Not a Criterion harness: Criterion reports central tendency, and the
//! whole point here is the p99.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use soc_gateway::{Gateway, GatewayConfig, HedgeConfig, OutlierConfig};
use soc_http::mem::FaultConfig;
use soc_http::{HttpClient, HttpServer, MemNetwork, Request, Response};
use soc_json::Value;

const STALL: Duration = Duration::from_millis(15);
const WARMUP: usize = 30;
const REQUESTS: usize = 240;

fn config(tail_on: bool) -> GatewayConfig {
    GatewayConfig {
        hedge: if tail_on {
            HedgeConfig { min_samples: 4, ..HedgeConfig::default() }
        } else {
            HedgeConfig { enabled: false, ..HedgeConfig::default() }
        },
        outlier: if tail_on {
            OutlierConfig {
                eval_interval: Duration::ZERO,
                min_samples: 8,
                min_latency: Duration::from_millis(1),
                eject_duration: Duration::from_secs(60),
                ..OutlierConfig::default()
            }
        } else {
            OutlierConfig { enabled: false, ..OutlierConfig::default() }
        },
        request_deadline: Duration::from_secs(5),
        ..GatewayConfig::default()
    }
}

struct Summary {
    p50: Duration,
    p95: Duration,
    p99: Duration,
    hedges_launched: i64,
    hedges_won: i64,
    ejections: i64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Warm the replica set, trip the stall, then measure the client-seen
/// latency distribution through the gateway.
fn measure(gw: &Gateway, trip_stall: impl FnOnce()) -> Summary {
    for _ in 0..WARMUP {
        assert!(gw.call("svc", Request::get("/warm")).status.is_success());
    }
    trip_stall();
    let mut samples = Vec::with_capacity(REQUESTS);
    for _ in 0..REQUESTS {
        let start = Instant::now();
        let resp = gw.call("svc", Request::get("/x"));
        assert!(resp.status.is_success());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let stats = gw.stats_json();
    let get = |p: &str| stats.pointer(p).and_then(Value::as_i64).unwrap_or(0);
    Summary {
        p50: percentile(&samples, 0.50),
        p95: percentile(&samples, 0.95),
        p99: percentile(&samples, 0.99),
        hedges_launched: get("/hedges/launched"),
        hedges_won: get("/hedges/won"),
        ejections: get("/ejections"),
    }
}

fn run_mem(tail_on: bool) -> Summary {
    let net = MemNetwork::new();
    for name in ["r0", "r1", "rslow"] {
        net.host(name, |_req: Request| Response::text("pong"));
    }
    let gw = Gateway::new(Arc::new(net.clone()), config(tail_on));
    gw.register("svc", &["mem://r0", "mem://r1", "mem://rslow"]);
    measure(&gw, || {
        net.set_fault("rslow", FaultConfig { latency: STALL, ..Default::default() });
    })
}

fn run_tcp(tail_on: bool) -> Summary {
    let fast0 = HttpServer::bind("127.0.0.1:0", 2, |_req: Request| Response::text("r0")).unwrap();
    let fast1 = HttpServer::bind("127.0.0.1:0", 2, |_req: Request| Response::text("r1")).unwrap();
    let stalling = Arc::new(AtomicBool::new(false));
    let flag = stalling.clone();
    // Hedge losers hold a worker for the whole stall; give the slow
    // replica headroom so queueing doesn't inflate the measurement.
    let slow = HttpServer::bind("127.0.0.1:0", 8, move |_req: Request| {
        if flag.load(Ordering::Relaxed) {
            std::thread::sleep(STALL);
        }
        Response::text("slow")
    })
    .unwrap();
    let gw = Gateway::new(Arc::new(HttpClient::new()), config(tail_on));
    gw.register("svc", &[&fast0.url(), &fast1.url(), &slow.url()]);
    measure(&gw, || stalling.store(true, Ordering::Relaxed))
}

fn row(transport: &str, layer: &str, s: &Summary) {
    println!(
        "{transport:<10} {layer:<6} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>6} {:>10}",
        s.p50.as_secs_f64() * 1e3,
        s.p95.as_secs_f64() * 1e3,
        s.p99.as_secs_f64() * 1e3,
        s.hedges_launched,
        s.hedges_won,
        s.ejections,
    );
}

fn main() {
    println!(
        "gateway tail latency: 3 replicas, one stalling {} ms after warm-up, {REQUESTS} requests",
        STALL.as_millis()
    );
    println!(
        "{:<10} {:<6} {:>9} {:>9} {:>9} {:>8} {:>6} {:>10}",
        "transport", "tail", "p50(ms)", "p95(ms)", "p99(ms)", "hedges", "won", "ejections"
    );
    for (transport, run) in
        [("mem", run_mem as fn(bool) -> Summary), ("tcp", run_tcp as fn(bool) -> Summary)]
    {
        let off = run(false);
        let on = run(true);
        row(transport, "off", &off);
        row(transport, "on", &on);
        let factor = off.p99.as_secs_f64() / on.p99.as_secs_f64().max(1e-9);
        println!("{transport}: tail layer cuts p99 by {factor:.1}x (target >= 2x)");
        assert!(
            factor >= 2.0,
            "{transport}: hedging + ejection must cut p99 at least 2x (got {factor:.2}x)"
        );
        assert!(on.hedges_launched > 0, "{transport}: the tail layer never hedged");
        assert!(on.ejections > 0, "{transport}: the stalling replica was never ejected");
    }
    println!("PASS");
}
