//! Property tests: serialization round-trips and pointer laws.

use proptest::prelude::*;
use soc_json::{pointer, Number, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        (-1e12f64..1e12).prop_map(|f| Value::Number(Number::Float(f))),
        "[ -~é中\\n\\t]{0,16}".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            proptest::collection::vec(("[a-z~/]{0,6}", inner), 0..5)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trip(v in value_strategy()) {
        let text = v.to_compact();
        let back = Value::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip(v in value_strategy()) {
        let text = v.to_pretty();
        let back = Value::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn serialization_is_deterministic(v in value_strategy()) {
        prop_assert_eq!(v.to_compact(), v.to_compact());
    }

    #[test]
    fn parser_never_panics(s in "[ -~{}\\[\\]\"\\\\]{0,64}") {
        let _ = Value::parse(&s);
    }

    #[test]
    fn pointer_reaches_every_object_member(
        key in "[a-z~/]{1,6}",
        val in value_strategy(),
    ) {
        let obj = Value::Object(vec![(key.clone(), val.clone())]);
        let ptr = format!("/{}", pointer::encode_token(&key));
        prop_assert_eq!(obj.pointer(&ptr), Some(&val));
    }

    #[test]
    fn pointer_reaches_every_array_item(items in proptest::collection::vec(any::<i64>(), 1..8)) {
        let arr = Value::Array(items.iter().map(|&i| Value::from(i)).collect());
        for (i, expect) in items.iter().enumerate() {
            let got = arr.pointer(&format!("/{i}")).and_then(Value::as_i64);
            prop_assert_eq!(got, Some(*expect));
        }
    }

    #[test]
    fn integers_stay_exact(i in any::<i64>()) {
        let v = Value::from(i);
        let back = Value::parse(&v.to_compact()).unwrap();
        prop_assert_eq!(back.as_i64(), Some(i));
    }
}
