/root/repo/target/debug/deps/table1_3_acm-d7dc81dd222d0a23.d: crates/soc-bench/src/bin/table1_3_acm.rs

/root/repo/target/debug/deps/table1_3_acm-d7dc81dd222d0a23: crates/soc-bench/src/bin/table1_3_acm.rs

crates/soc-bench/src/bin/table1_3_acm.rs:
