//! Offline stand-in for the `proptest` crate.
//!
//! A minimal property-testing harness implementing the API surface this
//! workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, [`arbitrary::any`], ranges and tuples as
//! strategies, `&str` regex-subset string strategies,
//! [`collection::vec`], [`option::of`], [`string::string_regex`],
//! [`sample::Index`], and the [`proptest!`] / [`prop_assert!`] family of
//! macros. Differences from real proptest: no shrinking (a failing case
//! reports its inputs but is not minimised), and generation is
//! deterministic per case index so failures reproduce across runs.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! Configuration, RNG, and failure plumbing for [`crate::proptest!`].

    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// Deterministic per-case random source handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for the `case`-th test case; same case → same stream.
        pub fn for_case(case: u32) -> Self {
            TestRng(StdRng::seed_from_u64(
                0x50C5_EED0_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`; try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "inputs rejected: {m}"),
            }
        }
    }

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf, `recurse` wraps a
    /// strategy for subtrees into a strategy for one level up. `depth`
    /// bounds nesting; the size hints are accepted for API parity.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }
}

/// A cloneable, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: self.f.clone() }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// String-literal strategies: the pattern is a regex subset (see
/// [`string::string_regex`]) generating matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = string::compile(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"));
        string::gen_string(&nodes, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod arbitrary {
    //! `any::<T>()`: the canonical strategy for a type.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index::from_raw(rand::RngCore::next_u64(rng) as usize)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-low, exclusive-high bounds on a collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: r.end().saturating_add(1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), size: self.size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy { inner: self.inner.clone() }
        }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_bool(0.8) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of the inner strategy most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling helper types.

    /// An index into a slice whose length is unknown at generation time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn from_raw(raw: usize) -> Self {
            Index(raw)
        }

        /// The element this index selects from `slice` (panics if empty).
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            assert!(!slice.is_empty(), "Index::get on empty slice");
            &slice[self.0 % slice.len()]
        }

        /// This index reduced into `0..len` (panics if `len == 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len != 0, "Index::index with len 0");
            self.0 % len
        }
    }
}

pub mod string {
    //! String strategies from regex-subset patterns.
    //!
    //! Supported syntax: literal chars, `\n`/`\t`/`\r` and escaped
    //! punctuation, character classes with ranges (`[a-z0-9._-]`),
    //! class intersection-subtraction (`[ -~&&[^{}]]`), negated classes
    //! over printable ASCII, groups with alternation
    //! (`(foo|bar)`), and `{n}` / `{m,n}` / `?` / `*` / `+` repetition.
    //! A `{` that does not start a well-formed counted repetition is a
    //! literal, matching the regex crate's behaviour.

    use super::{Strategy, TestRng};

    /// A parse-time error for an unsupported or malformed pattern.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "bad regex strategy: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    pub(crate) enum Node {
        Lit(char),
        Class(Vec<char>),
        Group(Vec<Vec<Node>>),
        Repeat(Box<Node>, u32, u32),
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn peek_at(&self, ahead: usize) -> Option<char> {
            self.chars.get(self.pos + ahead).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn expect(&mut self, want: char) -> Result<(), Error> {
            match self.bump() {
                Some(c) if c == want => Ok(()),
                other => Err(Error(format!("expected {want:?}, found {other:?}"))),
            }
        }

        /// One escape-resolved char (after a `\`).
        fn escaped(&mut self) -> Result<char, Error> {
            match self.bump() {
                Some('n') => Ok('\n'),
                Some('t') => Ok('\t'),
                Some('r') => Ok('\r'),
                Some(c) => Ok(c),
                None => Err(Error("dangling escape".into())),
            }
        }

        /// A sequence of atoms, stopping at `)`/`|` or end of input.
        fn seq(&mut self) -> Result<Vec<Node>, Error> {
            let mut out = Vec::new();
            while let Some(c) = self.peek() {
                if c == ')' || c == '|' {
                    break;
                }
                let atom = self.atom()?;
                out.push(self.maybe_repeat(atom)?);
            }
            Ok(out)
        }

        fn atom(&mut self) -> Result<Node, Error> {
            match self.peek() {
                Some('[') => self.class(),
                Some('(') => self.group(),
                Some('\\') => {
                    self.bump();
                    Ok(Node::Lit(self.escaped()?))
                }
                Some(c) => {
                    self.bump();
                    Ok(Node::Lit(c))
                }
                None => Err(Error("expected atom, found end of pattern".into())),
            }
        }

        fn group(&mut self) -> Result<Node, Error> {
            self.expect('(')?;
            let mut alternatives = vec![self.seq()?];
            while self.peek() == Some('|') {
                self.bump();
                alternatives.push(self.seq()?);
            }
            self.expect(')')?;
            Ok(Node::Group(alternatives))
        }

        /// Character class. Returns its member set.
        fn class(&mut self) -> Result<Node, Error> {
            let set = self.class_set()?;
            if set.is_empty() {
                return Err(Error("empty character class".into()));
            }
            Ok(Node::Class(set))
        }

        fn class_set(&mut self) -> Result<Vec<char>, Error> {
            self.expect('[')?;
            let negated = if self.peek() == Some('^') {
                self.bump();
                true
            } else {
                false
            };
            let mut set: Vec<char> = Vec::new();
            loop {
                match self.peek() {
                    None => return Err(Error("unterminated character class".into())),
                    Some(']') => {
                        self.bump();
                        break;
                    }
                    // `&&[...]`: intersect (or subtract a negated set).
                    Some('&') if self.peek_at(1) == Some('&') => {
                        self.bump();
                        self.bump();
                        if self.peek() != Some('[') {
                            return Err(Error("`&&` must be followed by a class".into()));
                        }
                        // A negated operand comes back already complemented,
                        // so intersection covers both `&&[..]` and `&&[^..]`.
                        let inner = self.class_set()?;
                        set.retain(|c| inner.contains(c));
                        // `&&[..]` must close the class next.
                        self.expect(']')?;
                        break;
                    }
                    Some(_) => {
                        let lo = if self.peek() == Some('\\') {
                            self.bump();
                            self.escaped()?
                        } else {
                            self.bump().unwrap()
                        };
                        // A range unless the `-` is last-in-class.
                        if self.peek() == Some('-')
                            && self.peek_at(1).is_some()
                            && self.peek_at(1) != Some(']')
                        {
                            self.bump();
                            let hi = if self.peek() == Some('\\') {
                                self.bump();
                                self.escaped()?
                            } else {
                                self.bump().unwrap()
                            };
                            if (hi as u32) < (lo as u32) {
                                return Err(Error(format!("bad range {lo:?}-{hi:?}")));
                            }
                            for cp in lo as u32..=hi as u32 {
                                if let Some(c) = char::from_u32(cp) {
                                    set.push(c);
                                }
                            }
                        } else {
                            set.push(lo);
                        }
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            if negated {
                // Complement over printable ASCII plus common whitespace.
                let universe = (' '..='~').chain(['\n', '\t']);
                let complement: Vec<char> = universe.filter(|c| !set.contains(c)).collect();
                return Ok(complement);
            }
            Ok(set)
        }

        /// Wrap `atom` in a repetition if a quantifier follows.
        fn maybe_repeat(&mut self, atom: Node) -> Result<Node, Error> {
            match self.peek() {
                Some('?') => {
                    self.bump();
                    Ok(Node::Repeat(Box::new(atom), 0, 1))
                }
                Some('*') => {
                    self.bump();
                    Ok(Node::Repeat(Box::new(atom), 0, 8))
                }
                Some('+') => {
                    self.bump();
                    Ok(Node::Repeat(Box::new(atom), 1, 8))
                }
                Some('{') => {
                    let saved = self.pos;
                    match self.counted() {
                        Some((lo, hi)) => Ok(Node::Repeat(Box::new(atom), lo, hi)),
                        None => {
                            // Not a quantifier — `{` is a literal.
                            self.pos = saved;
                            Ok(atom)
                        }
                    }
                }
                _ => Ok(atom),
            }
        }

        /// Parse `{n}` or `{m,n}`; `None` (no consumption) if malformed.
        fn counted(&mut self) -> Option<(u32, u32)> {
            let saved = self.pos;
            self.bump(); // `{`
            let lo = self.digits()?;
            match self.peek() {
                Some('}') => {
                    self.bump();
                    Some((lo, lo))
                }
                Some(',') => {
                    self.bump();
                    let hi = self.digits()?;
                    if self.peek() == Some('}') && lo <= hi {
                        self.bump();
                        Some((lo, hi))
                    } else {
                        self.pos = saved;
                        None
                    }
                }
                _ => {
                    self.pos = saved;
                    None
                }
            }
        }

        fn digits(&mut self) -> Option<u32> {
            let mut n: u32 = 0;
            let mut any = false;
            while let Some(c) = self.peek() {
                match c.to_digit(10) {
                    Some(d) => {
                        self.bump();
                        n = n.checked_mul(10)?.checked_add(d)?;
                        any = true;
                    }
                    None => break,
                }
            }
            any.then_some(n)
        }
    }

    pub(crate) fn compile(pattern: &str) -> Result<Vec<Node>, Error> {
        let mut p = Parser { chars: pattern.chars().collect(), pos: 0 };
        let mut alternatives = vec![p.seq()?];
        // A bare top-level alternation: `a|b`.
        while p.peek() == Some('|') {
            p.bump();
            alternatives.push(p.seq()?);
        }
        if p.pos != p.chars.len() {
            return Err(Error(format!("unexpected {:?} at offset {}", p.peek(), p.pos)));
        }
        if alternatives.len() == 1 {
            Ok(alternatives.pop().unwrap())
        } else {
            Ok(vec![Node::Group(alternatives)])
        }
    }

    pub(crate) fn gen_string(nodes: &[Node], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in nodes {
            gen_node(node, rng, &mut out);
        }
        out
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        use rand::Rng;
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
            Node::Group(alternatives) => {
                let pick = rng.gen_range(0..alternatives.len());
                for n in &alternatives[pick] {
                    gen_node(n, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let count = rng.gen_range(*lo..=*hi);
                for _ in 0..count {
                    gen_node(inner, rng, out);
                }
            }
        }
    }

    /// Strategy generating strings matching a regex-subset `pattern`.
    pub struct RegexGeneratorStrategy {
        nodes: Vec<Node>,
    }

    impl Clone for RegexGeneratorStrategy {
        fn clone(&self) -> Self {
            RegexGeneratorStrategy { nodes: self.nodes.clone() }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            gen_string(&self.nodes, rng)
        }
    }

    /// Compile `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        Ok(RegexGeneratorStrategy { nodes: compile(pattern)? })
    }
}

pub mod strategy {
    //! Re-exports of the strategy types (mirrors proptest's layout).

    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Qualified access root, as in `prop::sample::Index`.
    pub use crate as prop;
}

/// Run property tests: optional `#![proptest_config(..)]`, then
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategy = ( $( $strat, )+ );
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    let ( $($pat,)+ ) =
                        $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            __rejected += 1;
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!("proptest case {} failed: {}", __case, __msg);
                        }
                    }
                }
                // Rejecting every case means the property never ran.
                assert!(
                    __rejected < __config.cases,
                    "all {} cases rejected by prop_assume!",
                    __config.cases,
                );
            }
        )+
    };
}

/// Assert a condition inside `proptest!`, failing the case if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside `proptest!` (borrows its operands).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                            __l, __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                            __l,
                            __r,
                            format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Assert inequality inside `proptest!` (borrows its operands).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: {:?}", __l),
                    ));
                }
            }
        }
    };
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

pub use arbitrary::any;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let t = Strategy::generate(&"[ -~&&[^{}]]{0,8}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c) && c != '{' && c != '}'), "{t:?}");

            let u = Strategy::generate(&"(soap:Client|soap:Server)", &mut rng);
            assert!(u == "soap:Client" || u == "soap:Server", "{u:?}");

            let v = Strategy::generate(&"/{}", &mut rng);
            assert_eq!(v, "/{}");

            let w = Strategy::generate(&"[ -~é中\\n\\t]{0,16}", &mut rng);
            assert!(
                w.chars().all(|c| (' '..='~').contains(&c)
                    || c == 'é'
                    || c == '中'
                    || c == '\n'
                    || c == '\t'),
                "{w:?}"
            );

            let x = Strategy::generate(&"[a-z0-9/._-]{1,8}", &mut rng);
            assert!(
                x.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/._-".contains(c)),
                "{x:?}"
            );
        }
    }

    #[test]
    fn string_regex_rejects_garbage() {
        assert!(crate::string::string_regex("[z-a]").is_err());
        assert!(crate::string::string_regex("(unclosed").is_err());
        assert!(crate::string::string_regex("[]").is_err());
        assert!(crate::string::string_regex("ok{2,5}").is_ok());
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(0u8), (10u8..20).prop_map(|v| v * 2),];
        let mut rng = TestRng::for_case(1);
        let mut saw_zero = false;
        let mut saw_even_big = false;
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            if v == 0 {
                saw_zero = true;
            } else {
                assert!((20..40).contains(&v) && v % 2 == 0);
                saw_even_big = true;
            }
        }
        assert!(saw_zero && saw_even_big);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>().prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_binds_multiple_args(
            xs in crate::collection::vec(any::<i64>(), 0..10),
            k in 1usize..5,
            flag in any::<bool>(),
        ) {
            prop_assume!(k != 4);
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(k >= 1, true);
            if flag {
                prop_assert_ne!(k, 0);
            }
        }

        #[test]
        fn option_and_index_strategies(
            maybe in crate::option::of("[a-z]{1,3}"),
            ix in any::<prop::sample::Index>(),
        ) {
            if let Some(s) = &maybe {
                prop_assert!((1..=3).contains(&s.len()));
            }
            let items = [10, 20, 30];
            let picked = *ix.get(&items);
            prop_assert!(items.contains(&picked));
        }
    }
}
