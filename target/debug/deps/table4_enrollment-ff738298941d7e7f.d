/root/repo/target/debug/deps/table4_enrollment-ff738298941d7e7f.d: crates/soc-bench/src/bin/table4_enrollment.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_enrollment-ff738298941d7e7f.rmeta: crates/soc-bench/src/bin/table4_enrollment.rs Cargo.toml

crates/soc-bench/src/bin/table4_enrollment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
