//! Property tests for the HTTP substrate: wire codec round-trips,
//! URL/form encoding laws, and cookie handling.

use std::io::BufReader;

use proptest::prelude::*;
use soc_http::codec::{self, DEFAULT_BODY_LIMIT};
use soc_http::url::{encode_form, parse_form, percent_decode, percent_encode, Url};
use soc_http::{Headers, Method, Request, Response, Status, Version};

fn method_strategy() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Post),
        Just(Method::Put),
        Just(Method::Delete),
        Just(Method::Head),
        Just(Method::Options),
        Just(Method::Patch),
    ]
}

fn header_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,12}", "[ -~&&[^\r\n]]{0,24}"), 0..5)
        .prop_map(|pairs| {
            pairs
                .into_iter()
                .filter(|(k, _)| {
                    // Reserved names the codec manages itself.
                    !k.eq_ignore_ascii_case("content-length")
                        && !k.eq_ignore_ascii_case("transfer-encoding")
                        && !k.eq_ignore_ascii_case("host")
                })
                .map(|(k, v)| (k, v.trim().to_string()))
                .collect()
        })
}

proptest! {
    #[test]
    fn request_wire_round_trip(
        method in method_strategy(),
        path in "/[a-z0-9/._-]{0,24}",
        headers in header_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut req = Request::new(method, path.clone()).with_body_bytes(body.clone());
        for (k, v) in &headers {
            req.headers.add(k.as_str(), v.as_str());
        }
        let mut wire = Vec::new();
        codec::write_request(&mut wire, &req, Some("h")).unwrap();
        let parsed = codec::read_request(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT).unwrap();
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.target, path);
        prop_assert_eq!(parsed.body, body);
        for (k, v) in &headers {
            prop_assert!(
                parsed.headers.get_all(k).any(|pv| pv == v),
                "header {k:?}={v:?} lost in transit"
            );
        }
    }

    #[test]
    fn response_wire_round_trip(
        code in 100u16..599,
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let resp = Response::new(Status(code)).with_body_bytes(body.clone());
        let mut wire = Vec::new();
        codec::write_response(&mut wire, &resp).unwrap();
        let parsed =
            codec::read_response(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT).unwrap();
        prop_assert_eq!(parsed.status.0, code);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn chunked_decoding_matches_plain_body(
        body in proptest::collection::vec(any::<u8>(), 0..800),
        chunk in 1usize..64,
    ) {
        let mut wire = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        wire.extend_from_slice(&codec::encode_chunked(&body, chunk));
        let parsed = codec::read_request(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT).unwrap();
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::read_request(&mut BufReader::new(&bytes[..]), 1024);
        let _ = codec::read_response(&mut BufReader::new(&bytes[..]), 1024);
    }

    /// Adversarial chunk-size lines: arbitrary hex strings (including
    /// ones near and past `usize::MAX`) with arbitrary extensions. The
    /// decoder must never panic, and whatever body it accepts must be
    /// within the limit — the overflow bug let a huge claimed size slip
    /// past the check and drive a giant allocation.
    #[test]
    fn adversarial_chunk_sizes_never_panic_or_overallocate(
        size_hex in "[0-9a-fA-F]{1,20}",
        ext in "(;[a-z]{0,8}(=[a-z0-9]{0,8})?)?",
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        const LIMIT: usize = 4096;
        let mut wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        wire.extend_from_slice(format!("{size_hex}{ext}\r\n").as_bytes());
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(b"\r\n0\r\n\r\n");
        // Rejection is always acceptable; acceptance must respect the limit.
        if let Ok(req) = codec::read_request(&mut BufReader::new(&wire[..]), LIMIT) {
            prop_assert!(req.body.len() <= LIMIT);
        }
    }

    /// Trailer sections of arbitrary size: the decoder either accepts a
    /// bounded section or rejects it — it must not buffer unboundedly
    /// or panic, and acceptance implies the section fit the budget.
    #[test]
    fn trailer_sections_are_bounded(
        lines in proptest::collection::vec(("[A-Za-z-]{1,10}", "[ -~&&[^\r\n]]{0,200}"), 0..64),
    ) {
        let mut wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n".to_vec();
        let mut section = 0usize;
        for (k, v) in &lines {
            let line = format!("{k}: {v}\r\n");
            section += line.len();
            wire.extend_from_slice(line.as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        match codec::read_request(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT) {
            Ok(req) => prop_assert_eq!(req.body.as_slice(), b"abc".as_slice()),
            Err(_) => prop_assert!(
                section + 2 >= 4096,
                "a small trailer section ({section} bytes) must parse"
            ),
        }
    }

    /// `Connection` is a comma-separated token list: `wants_close` must
    /// key on whether the `close` / `keep-alive` *token* is present —
    /// with any casing and padding — never on substring matching.
    #[test]
    fn connection_close_tokenization(
        mut tokens in proptest::collection::vec("[a-zA-Z-]{1,12}", 0..4),
        close_at in proptest::option::of(0usize..4),
        pad in "[ \t]{0,3}",
    ) {
        tokens.retain(|t| !t.eq_ignore_ascii_case("close") && !t.eq_ignore_ascii_case("keep-alive"));
        if let Some(i) = close_at {
            tokens.insert(i.min(tokens.len()), "Close".to_string());
        }
        let value = tokens
            .iter()
            .map(|t| format!("{pad}{t}{pad}"))
            .collect::<Vec<_>>()
            .join(",");
        let mut headers = Headers::new();
        if !tokens.is_empty() {
            headers.set("Connection", value.as_str());
        }
        prop_assert_eq!(
            codec::wants_close(Version::Http11, &headers),
            close_at.is_some(),
            "Connection: {:?}", value
        );
        // HTTP/1.0 closes unless keep-alive is an explicit token; a
        // `close` token certainly never keeps it open.
        prop_assert!(codec::wants_close(Version::Http10, &headers));
    }

    #[test]
    fn percent_encoding_round_trip(s in "[ -~é中\\n]{0,48}") {
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    #[test]
    fn form_encoding_round_trip(
        pairs in proptest::collection::vec(("[a-z]{1,8}", "[ -~]{0,16}"), 0..6),
    ) {
        let fields: Vec<(String, String)> = pairs;
        let enc = encode_form(&fields);
        prop_assert_eq!(parse_form(&enc), fields);
    }

    #[test]
    fn url_display_reparses(
        host in "[a-z][a-z0-9.-]{0,16}",
        port in 1u16..65535,
        path in "/[a-z0-9/._-]{0,16}",
    ) {
        let raw = format!("http://{host}:{port}{path}");
        let url = Url::parse(&raw).unwrap();
        let again = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url, again);
    }

    #[test]
    fn headers_set_then_get(k in "[A-Za-z-]{1,10}", v in "[ -~]{0,20}") {
        let mut h = Headers::new();
        h.set(k.as_str(), v.trim());
        prop_assert_eq!(h.get(&k.to_ascii_uppercase()), Some(v.trim()));
        prop_assert_eq!(h.get_all(&k).count(), 1);
    }
}
