//! # soc-gateway — a QoS-aware service gateway
//!
//! The paper's recurring complaint about real-world service-oriented
//! computing is that free public services are slow, overloaded, and
//! "often offline or removed without notice". This crate is the
//! dependability layer the course builds on top of that reality: one
//! gateway endpoint fronting any number of registered replicas, adding
//!
//! * **endpoint resolution** against the service directory, cached per
//!   lease interval ([`resolver`]);
//! * **load balancing** — round-robin, random-two-choice, or
//!   least-latency fed by the shared QoS monitor ([`balance`]);
//! * **circuit breaking** per upstream replica ([`breaker`]);
//! * **retries** with exponential backoff, jitter, and a per-request
//!   deadline budget — idempotent methods only, by default;
//! * **hedged requests** — a primary that outlives its replica's
//!   observed p95 races a backup on a second replica, and the first
//!   success answers ([`hedge`]);
//! * **outlier ejection** — replicas far slower or more error-prone
//!   than their peers' median are pulled from balancing until a
//!   cool-off lapses ([`balance::OutlierEjector`]);
//! * **admission control** — token-bucket rate limiting (global and
//!   per-service quota) plus a concurrency cap, shedding with `503`
//!   + `Retry-After` ([`limit`]);
//! * **observability** — per-upstream counters, breaker states,
//!   hedge/ejection counters, and latency histograms on
//!   `/gateway/stats` ([`stats`]).
//!
//! The gateway is itself a [`Handler`], so it runs anywhere a service
//! does: hosted on a [`MemNetwork`](soc_http::MemNetwork) for
//! deterministic in-process topologies, or bound to a TCP port with
//! [`HttpServer`](soc_http::HttpServer). Likewise it forwards through
//! any [`Transport`], so upstreams may be in-memory or real sockets.
//!
//! ```
//! use std::sync::Arc;
//! use soc_http::{MemNetwork, Request, Response, Transport};
//! use soc_gateway::{Gateway, GatewayConfig};
//!
//! let net = MemNetwork::new();
//! net.host("a", |_req: Request| Response::text("from a"));
//! net.host("b", |_req: Request| Response::text("from b"));
//!
//! let gw = Gateway::new(Arc::new(net.clone()), GatewayConfig::default());
//! gw.register("echo", &["mem://a", "mem://b"]);
//! net.host("gw", gw);
//!
//! let resp = net.send(Request::get("mem://gw/svc/echo/hello")).unwrap();
//! assert!(resp.status.is_success());
//! ```

pub mod balance;
pub mod breaker;
pub mod hedge;
pub mod limit;
pub mod resolver;
pub mod stats;

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use soc_http::mem::Transport;
use soc_http::{Handler, Request, Response, Status};
use soc_json::Value;
use soc_observe::{SpanKind, TraceContext};
use soc_registry::monitor::QosMonitor;
use soc_store::ShardMap;

pub use balance::{Balancer, OutlierConfig, OutlierEjector, Policy, UpstreamView};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Pass};
pub use hedge::{HedgeConfig, HedgeOutcome};
pub use limit::{ConcurrencyLimit, ConcurrencyPermit, KeyedBuckets, TokenBucket};
pub use resolver::{RegistryResolver, Resolve, StaticResolver};
pub use stats::{GatewayStats, LatencyHistogram, UpstreamStats};

use balance::XorShift64;

/// Everything tunable about a gateway.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Load-balancing policy.
    pub policy: Policy,
    /// Extra attempts after the first (so `3` means up to 4 sends).
    pub max_retries: u32,
    /// First backoff pause; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (before jitter).
    pub max_backoff: Duration,
    /// Whole-request budget: resolution, all attempts, and backoff
    /// pauses together. Expired budget answers `504`.
    pub request_deadline: Duration,
    /// Retry non-idempotent methods too. Off by default: replaying a
    /// `POST` that may have half-happened is the caller's call, not
    /// the gateway's.
    pub retry_non_idempotent: bool,
    /// Circuit-breaker tuning, applied per upstream.
    pub breaker: BreakerConfig,
    /// Request-hedging tuning.
    pub hedge: HedgeConfig,
    /// Outlier-ejection tuning.
    pub outlier: OutlierConfig,
    /// Token-bucket burst size.
    pub rate_capacity: f64,
    /// Token-bucket refill, tokens per second.
    pub rate_refill_per_sec: f64,
    /// Per-service quota burst size, layered under the global bucket.
    /// Non-positive (the default) disables per-service quotas.
    pub service_rate_capacity: f64,
    /// Per-service quota refill, tokens per second.
    pub service_rate_refill_per_sec: f64,
    /// Concurrent in-flight request cap.
    pub max_concurrent: usize,
    /// PRNG seed for jitter and two-choice sampling.
    pub seed: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            policy: Policy::RoundRobin,
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            request_deadline: Duration::from_secs(2),
            retry_non_idempotent: false,
            breaker: BreakerConfig::default(),
            hedge: HedgeConfig::default(),
            outlier: OutlierConfig::default(),
            rate_capacity: 10_000.0,
            rate_refill_per_sec: 10_000.0,
            service_rate_capacity: 0.0,
            service_rate_refill_per_sec: 0.0,
            max_concurrent: 1_024,
            seed: 0x50C6_A7E0,
        }
    }
}

/// Observe-plane counters mirroring the JSON stats, resolved from the
/// global registry once at construction so the hot path pays an atomic
/// increment, not a registry lookup.
struct ObsMetrics {
    admitted: soc_observe::Counter,
    shed_rate: soc_observe::Counter,
    shed_load: soc_observe::Counter,
    shed_service: soc_observe::Counter,
    hedges_launched: soc_observe::Counter,
    hedges_won: soc_observe::Counter,
    shard_map_rejects: soc_observe::Counter,
    shard_redirects: soc_observe::Counter,
}

impl ObsMetrics {
    fn new() -> Self {
        let m = soc_observe::metrics();
        ObsMetrics {
            admitted: m.counter("soc_gateway_admitted_total", &[]),
            shed_rate: m.counter("soc_gateway_shed_total", &[("reason", "rate")]),
            shed_load: m.counter("soc_gateway_shed_total", &[("reason", "concurrency")]),
            shed_service: m.counter("soc_gateway_shed_total", &[("reason", "service_quota")]),
            hedges_launched: m.counter("soc_gateway_hedges_total", &[("event", "launched")]),
            hedges_won: m.counter("soc_gateway_hedges_total", &[("event", "won")]),
            shard_map_rejects: m.counter("soc_gateway_shard_map_rejects_total", &[]),
            shard_redirects: m.counter("soc_gateway_shard_redirects_total", &[]),
        }
    }
}

struct Inner {
    transport: Arc<dyn Transport>,
    resolver: Arc<dyn Resolve>,
    static_resolver: Option<Arc<StaticResolver>>,
    config: GatewayConfig,
    balancer: Balancer,
    breakers: RwLock<HashMap<String, Arc<CircuitBreaker>>>,
    bucket: TokenBucket,
    service_buckets: KeyedBuckets,
    limit: ConcurrencyLimit,
    ejector: OutlierEjector,
    stats: GatewayStats,
    obs: ObsMetrics,
    monitor: Arc<QosMonitor>,
    /// Per-service shard maps for key-affine routing: a request that
    /// carries `X-Shard-Key` against a mapped service goes to the
    /// key's owners (writes: primary only) instead of the balancer's
    /// pick. See [`Gateway::set_shard_map`].
    shard_maps: RwLock<HashMap<String, Arc<ShardMap>>>,
    rng: Mutex<XorShift64>,
    /// Lazily built on the first armed hedge: most gateways (and most
    /// requests) never pay for it. Sized by `config.hedge.threads`,
    /// NOT by cores — arms block in sends, and on a small host a
    /// cores-sized pool could never run a backup beside its primary.
    hedge_pool: std::sync::OnceLock<soc_parallel::ThreadPool>,
}

impl Inner {
    fn hedge_pool(&self) -> &soc_parallel::ThreadPool {
        self.hedge_pool
            .get_or_init(|| soc_parallel::ThreadPool::new(self.config.hedge.threads.max(2)))
    }

    fn breaker_for(&self, endpoint: &str) -> Arc<CircuitBreaker> {
        if let Some(b) = self.breakers.read().get(endpoint) {
            return b.clone();
        }
        self.breakers
            .write()
            .entry(endpoint.to_string())
            .or_insert_with(|| Arc::new(CircuitBreaker::new(self.config.breaker)))
            .clone()
    }
}

/// The gateway. Cheap to clone (shared internals); host a clone on a
/// [`MemNetwork`](soc_http::MemNetwork) or an
/// [`HttpServer`](soc_http::HttpServer) and keep one for inspection.
///
/// Routes:
/// * `/svc/{service}/{path...}` — proxy to a replica of `{service}`,
///   forwarding `{path...}` plus the query string.
/// * `/gateway/stats` — JSON snapshot of the counters.
/// * `/observe/metrics`, `/observe/traces`, `/observe/traces/{id}` —
///   the process-wide metrics and trace endpoints
///   ([`soc_http::ObserveEndpoints`]).
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<Inner>,
}

impl Gateway {
    /// A gateway over `transport` with a built-in [`StaticResolver`]
    /// programmed via [`Gateway::register`].
    pub fn new(transport: Arc<dyn Transport>, config: GatewayConfig) -> Self {
        let static_resolver = Arc::new(StaticResolver::new());
        Self::build(transport, static_resolver.clone(), Some(static_resolver), config)
    }

    /// A gateway resolving upstreams through `resolver` — typically a
    /// [`RegistryResolver`] watching a live service directory.
    pub fn with_resolver(
        transport: Arc<dyn Transport>,
        resolver: Arc<dyn Resolve>,
        config: GatewayConfig,
    ) -> Self {
        Self::build(transport, resolver, None, config)
    }

    fn build(
        transport: Arc<dyn Transport>,
        resolver: Arc<dyn Resolve>,
        static_resolver: Option<Arc<StaticResolver>>,
        config: GatewayConfig,
    ) -> Self {
        let monitor = Arc::new(QosMonitor::new(transport.clone()));
        Gateway {
            inner: Arc::new(Inner {
                transport,
                resolver,
                static_resolver,
                balancer: Balancer::new(config.policy, config.seed),
                bucket: TokenBucket::new(config.rate_capacity, config.rate_refill_per_sec),
                service_buckets: KeyedBuckets::new(
                    config.service_rate_capacity,
                    config.service_rate_refill_per_sec,
                ),
                limit: ConcurrencyLimit::new(config.max_concurrent),
                ejector: OutlierEjector::new(config.outlier.clone()),
                stats: GatewayStats::new(),
                obs: ObsMetrics::new(),
                monitor,
                shard_maps: RwLock::new(HashMap::new()),
                rng: Mutex::new(XorShift64::new(config.seed ^ 0xBACC_0FF5)),
                breakers: RwLock::new(HashMap::new()),
                hedge_pool: std::sync::OnceLock::new(),
                config,
            }),
        }
    }

    /// Register replicas for `service` on the built-in static
    /// resolver.
    ///
    /// # Panics
    /// When the gateway was built with [`Gateway::with_resolver`]; a
    /// directory-backed gateway learns replicas from the directory.
    pub fn register(&self, service: &str, endpoints: &[&str]) {
        self.inner
            .static_resolver
            .as_ref()
            .expect("register() needs the built-in static resolver; this gateway resolves via a directory")
            .set(service, endpoints);
    }

    /// The QoS monitor fed by every proxied request — share it to see
    /// live per-replica latency, or to drive a least-latency policy
    /// from external probes too.
    pub fn monitor(&self) -> Arc<QosMonitor> {
        self.inner.monitor.clone()
    }

    /// Publish (or replace) the shard map for `service`. From then on
    /// a request carrying an `X-Shard-Key` header routes by the key:
    /// writes (anything but GET/HEAD) go only to the key's primary,
    /// reads may land on any owner. Requests without the header — and
    /// services without a map — keep the normal balanced path.
    ///
    /// Rebalancing is a re-publish: derive a fresh map from the
    /// current lease table ([`ShardMap::from_leases`]) whenever the
    /// directory version moves, and in-flight routing picks it up on
    /// the next request.
    ///
    /// Publishes compare-and-swap on the map version: an install older
    /// than what the gateway already routes by is rejected (returns
    /// `false` and counts in `shard_map_rejects`), so a delayed publish
    /// from a slow rebalancer can never roll routing back to a
    /// pre-failover map.
    pub fn set_shard_map(&self, service: &str, map: Arc<ShardMap>) -> bool {
        let mut maps = self.inner.shard_maps.write();
        if let Some(current) = maps.get(service) {
            if map.version() < current.version() {
                self.inner.stats.shard_map_rejects.fetch_add(1, Ordering::Relaxed);
                self.inner.obs.shard_map_rejects.inc();
                return false;
            }
        }
        maps.insert(service.to_string(), map);
        true
    }

    /// The shard map currently published for `service`.
    pub fn shard_map(&self, service: &str) -> Option<Arc<ShardMap>> {
        self.inner.shard_maps.read().get(service).cloned()
    }

    /// Shard-affine candidate endpoints for `req`, when they apply:
    /// the service has a published map, the request names a shard key,
    /// and the map yields owners. Writes narrow to the primary alone —
    /// forwarding a write to a replica would bounce off
    /// `not_primary` — while reads fan across all owners.
    fn shard_candidates(&self, service: &str, req: &Request) -> Option<Vec<String>> {
        let key = req.headers.get("X-Shard-Key")?;
        let map = self.inner.shard_maps.read().get(service)?.clone();
        let owners = map.owners(key);
        if owners.is_empty() {
            return None;
        }
        let write = !matches!(req.method, soc_http::Method::Get | soc_http::Method::Head);
        if write {
            Some(vec![owners[0].endpoint.clone()])
        } else {
            Some(owners.iter().map(|n| n.endpoint.clone()).collect())
        }
    }

    /// Chase a store node's `not_primary` redirect hint. Returns the
    /// follow-up response when `resp` is a 409 `not_primary` for a
    /// shard-keyed request and a hinted hop produced something better,
    /// `None` to fall through to the original response. Hops are
    /// bounded: a routing disagreement between nodes (both claiming
    /// the other owns the key) must surface, not loop.
    fn follow_not_primary(&self, req: &Request, rest: &str, resp: &Response) -> Option<Response> {
        const MAX_REDIRECT_HOPS: usize = 2;
        req.headers.get("X-Shard-Key")?;
        let mut hint = not_primary_hint(resp)?;
        let mut visited = Vec::new();
        let mut best = None;
        for _ in 0..MAX_REDIRECT_HOPS {
            if visited.contains(&hint) {
                break;
            }
            visited.push(hint.clone());
            self.inner.stats.shard_redirects.fetch_add(1, Ordering::Relaxed);
            self.inner.obs.shard_redirects.inc();
            let mut hop = req.clone();
            hop.target = join_target(&hint, rest);
            match self.inner.transport.send(hop) {
                Ok(r) => match not_primary_hint(&r) {
                    Some(next) => {
                        best = Some(r);
                        hint = next;
                    }
                    None if r.status.0 < 500 => return Some(r),
                    None => break,
                },
                Err(_) => break,
            }
        }
        best
    }

    /// The breaker state for one upstream endpoint, if it has been
    /// seen.
    pub fn breaker_state(&self, endpoint: &str) -> Option<BreakerState> {
        self.inner.breakers.read().get(endpoint).map(|b| b.state())
    }

    /// Replicas of `service` currently held out of balancing by the
    /// outlier ejector.
    pub fn ejected_endpoints(&self, service: &str) -> Vec<String> {
        self.inner.ejector.ejected_endpoints(service)
    }

    /// Gateway counters as JSON (the `/gateway/stats` payload).
    pub fn stats_json(&self) -> Value {
        // The ejector owns the authoritative event count; mirror it
        // into the stats snapshot.
        self.inner.stats.ejections.store(self.inner.ejector.total_ejections(), Ordering::Relaxed);
        self.inner.stats.to_json(
            self.inner.config.policy.as_str(),
            |endpoint| {
                self.inner
                    .breakers
                    .read()
                    .get(endpoint)
                    .map(|b| b.state().as_str())
                    .unwrap_or("closed")
            },
            |endpoint| self.inner.ejector.is_ejected(endpoint),
        )
    }

    /// Raw counters, for assertions and dashboards.
    pub fn stats(&self) -> &GatewayStats {
        &self.inner.stats
    }

    /// Proxy `req` to a replica of `service`, programmatically. The
    /// request's `target` is interpreted as the path (plus query) on
    /// the upstream service.
    pub fn call(&self, service: &str, req: Request) -> Response {
        let rest = req.target.trim_start_matches('/').to_string();
        self.dispatch(service, &rest, req)
    }

    fn breaker_for(&self, endpoint: &str) -> Arc<CircuitBreaker> {
        self.inner.breaker_for(endpoint)
    }

    fn shed(&self, reason: &str) -> Response {
        Response::error(
            Status::SERVICE_UNAVAILABLE,
            &format!("gateway shedding load ({reason}); retry shortly"),
        )
        .with_header("Retry-After", "1")
    }

    /// Exponential backoff with jitter, clipped to the deadline.
    fn backoff(&self, attempt: u32, deadline: Instant) {
        let cfg = &self.inner.config;
        let exp = cfg.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let jitter = self.inner.rng.lock().jitter();
        let pause = exp.min(cfg.max_backoff).mul_f64(jitter);
        let pause = pause.min(deadline.saturating_duration_since(Instant::now()));
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    }

    fn dispatch(&self, service: &str, rest: &str, req: Request) -> Response {
        let inner = &self.inner;
        // The request's span: child of whatever the server layer (or a
        // workflow engine) activated, root otherwise. Every attempt —
        // retries and hedge backups included — hangs off this span, so
        // one trace shows the whole race.
        let mut gw_span = soc_observe::span("gateway.request", SpanKind::Internal);
        gw_span.set_attr("service", service);
        let _active = gw_span.activate();
        let attempt_parent = gw_span.context();
        if !inner.bucket.try_acquire() {
            inner.stats.shed_rate.fetch_add(1, Ordering::Relaxed);
            inner.obs.shed_rate.inc();
            gw_span.set_error("shed: rate limit");
            return self.shed("rate limit");
        }
        // Per-service quota under the global bucket: one hot service
        // exhausts its own allowance without starving the others.
        if !inner.service_buckets.try_acquire(service) {
            inner.stats.shed_service.fetch_add(1, Ordering::Relaxed);
            inner.obs.shed_service.inc();
            gw_span.set_error("shed: service quota");
            return self.shed("service quota");
        }
        let _permit = match inner.limit.try_acquire() {
            Some(p) => p,
            None => {
                inner.stats.shed_load.fetch_add(1, Ordering::Relaxed);
                inner.obs.shed_load.inc();
                gw_span.set_error("shed: concurrency cap");
                return self.shed("concurrency cap");
            }
        };
        inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
        inner.obs.admitted.inc();

        let deadline = Instant::now() + inner.config.request_deadline;
        // A POST carrying an Idempotency-Key is replay-safe: the
        // origin deduplicates on the key, so retrying (and hedging,
        // below) cannot double-execute its side effect.
        let retryable = req.is_replay_safe() || inner.config.retry_non_idempotent;
        let attempts = if retryable { inner.config.max_retries + 1 } else { 1 };
        let mut last: Option<Response> = None;

        for attempt in 0..attempts {
            if Instant::now() >= deadline {
                inner.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                gw_span.set_error("deadline exceeded");
                return Response::error(
                    Status::GATEWAY_TIMEOUT,
                    &format!("gateway deadline exceeded calling '{service}'"),
                );
            }
            // Re-resolve on every attempt: a retry should see replicas
            // that joined (or leases that expired) since the last try —
            // or, for a shard-keyed request, a re-published map.
            let endpoints = match self.shard_candidates(service, &req) {
                Some(eps) => {
                    gw_span.set_attr("shard_routed", "true");
                    eps
                }
                None => inner.resolver.resolve(service),
            };
            if endpoints.is_empty() {
                inner.stats.no_upstream.fetch_add(1, Ordering::Relaxed);
                gw_span.set_error("no upstream");
                return Response::error(
                    Status::SERVICE_UNAVAILABLE,
                    &format!("no upstream registered for '{service}'"),
                );
            }
            let mut admitted: Vec<(String, Arc<CircuitBreaker>, Pass)> = endpoints
                .into_iter()
                .filter_map(|ep| {
                    let b = self.breaker_for(&ep);
                    b.try_pass().map(|pass| (ep, b, pass))
                })
                .collect();
            if admitted.is_empty() {
                last = Some(
                    Response::error(
                        Status::SERVICE_UNAVAILABLE,
                        &format!("all replicas of '{service}' are circuit-broken"),
                    )
                    .with_header("Retry-After", "1"),
                );
                // Waiting may let a cool-down elapse and a breaker
                // half-open.
                if attempt + 1 < attempts {
                    self.backoff(attempt, deadline);
                }
                continue;
            }

            let views: Vec<UpstreamView> = admitted
                .iter()
                .map(|(ep, _, _)| {
                    let s = inner.stats.upstream(ep);
                    UpstreamView {
                        endpoint: ep.clone(),
                        in_flight: s.in_flight.load(Ordering::Relaxed),
                        mean_latency: inner.monitor.mean_latency(ep),
                    }
                })
                .collect();
            // Statistical outliers leave the candidate set; their
            // claimed passes go straight back. `filter` fails open, so
            // `views` stays non-empty while `admitted` is.
            let (views, ejected) = inner.ejector.filter(service, views, &inner.monitor);
            if !ejected.is_empty() {
                admitted.retain(|(ep, b, pass)| {
                    if ejected.contains(ep) {
                        b.release_pass(*pass);
                        false
                    } else {
                        true
                    }
                });
            }
            let Some(idx) = inner.balancer.pick(service, &views) else {
                // No viable pick: hand back every claimed pass rather
                // than wedging half-open breakers, then retry.
                for (_, b, pass) in &admitted {
                    b.release_pass(*pass);
                }
                if attempt + 1 < attempts {
                    self.backoff(attempt, deadline);
                }
                continue;
            };
            // Unpicked candidates hand back any half-open probe slot
            // their try_pass claimed; a hedge backup re-admits itself
            // at hedge time instead of squatting on a slot.
            let mut backup_pool = Vec::with_capacity(admitted.len() - 1);
            for (i, (ep, b, pass)) in admitted.iter().enumerate() {
                if i != idx {
                    b.release_pass(*pass);
                    backup_pool.push(ep.clone());
                }
            }
            let (endpoint, breaker, pass) = admitted.swap_remove(idx);
            let ustats = inner.stats.upstream(&endpoint);

            let mut upstream_req = req.clone();
            upstream_req.target = join_target(&endpoint, rest);

            ustats.requests.fetch_add(1, Ordering::Relaxed);
            if attempt > 0 {
                ustats.retries.fetch_add(1, Ordering::Relaxed);
            }

            // Hedge only when the request can be replayed safely, the
            // picked replica has earned a p95, and a second replica
            // exists to race against. A keyless POST never hedges —
            // the losing arm's side effect would be a duplicate.
            let hedge_delay = if backup_pool.is_empty() || !retryable {
                None
            } else {
                inner.config.hedge.hedge_delay(
                    inner.monitor.recent_p95(&endpoint),
                    inner.monitor.success_samples(&endpoint),
                )
            };

            let (used_endpoint, result) = match hedge_delay {
                None => send_arm(
                    inner.clone(),
                    attempt_parent,
                    attempt,
                    false,
                    endpoint,
                    breaker,
                    pass,
                    upstream_req,
                ),
                Some(delay) => {
                    let primary = {
                        let inner = inner.clone();
                        move || {
                            send_arm(
                                inner,
                                attempt_parent,
                                attempt,
                                false,
                                endpoint,
                                breaker,
                                pass,
                                upstream_req,
                            )
                        }
                    };
                    // Runs on this thread at the hedge point: admit a
                    // backup replica through its breaker *then*, when
                    // the primary is known to be slow.
                    let backup_factory = || {
                        for ep in backup_pool {
                            let b = inner.breaker_for(&ep);
                            let Some(bpass) = b.try_pass() else { continue };
                            inner.stats.hedges_launched.fetch_add(1, Ordering::Relaxed);
                            inner.obs.hedges_launched.inc();
                            let bstats = inner.stats.upstream(&ep);
                            bstats.requests.fetch_add(1, Ordering::Relaxed);
                            let mut breq = req.clone();
                            breq.target = join_target(&ep, rest);
                            let inner = inner.clone();
                            return Some(move || {
                                send_arm(inner, attempt_parent, attempt, true, ep, b, bpass, breq)
                            });
                        }
                        None
                    };
                    match hedge::hedged_race(
                        inner.hedge_pool(),
                        primary,
                        delay,
                        deadline,
                        backup_factory,
                        |(_, r)| matches!(r, Ok(resp) if resp.status.0 < 500),
                    ) {
                        HedgeOutcome::Finished { result, backup_won, .. } => {
                            if backup_won {
                                inner.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                                inner.obs.hedges_won.inc();
                            }
                            result
                        }
                        HedgeOutcome::DeadlineExpired { .. } => {
                            inner.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                            gw_span.set_error("deadline exceeded");
                            return Response::error(
                                Status::GATEWAY_TIMEOUT,
                                &format!("gateway deadline exceeded calling '{service}'"),
                            );
                        }
                    }
                }
            };

            // 4xx is the upstream working correctly on a bad request:
            // a success for health accounting, and never retried.
            let ok = matches!(&result, Ok(r) if r.status.0 < 500);
            match result {
                Ok(resp) if ok => {
                    // A shard-keyed request that bounced off the wrong
                    // primary (the node's map is ahead of ours) chases
                    // the redirect hint instead of surfacing the 409.
                    if let Some(better) = self.follow_not_primary(&req, rest, &resp) {
                        gw_span.set_attr("shard_redirected", "true");
                        gw_span.set_attr("http.status", better.status.0.to_string());
                        return better;
                    }
                    gw_span.set_attr("http.status", resp.status.0.to_string());
                    return resp;
                }
                Ok(resp) => {
                    last = Some(resp);
                }
                Err(e) => {
                    last = Some(Response::error(
                        Status(502),
                        &format!("upstream {used_endpoint} unreachable: {e}"),
                    ));
                }
            }
            if attempt + 1 < attempts {
                self.backoff(attempt, deadline);
            }
        }
        gw_span.set_error("all attempts failed");
        last.unwrap_or_else(|| {
            Response::error(Status::SERVICE_UNAVAILABLE, "gateway produced no response")
        })
    }
}

/// One attempt arm: send `req` to `endpoint` and do every piece of
/// per-attempt accounting — in-flight gauge, histogram, breaker
/// verdict, QoS record, success/failure tally — *inside* the arm.
/// A hedge loser nobody is waiting on still reports its outcome; it
/// just doesn't answer the caller.
///
/// Each arm is its own client span under `parent` (passed explicitly:
/// hedge arms run on pool threads where no thread-local context is
/// active), so a hedged request shows up as sibling attempts with
/// `hedge=false` / `hedge=true` under one `gateway.request`.
#[allow(clippy::too_many_arguments)]
fn send_arm(
    inner: Arc<Inner>,
    parent: TraceContext,
    attempt: u32,
    hedge: bool,
    endpoint: String,
    breaker: Arc<CircuitBreaker>,
    pass: Pass,
    req: Request,
) -> (String, soc_http::HttpResult<Response>) {
    let mut span = soc_observe::child_span(parent, "gateway.attempt", SpanKind::Client);
    span.set_attr("upstream", endpoint.as_str());
    span.set_attr("attempt", attempt.to_string());
    span.set_attr("hedge", if hedge { "true" } else { "false" });
    let ustats = inner.stats.upstream(&endpoint);
    ustats.in_flight.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let result = {
        // Active while the transport runs, so the client injects this
        // span's id as the outgoing traceparent.
        let _active = span.activate();
        inner.transport.send(req)
    };
    let elapsed = start.elapsed();
    ustats.in_flight.fetch_sub(1, Ordering::Relaxed);
    ustats.histogram.record(elapsed);

    let ok = matches!(&result, Ok(r) if r.status.0 < 500);
    match &result {
        Ok(r) => {
            span.set_attr("http.status", r.status.0.to_string());
            if !ok {
                span.set_error(format!("upstream answered {}", r.status));
            }
        }
        Err(e) => span.set_error(e.to_string()),
    }
    breaker.on_result(pass, ok);
    inner.monitor.record(&endpoint, ok, elapsed);
    if ok {
        ustats.successes.fetch_add(1, Ordering::Relaxed);
    } else {
        ustats.failures.fetch_add(1, Ordering::Relaxed);
    }
    (endpoint, result)
}

/// The primary endpoint hinted by a store node's 409 `not_primary`
/// answer, when `resp` is one.
fn not_primary_hint(resp: &Response) -> Option<String> {
    if resp.status.0 != 409 {
        return None;
    }
    let body = Value::parse(std::str::from_utf8(&resp.body).ok()?).ok()?;
    if body.get("error").and_then(Value::as_str) != Some("not_primary") {
        return None;
    }
    body.get("primary").and_then(Value::as_str).map(str::to_string)
}

/// `mem://replica` + `quote?fast=1` → `mem://replica/quote?fast=1`.
fn join_target(endpoint: &str, rest: &str) -> String {
    let base = endpoint.trim_end_matches('/');
    if rest.is_empty() {
        format!("{base}/")
    } else {
        format!("{base}/{rest}")
    }
}

impl Handler for Gateway {
    fn handle(&self, req: Request) -> Response {
        let path = req.path().to_string();
        if path == "/gateway/stats" {
            return Response::json(&self.stats_json().to_string());
        }
        // The gateway doubles as the observability front door: its
        // metrics and traces cover every service behind it.
        if let Some(resp) = soc_http::ObserveEndpoints::try_handle(&req) {
            return resp;
        }
        if let Some(tail) = path.strip_prefix("/svc/") {
            let (service, rest) = match tail.find('/') {
                Some(i) => (&tail[..i], &tail[i + 1..]),
                None => (tail, ""),
            };
            if service.is_empty() {
                return Response::error(Status::NOT_FOUND, "missing service name after /svc/");
            }
            let rest_with_query = match req.target.split_once('?') {
                Some((_, query)) => format!("{rest}?{query}"),
                None => rest.to_string(),
            };
            let service = service.to_string();
            return self.dispatch(&service, &rest_with_query, req);
        }
        Response::error(
            Status::NOT_FOUND,
            "gateway routes: /svc/{service}/{path}, /gateway/stats, and /observe/*",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::mem::FaultConfig;
    use soc_http::{MemNetwork, Method};

    fn fast_config() -> GatewayConfig {
        GatewayConfig {
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            request_deadline: Duration::from_secs(5),
            ..GatewayConfig::default()
        }
    }

    fn two_replicas() -> (MemNetwork, Gateway) {
        let net = MemNetwork::new();
        net.host("r0", |_req: Request| Response::text("pong from r0"));
        net.host("r1", |_req: Request| Response::text("pong from r1"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("ping", &["mem://r0", "mem://r1"]);
        (net, gw)
    }

    #[test]
    fn proxies_and_round_robins() {
        let (net, gw) = two_replicas();
        net.host("gw", gw);
        for _ in 0..4 {
            let resp = net.send(Request::get("mem://gw/svc/ping/hit")).unwrap();
            assert!(resp.status.is_success());
        }
        assert_eq!(net.hits("r0"), 2);
        assert_eq!(net.hits("r1"), 2);
    }

    #[test]
    fn query_string_and_path_are_forwarded() {
        let net = MemNetwork::new();
        net.host("echo", |req: Request| Response::text(req.target.clone()));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("echo", &["mem://echo"]);
        net.host("gw", gw);
        // The mem network delivers origin-form targets, so the echoed
        // target proves both path suffix and query crossed the gateway.
        let resp = net.send(Request::get("mem://gw/svc/echo/a/b?x=1&y=2")).unwrap();
        assert_eq!(resp.text_body().unwrap(), "/a/b?x=1&y=2");
    }

    #[test]
    fn retries_mask_intermittent_faults() {
        let (net, gw) = two_replicas();
        // Every 2nd request to r0 fails; retries go elsewhere.
        net.set_fault("r0", FaultConfig { fail_every: 2, ..Default::default() });
        net.host("gw", gw.clone());
        for _ in 0..20 {
            let resp = net.send(Request::get("mem://gw/svc/ping/x")).unwrap();
            assert!(resp.status.is_success());
        }
        let retries = gw.stats().upstream("mem://r1").retries.load(Ordering::Relaxed)
            + gw.stats().upstream("mem://r0").retries.load(Ordering::Relaxed);
        assert!(retries > 0, "some requests must have been retried");
    }

    #[test]
    fn non_idempotent_methods_are_not_retried() {
        let net = MemNetwork::new();
        net.host("flaky", |_req: Request| Response::error(Status::INTERNAL_SERVER_ERROR, "boom"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("orders", &["mem://flaky"]);
        let resp = gw.call("orders", Request::post("/create", b"{}".to_vec()));
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        assert_eq!(net.hits("flaky"), 1, "a POST must be sent exactly once");
        assert_eq!(
            gw.call("orders", Request::new(Method::Get, "/probe")).status,
            Status::INTERNAL_SERVER_ERROR
        );
        assert!(net.hits("flaky") > 2, "GETs are retried");
    }

    #[test]
    fn client_errors_pass_through_untouched_and_unretried() {
        let net = MemNetwork::new();
        net.host("picky", |_req: Request| Response::error(Status::UNPROCESSABLE, "bad payload"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("picky", &["mem://picky"]);
        let resp = gw.call("picky", Request::get("/x"));
        assert_eq!(resp.status, Status::UNPROCESSABLE);
        assert_eq!(net.hits("picky"), 1);
        assert_eq!(gw.breaker_state("mem://picky"), Some(BreakerState::Closed));
    }

    #[test]
    fn dead_replica_trips_its_breaker_and_traffic_routes_around() {
        let (net, gw) = two_replicas();
        net.set_fault("r0", FaultConfig { offline: true, ..Default::default() });
        net.host("gw", gw.clone());
        for _ in 0..30 {
            let resp = net.send(Request::get("mem://gw/svc/ping/x")).unwrap();
            assert!(resp.status.is_success(), "r1 keeps the service up");
        }
        assert_eq!(gw.breaker_state("mem://r0"), Some(BreakerState::Open));
        let before = net.hits("r1");
        for _ in 0..10 {
            net.send(Request::get("mem://gw/svc/ping/x")).unwrap();
        }
        // With r0's breaker open, every request lands on r1 directly.
        assert_eq!(net.hits("r1"), before + 10);
    }

    #[test]
    fn unknown_service_is_503() {
        let (_net, gw) = two_replicas();
        let resp = gw.call("ghost", Request::get("/x"));
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(gw.stats().no_upstream.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rate_limit_sheds_with_retry_after() {
        let net = MemNetwork::new();
        net.host("r", |_req: Request| Response::text("ok"));
        let gw = Gateway::new(
            Arc::new(net.clone()),
            GatewayConfig { rate_capacity: 2.0, rate_refill_per_sec: 0.0, ..fast_config() },
        );
        gw.register("svc", &["mem://r"]);
        assert!(gw.call("svc", Request::get("/1")).status.is_success());
        assert!(gw.call("svc", Request::get("/2")).status.is_success());
        let shed = gw.call("svc", Request::get("/3"));
        assert_eq!(shed.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(shed.headers.get("Retry-After"), Some("1"));
        assert_eq!(gw.stats().shed_total(), 1);
    }

    #[test]
    fn stats_endpoint_reports_upstreams() {
        let (net, gw) = two_replicas();
        net.host("gw", gw);
        for _ in 0..6 {
            net.send(Request::get("mem://gw/svc/ping/x")).unwrap();
        }
        let resp = net.send(Request::get("mem://gw/gateway/stats")).unwrap();
        let v = Value::parse(resp.text_body().unwrap()).unwrap();
        assert_eq!(v.pointer("/policy").and_then(Value::as_str), Some("round-robin"));
        assert_eq!(v.pointer("/admitted").and_then(Value::as_i64), Some(6));
        assert_eq!(v.pointer("/upstreams/mem:~1~1r0/requests").and_then(Value::as_i64), Some(3));
        assert_eq!(
            v.pointer("/upstreams/mem:~1~1r0/breaker").and_then(Value::as_str),
            Some("closed")
        );
    }

    #[test]
    fn unknown_route_is_404() {
        let (net, gw) = two_replicas();
        net.host("gw", gw);
        let resp = net.send(Request::get("mem://gw/elsewhere")).unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND);
    }

    #[test]
    fn least_latency_prefers_the_faster_replica() {
        let net = MemNetwork::new();
        net.host("fast", |_req: Request| Response::text("f"));
        net.host("slow", |_req: Request| Response::text("s"));
        net.set_fault(
            "slow",
            FaultConfig { latency: Duration::from_millis(15), ..Default::default() },
        );
        let gw = Gateway::new(
            Arc::new(net.clone()),
            GatewayConfig { policy: Policy::LeastLatency, ..fast_config() },
        );
        gw.register("svc", &["mem://fast", "mem://slow"]);
        // Warm-up explores both; steady state then favors the fast one.
        for _ in 0..10 {
            gw.call("svc", Request::get("/x"));
        }
        let fast_before = net.hits("fast");
        for _ in 0..10 {
            gw.call("svc", Request::get("/x"));
        }
        assert_eq!(net.hits("fast"), fast_before + 10);
    }

    #[test]
    fn monitor_sees_proxied_traffic() {
        let (_net, gw) = two_replicas();
        for _ in 0..4 {
            gw.call("ping", Request::get("/x"));
        }
        let report = gw.monitor().report("mem://r0").unwrap();
        assert_eq!(report.probes, 2);
        assert_eq!(report.successes, 2);
    }

    #[test]
    fn service_quota_sheds_one_hot_service_only() {
        let net = MemNetwork::new();
        net.host("a", |_req: Request| Response::text("a"));
        net.host("b", |_req: Request| Response::text("b"));
        let gw = Gateway::new(
            Arc::new(net.clone()),
            GatewayConfig {
                service_rate_capacity: 2.0,
                service_rate_refill_per_sec: 0.0,
                ..fast_config()
            },
        );
        gw.register("hot", &["mem://a"]);
        gw.register("cold", &["mem://b"]);
        assert!(gw.call("hot", Request::get("/1")).status.is_success());
        assert!(gw.call("hot", Request::get("/2")).status.is_success());
        let shed = gw.call("hot", Request::get("/3"));
        assert_eq!(shed.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(shed.headers.get("Retry-After"), Some("1"));
        // The cold service is untouched by the hot one's quota.
        assert!(gw.call("cold", Request::get("/1")).status.is_success());
        assert_eq!(gw.stats().shed_service.load(Ordering::Relaxed), 1);
        assert_eq!(gw.stats().shed_total(), 1);
    }

    #[test]
    fn hedge_masks_a_stalling_replica() {
        let net = MemNetwork::new();
        net.host("steady", |_req: Request| Response::text("steady"));
        net.host("laggy", |_req: Request| Response::text("laggy"));
        let gw = Gateway::new(
            Arc::new(net.clone()),
            GatewayConfig {
                // Judge on little evidence, hedge aggressively, and
                // keep the ejector out of the way so the hedge path
                // itself is what's exercised.
                hedge: HedgeConfig { min_samples: 4, ..HedgeConfig::default() },
                outlier: OutlierConfig { enabled: false, ..OutlierConfig::default() },
                request_deadline: Duration::from_secs(10),
                ..fast_config()
            },
        );
        gw.register("svc", &["mem://steady", "mem://laggy"]);
        // Warm up both replicas while they are healthy so each earns a
        // sub-millisecond p95 (and enough samples to arm the hedge).
        for _ in 0..16 {
            assert!(gw.call("svc", Request::get("/warm")).status.is_success());
        }
        // Now one replica stalls hard. Every request that round-robins
        // onto it crosses its (tiny) p95 and hedges onto the healthy
        // one, so callers never wait out the stall.
        net.set_fault(
            "laggy",
            FaultConfig { latency: Duration::from_millis(250), ..Default::default() },
        );
        for _ in 0..6 {
            let start = Instant::now();
            let resp = gw.call("svc", Request::get("/x"));
            assert!(resp.status.is_success());
            assert!(
                start.elapsed() < Duration::from_millis(200),
                "hedge must answer well before the 250 ms stall ({:?})",
                start.elapsed()
            );
        }
        let launched = gw.stats().hedges_launched.load(Ordering::Relaxed);
        let won = gw.stats().hedges_won.load(Ordering::Relaxed);
        assert!(launched >= 3, "stalled primaries must hedge (launched {launched})");
        assert!(won >= 3, "backups must win against a 250 ms stall (won {won})");
        let v = gw.stats_json();
        assert_eq!(v.pointer("/hedges/launched").and_then(Value::as_i64), Some(launched as i64));
    }

    #[test]
    fn shard_keyed_writes_route_to_the_primary_only() {
        use soc_store::ShardNode;
        let net = MemNetwork::new();
        for n in ["s0", "s1", "s2"] {
            net.host(n, |_req: Request| Response::text("ok"));
        }
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("store", &["mem://s0", "mem://s1", "mem://s2"]);
        let map = Arc::new(ShardMap::build(
            1,
            vec![
                ShardNode { id: "s0".into(), endpoint: "mem://s0".into() },
                ShardNode { id: "s1".into(), endpoint: "mem://s1".into() },
                ShardNode { id: "s2".into(), endpoint: "mem://s2".into() },
            ],
            2,
        ));
        let primary = map.primary("order-42").unwrap().id.clone();
        gw.set_shard_map("store", map.clone());
        for _ in 0..6 {
            let req = Request::put("/store/order-42", b"{}".to_vec())
                .with_header("X-Shard-Key", "order-42");
            assert!(gw.call("store", req).status.is_success());
        }
        // Every write landed on the key's primary; nothing strayed.
        for n in ["s0", "s1", "s2"] {
            let expected = if n == primary { 6 } else { 0 };
            assert_eq!(net.hits(n), expected, "host {n}");
        }
        // Reads fan across the owner set, never beyond it.
        let owners: Vec<String> = map.owners("order-42").iter().map(|o| o.id.clone()).collect();
        for _ in 0..6 {
            let req = Request::get("/store/order-42").with_header("X-Shard-Key", "order-42");
            assert!(gw.call("store", req).status.is_success());
        }
        for n in ["s0", "s1", "s2"] {
            if !owners.contains(&n.to_string()) {
                assert_eq!(net.hits(n), 0, "non-owner {n} must see no shard-keyed traffic");
            }
        }
    }

    #[test]
    fn requests_without_a_shard_key_keep_the_balanced_path() {
        use soc_store::ShardNode;
        let net = MemNetwork::new();
        net.host("a", |_req: Request| Response::text("a"));
        net.host("b", |_req: Request| Response::text("b"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("svc", &["mem://a", "mem://b"]);
        gw.set_shard_map(
            "svc",
            Arc::new(ShardMap::build(
                1,
                vec![ShardNode { id: "a".into(), endpoint: "mem://a".into() }],
                1,
            )),
        );
        for _ in 0..4 {
            assert!(gw.call("svc", Request::get("/x")).status.is_success());
        }
        // No header → round-robin across both replicas as before.
        assert_eq!(net.hits("a"), 2);
        assert_eq!(net.hits("b"), 2);
    }

    #[test]
    fn republished_shard_map_moves_keys() {
        use soc_store::ShardNode;
        let net = MemNetwork::new();
        net.host("only", |_req: Request| Response::text("ok"));
        net.host("next", |_req: Request| Response::text("ok"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("store", &["mem://only", "mem://next"]);
        gw.set_shard_map(
            "store",
            Arc::new(ShardMap::build(
                1,
                vec![ShardNode { id: "only".into(), endpoint: "mem://only".into() }],
                1,
            )),
        );
        let req = || Request::put("/store/k", b"{}".to_vec()).with_header("X-Shard-Key", "k");
        assert!(gw.call("store", req()).status.is_success());
        assert_eq!(net.hits("only"), 1);
        // Rebalance: the old node's lease lapsed, a new map names its
        // successor; the very next request follows it.
        gw.set_shard_map(
            "store",
            Arc::new(ShardMap::build(
                2,
                vec![ShardNode { id: "next".into(), endpoint: "mem://next".into() }],
                1,
            )),
        );
        assert!(gw.call("store", req()).status.is_success());
        assert_eq!(net.hits("only"), 1);
        assert_eq!(net.hits("next"), 1);
    }

    #[test]
    fn stale_shard_map_publish_is_rejected() {
        use soc_store::ShardNode;
        let net = MemNetwork::new();
        net.host("cur", |_req: Request| Response::text("ok"));
        net.host("old", |_req: Request| Response::text("ok"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("store", &["mem://cur"]);
        let current = Arc::new(ShardMap::build(
            5,
            vec![ShardNode { id: "cur".into(), endpoint: "mem://cur".into() }],
            1,
        ));
        assert!(gw.set_shard_map("store", current.clone()));
        // A delayed publish from before the failover must not win.
        let stale = Arc::new(ShardMap::build(
            3,
            vec![ShardNode { id: "old".into(), endpoint: "mem://old".into() }],
            1,
        ));
        assert!(!gw.set_shard_map("store", stale));
        assert_eq!(gw.shard_map("store").unwrap().version(), 5);
        assert_eq!(gw.stats().shard_map_rejects.load(Ordering::Relaxed), 1);
        assert_eq!(gw.stats_json().pointer("/shard/map_rejects").and_then(Value::as_i64), Some(1));
        // Same-version and newer publishes still land.
        assert!(gw.set_shard_map("store", current));
    }

    #[test]
    fn not_primary_redirect_is_followed_to_the_real_primary() {
        use soc_store::ShardNode;
        let net = MemNetwork::new();
        // "stale" still answers as if it lost the shard: a 409 with a
        // hint naming the real primary. The gateway's map is behind and
        // routes the write there first.
        net.host("stale", |_req: Request| {
            Response::new(Status(409)).with_text(
                "application/json",
                r#"{"error":"not_primary","key":"k","primary":"mem://fresh","map_version":2}"#,
            )
        });
        net.host("fresh", |_req: Request| Response::text("stored"));
        let gw = Gateway::new(Arc::new(net.clone()), fast_config());
        gw.register("store", &["mem://stale", "mem://fresh"]);
        gw.set_shard_map(
            "store",
            Arc::new(ShardMap::build(
                1,
                vec![ShardNode { id: "stale".into(), endpoint: "mem://stale".into() }],
                1,
            )),
        );
        let req = Request::put("/store/k", b"{}".to_vec()).with_header("X-Shard-Key", "k");
        let resp = gw.call("store", req);
        assert!(resp.status.is_success(), "redirect hop must answer: {}", resp.status);
        assert_eq!(net.hits("fresh"), 1);
        assert_eq!(gw.stats().shard_redirects.load(Ordering::Relaxed), 1);
        // Without a shard key the 409 passes through untouched.
        let resp = gw.call("store", Request::put("/store/k", b"{}".to_vec()));
        assert_eq!(resp.status.0, 409);
        assert_eq!(gw.stats().shard_redirects.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn outlier_replica_is_ejected_and_bypassed() {
        let net = MemNetwork::new();
        net.host("ok0", |_req: Request| Response::text("0"));
        net.host("ok1", |_req: Request| Response::text("1"));
        net.host("slow", |_req: Request| Response::text("s"));
        let gw = Gateway::new(
            Arc::new(net.clone()),
            GatewayConfig {
                hedge: HedgeConfig { enabled: false, ..HedgeConfig::default() },
                outlier: OutlierConfig {
                    eval_interval: Duration::ZERO,
                    min_samples: 8,
                    // Well under the injected 8 ms but above scheduling
                    // noise: a healthy replica descheduled under a
                    // loaded test run must not become eligible.
                    min_latency: Duration::from_millis(2),
                    eject_duration: Duration::from_secs(30),
                    ..OutlierConfig::default()
                },
                ..fast_config()
            },
        );
        gw.register("svc", &["mem://ok0", "mem://ok1", "mem://slow"]);
        net.set_fault(
            "slow",
            FaultConfig { latency: Duration::from_millis(8), ..Default::default() },
        );
        // Enough traffic for every replica to earn min_samples.
        for _ in 0..30 {
            assert!(gw.call("svc", Request::get("/x")).status.is_success());
        }
        assert_eq!(gw.ejected_endpoints("svc"), vec!["mem://slow".to_string()]);
        // Ejected replica stops receiving traffic entirely.
        let before = net.hits("slow");
        for _ in 0..12 {
            assert!(gw.call("svc", Request::get("/x")).status.is_success());
        }
        assert_eq!(net.hits("slow"), before, "an ejected replica must see no traffic");
        let v = gw.stats_json();
        assert_eq!(v.pointer("/ejections").and_then(Value::as_i64), Some(1));
        assert_eq!(
            v.pointer("/upstreams/mem:~1~1slow/ejected").and_then(Value::as_bool),
            Some(true)
        );
    }
}
