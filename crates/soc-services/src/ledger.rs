//! The mortgage submission ledger — the "bank's database".
//!
//! POST `/mortgage/apply` is the stack's canonical non-idempotent
//! operation: submitting twice opens two applications. This ledger
//! makes the operation replay-safe *and* auditable:
//!
//! - **Dedupe**: the first submission under an `Idempotency-Key`
//!   executes the decision logic and caches the response; replays of
//!   the same key (gateway retries, hedges, workflow re-fires after a
//!   lost response) return the cached response without executing
//!   again.
//! - **Audit**: the ledger counts every *actual execution* per key and
//!   per request body, plus cancellations, so a chaos harness can
//!   assert the real invariants — no logical application executed
//!   twice, compensations exactly balance completed submissions — not
//!   just "the client saw no duplicates".
//! - **Reservation cancels**: because the idempotency key doubles as
//!   the application id, a caller that never saw a response can still
//!   compensate by the key it chose up front
//!   ([`SubmissionLedger::cancel_reservation`]); if the submission
//!   never landed, a tombstone refuses any straggling retry that
//!   arrives later.
//!
//! Replicas of the service share one ledger ([`crate::bindings::ServiceHost::with_ledger`])
//! the way real replicas share a database, so a retry that lands on a
//! different replica still dedupes.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Audit record for one application id (idempotency key).
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Times the decision logic actually executed for this key.
    pub executions: u64,
    /// Times a replay was served from cache instead of executing.
    pub deduped: u64,
    /// Times this application was cancelled (compensation).
    pub cancellations: u64,
    /// Cached response body.
    pub response: String,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, LedgerEntry>,
    // Decision executions per request body — catches duplicates that
    // slipped past the key (e.g. two keys for one logical request).
    by_content: HashMap<String, u64>,
    // Keys cancelled *before* any submission arrived (reservation
    // cancels): a late-landing submission under a tombstoned key is
    // refused instead of opening an application.
    tombstones: std::collections::HashSet<String>,
    keyless: u64,
    orphan_cancels: u64,
}

/// Shared submission store for the mortgage service. See module docs.
#[derive(Default)]
pub struct SubmissionLedger {
    inner: Mutex<Inner>,
}

impl SubmissionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        SubmissionLedger::default()
    }

    /// Execute-or-replay: runs `decide` only if `key` is new, caching
    /// its response. Returns `(response, replayed)`. `content`
    /// identifies the logical request for duplicate auditing.
    pub fn apply(
        &self,
        key: &str,
        content: &str,
        decide: impl FnOnce() -> String,
    ) -> (String, bool) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get_mut(key) {
            entry.deduped += 1;
            return (entry.response.clone(), true);
        }
        // A reservation cancel got here first (the original caller gave
        // up on a lost response and compensated): refuse to open the
        // application, recording an already-cancelled entry so the
        // audit shows what happened.
        if inner.tombstones.remove(key) {
            let response = format!("{{\"application_id\":{:?},\"cancelled\":true}}", key);
            inner.entries.insert(
                key.to_string(),
                LedgerEntry {
                    executions: 0,
                    deduped: 0,
                    cancellations: 1,
                    response: response.clone(),
                },
            );
            return (response, true);
        }
        // Execute under the lock: replicas share the ledger like a
        // database, and this serializes racing replays of one key.
        let response = decide();
        inner.entries.insert(
            key.to_string(),
            LedgerEntry { executions: 1, deduped: 0, cancellations: 0, response: response.clone() },
        );
        *inner.by_content.entry(content.to_string()).or_insert(0) += 1;
        (response, false)
    }

    /// Record a keyless submission (no dedupe possible).
    pub fn note_keyless(&self, content: &str) {
        let mut inner = self.inner.lock();
        inner.keyless += 1;
        *inner.by_content.entry(content.to_string()).or_insert(0) += 1;
    }

    /// Cancel a submission that may not have arrived yet. An existing
    /// entry is cancelled like [`SubmissionLedger::cancel`]; an unknown
    /// key leaves a tombstone so a late-landing submission under it
    /// (a straggling retry whose caller already compensated) is
    /// refused. This is how a saga undoes a step whose response was
    /// lost before it ever learned a server-side id: it cancels by the
    /// idempotency key it chose up front. Returns whether a landed
    /// submission was cancelled.
    pub fn cancel_reservation(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.cancellations += 1;
                true
            }
            None => {
                inner.tombstones.insert(key.to_string());
                false
            }
        }
    }

    /// Tombstones from reservation cancels that no submission ever
    /// claimed.
    pub fn pending_tombstones(&self) -> u64 {
        self.inner.lock().tombstones.len() as u64
    }

    /// Cancel an application. Returns whether the id was known;
    /// unknown ids are recorded as orphan cancels (a compensation
    /// invariant violation if it ever happens).
    pub fn cancel(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.cancellations += 1;
                true
            }
            None => {
                inner.orphan_cancels += 1;
                false
            }
        }
    }

    /// Audit record for one application id.
    pub fn entry(&self, key: &str) -> Option<LedgerEntry> {
        self.inner.lock().entries.get(key).cloned()
    }

    /// All application ids, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.inner.lock().entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Total decision executions (excludes deduped replays).
    pub fn total_executions(&self) -> u64 {
        let inner = self.inner.lock();
        inner.entries.values().map(|e| e.executions).sum::<u64>() + inner.keyless
    }

    /// Replays served from cache.
    pub fn total_deduped(&self) -> u64 {
        self.inner.lock().entries.values().map(|e| e.deduped).sum()
    }

    /// The worst duplication factor across logical requests: 1 means
    /// every distinct request body executed exactly once.
    pub fn max_executions_per_content(&self) -> u64 {
        self.inner.lock().by_content.values().copied().max().unwrap_or(0)
    }

    /// Applications executed and not (yet) cancelled.
    pub fn open_applications(&self) -> u64 {
        self.inner.lock().entries.values().filter(|e| e.cancellations == 0).count() as u64
    }

    /// Ids that were cancelled, sorted.
    pub fn cancelled_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .inner
            .lock()
            .entries
            .iter()
            .filter(|(_, e)| e.cancellations > 0)
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Cancels addressed at ids the ledger never saw.
    pub fn orphan_cancels(&self) -> u64 {
        self.inner.lock().orphan_cancels
    }

    /// Submissions that arrived without an idempotency key.
    pub fn keyless_submissions(&self) -> u64 {
        self.inner.lock().keyless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_hit_cache_without_reexecuting() {
        let ledger = SubmissionLedger::new();
        let mut calls = 0;
        let (r1, cached1) = ledger.apply("k1", "app-a", || {
            calls += 1;
            "{\"ok\":1}".to_string()
        });
        assert!(!cached1);
        let (r2, cached2) = ledger.apply("k1", "app-a", || {
            calls += 1;
            "{\"ok\":2}".to_string()
        });
        assert!(cached2);
        assert_eq!(r1, r2);
        assert_eq!(calls, 1);
        assert_eq!(ledger.total_executions(), 1);
        assert_eq!(ledger.total_deduped(), 1);
        assert_eq!(ledger.max_executions_per_content(), 1);
    }

    #[test]
    fn distinct_keys_for_one_body_are_flagged_by_content() {
        let ledger = SubmissionLedger::new();
        ledger.apply("k1", "same-app", || "{}".to_string());
        ledger.apply("k2", "same-app", || "{}".to_string());
        assert_eq!(ledger.max_executions_per_content(), 2);
    }

    #[test]
    fn cancel_balances_and_flags_orphans() {
        let ledger = SubmissionLedger::new();
        ledger.apply("k1", "a", || "{}".to_string());
        ledger.apply("k2", "b", || "{}".to_string());
        assert_eq!(ledger.open_applications(), 2);
        assert!(ledger.cancel("k1"));
        assert!(ledger.cancel("k1")); // cancel is idempotent bookkeeping
        assert_eq!(ledger.open_applications(), 1);
        assert_eq!(ledger.cancelled_keys(), vec!["k1".to_string()]);
        assert!(!ledger.cancel("ghost"));
        assert_eq!(ledger.orphan_cancels(), 1);
    }

    #[test]
    fn reservation_cancel_tombstones_until_the_submission_lands() {
        let ledger = SubmissionLedger::new();
        // Cancel-before-apply: the saga compensated a lost response.
        assert!(!ledger.cancel_reservation("k1"));
        assert_eq!(ledger.pending_tombstones(), 1);
        assert_eq!(ledger.orphan_cancels(), 0, "a reservation cancel is not an orphan");
        // The straggling submission lands later: refused, not opened.
        let (resp, replayed) = ledger.apply("k1", "a", || "should not run".to_string());
        assert!(replayed);
        assert!(resp.contains("\"cancelled\":true"));
        assert_eq!(ledger.open_applications(), 0);
        assert_eq!(ledger.total_executions(), 0);
        assert_eq!(ledger.pending_tombstones(), 0);

        // Cancel-after-apply via the reservation path behaves like a
        // plain cancel.
        ledger.apply("k2", "b", || "{}".to_string());
        assert!(ledger.cancel_reservation("k2"));
        assert_eq!(ledger.open_applications(), 0);
    }

    #[test]
    fn keyless_submissions_still_audit_content() {
        let ledger = SubmissionLedger::new();
        ledger.note_keyless("app-a");
        ledger.note_keyless("app-a");
        assert_eq!(ledger.total_executions(), 2);
        assert_eq!(ledger.max_executions_per_content(), 2);
        assert_eq!(ledger.keyless_submissions(), 2);
    }
}
