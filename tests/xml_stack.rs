//! Integration tests tying the XML stack (unit 4) to the service
//! layers: schema validation of registry documents, XSLT rendering of
//! repository listings, and XPath-driven data extraction from live
//! service output.

use soc::registry::{Binding, Repository, ServiceDescriptor};
use soc::xml::schema::{AttrDecl, Content, DataType, ElementDecl, Particle, Schema};
use soc::xml::xslt::Stylesheet;
use soc::xml::{xpath, Document};

fn sample_repo() -> Repository {
    let repo = Repository::new();
    repo.publish(
        ServiceDescriptor::new("enc", "Encryption Service", "mem://s/enc", Binding::Rest)
            .describe("encrypts & decrypts")
            .category("security")
            .keywords(&["cipher"]),
    )
    .unwrap();
    repo.publish(
        ServiceDescriptor::new("credit", "Credit Score", "mem://s/credit", Binding::Soap)
            .describe("synthetic scores")
            .category("finance"),
    )
    .unwrap();
    repo
}

/// The schema the repository's XML document must satisfy — written
/// once, enforced against live output.
fn repository_schema() -> Schema {
    Schema::new("repository")
        .element(ElementDecl {
            name: "repository".into(),
            content: Content::Sequence(vec![Particle::many("service")]),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "service".into(),
            content: Content::Sequence(vec![
                Particle::one("name"),
                Particle::one("description"),
                Particle::one("category"),
                Particle::one("endpoint"),
                Particle::one("provider"),
                Particle::one("keywords"),
            ]),
            attributes: vec![
                AttrDecl { name: "id".into(), ty: DataType::Token, required: true },
                AttrDecl { name: "binding".into(), ty: DataType::Token, required: true },
            ],
        })
        .element(ElementDecl {
            name: "keywords".into(),
            content: Content::Sequence(vec![Particle::many("keyword")]),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "name".into(),
            content: Content::Simple(DataType::String),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "description".into(),
            content: Content::Simple(DataType::String),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "category".into(),
            content: Content::Simple(DataType::String),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "endpoint".into(),
            content: Content::Simple(DataType::String),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "provider".into(),
            content: Content::Simple(DataType::String),
            attributes: vec![],
        })
        .element(ElementDecl {
            name: "keyword".into(),
            content: Content::Simple(DataType::String),
            attributes: vec![],
        })
}

#[test]
fn live_repository_documents_validate_against_the_schema() {
    let repo = sample_repo();
    let doc = Document::parse_str(&repo.to_xml()).unwrap();
    let schema = repository_schema();
    let errors = schema.validate(&doc);
    assert!(errors.is_empty(), "{errors:?}");
}

#[test]
fn schema_catches_corrupted_documents() {
    let repo = sample_repo();
    let schema = repository_schema();
    // Drop a required attribute.
    let broken = repo.to_xml().replacen("binding=", "x-binding=", 1);
    let doc = Document::parse_str(&broken).unwrap();
    let errors = schema.validate(&doc);
    assert!(errors.iter().any(|e| e.message.contains("binding")), "{errors:?}");
}

#[test]
fn stylesheet_renders_repository_as_html() {
    let repo = sample_repo();
    let sheet = Stylesheet::parse(
        r#"<stylesheet>
             <template match="repository"><ul><apply-templates select="service"/></ul></template>
             <template match="service"><li><b><value-of select="name"/></b> — <value-of select="category"/></li></template>
           </stylesheet>"#,
    )
    .unwrap();
    let input = Document::parse_str(&repo.to_xml()).unwrap();
    let html = sheet.transform(&input).unwrap().to_xml();
    assert_eq!(
        html,
        "<ul><li><b>Encryption Service</b> — security</li>\
         <li><b>Credit Score</b> — finance</li></ul>"
    );
}

#[test]
fn xpath_extracts_endpoints_from_live_documents() {
    let repo = sample_repo();
    let doc = Document::parse_str(&repo.to_xml()).unwrap();
    let endpoints = xpath::eval("/repository/service/endpoint", &doc).unwrap();
    assert_eq!(endpoints.texts(&doc), vec!["mem://s/enc", "mem://s/credit"]);
    let soap_names = xpath::eval("/repository/service[@binding='soap']/name", &doc).unwrap();
    assert_eq!(soap_names.first_text(&doc).as_deref(), Some("Credit Score"));
}

#[test]
fn account_xml_validates_with_the_compact_schema_dialect() {
    // Build a schema for account.xml using the XML schema dialect.
    let schema = Schema::parse_xml(
        r#"<schema root="accounts">
             <element name="accounts">
               <sequence><ref name="account" min="0" max="unbounded"/></sequence>
             </element>
             <element name="account">
               <sequence>
                 <ref name="name"/><ref name="ssn"/><ref name="address"/>
                 <ref name="dob"/><ref name="score"/><ref name="passwordHash"/><ref name="salt"/>
               </sequence>
               <attribute name="userId" type="token" required="true"/>
             </element>
             <element name="name" type="string"/>
             <element name="ssn" type="string"/>
             <element name="address" type="string"/>
             <element name="dob" type="string"/>
             <element name="score" type="int"/>
             <element name="passwordHash" type="string"/>
             <element name="salt" type="string"/>
           </schema>"#,
    )
    .unwrap()
    .unwrap();

    let store = soc::webapp::account_app::AccountStore::new();
    store.create("Ann", "123-45-6789", "1 Mill", "1990-01-02", 700);
    store.set_password("U1001", "Str0ngPass");
    let doc = Document::parse_str(&store.to_account_xml()).unwrap();
    let errors = schema.validate(&doc);
    assert!(errors.is_empty(), "{errors:?}");
}
