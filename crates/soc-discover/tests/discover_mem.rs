//! End-to-end discovery over the in-memory network: federated crawl
//! with referral cycles and incremental re-crawls, QoS-ranked search,
//! goal planning, and saga execution with re-planning.

use std::collections::HashMap;
use std::sync::Arc;

use soc_discover::{
    demo, AchieveConfig, CrawlConfig, DiscoverError, Discovery, Goal, NoQos, Planner,
};
use soc_gateway::GatewayConfig;
use soc_http::mem::{MemNetwork, UniClient};
use soc_json::Value;
use soc_registry::{Binding, ServiceDescriptor};
use soc_soap::XsdType;

fn discovery(net: &MemNetwork) -> Discovery {
    Discovery::new(
        Arc::new(UniClient::new(net.clone())),
        GatewayConfig::default(),
        CrawlConfig::default(),
    )
}

fn lending_goal() -> Goal {
    Goal::new()
        .have("ssn", XsdType::String)
        .have("amount", XsdType::Int)
        .have("income", XsdType::Int)
        .want("approved", XsdType::Boolean)
        .want("rate_bps", XsdType::Int)
}

fn lending_inputs() -> HashMap<String, Value> {
    HashMap::from([
        ("ssn".to_string(), Value::from("123-45-6789")),
        ("amount".to_string(), Value::from(25_000)),
        ("income".to_string(), Value::from(90_000)),
    ])
}

#[test]
fn crawl_follows_referral_cycles_and_merges_replicas() {
    let net = MemNetwork::new();
    let federation = demo::host_mem(&net);
    let mut disc = discovery(&net);

    // One root; dir-b and dir-c are reached via referrals, and the
    // c → a back-edge must not loop the crawl.
    let stats = disc.crawl(&["mem://dir-a"]);
    assert_eq!(stats.visited.len(), 3, "{stats:?}");
    assert!(stats.unreachable.is_empty(), "{stats:?}");
    assert!(stats.wsdl_errors.is_empty(), "{stats:?}");

    let catalog = disc.catalog();
    assert_eq!(catalog.len(), 4);
    // credit-check was advertised by two directories with distinct
    // replicas: the catalog merges them under one id.
    let credit = catalog.get("credit-check").unwrap();
    assert_eq!(credit.replicas, vec!["mem://credit-0", "mem://credit-1"]);
    assert_eq!(credit.directories.len(), 2);
    // Typed signature recovered from the WSDL, with the relative
    // `location` resolved against the fetch origin.
    let op = credit.operation("Score").unwrap();
    assert_eq!(op.inputs[0].ty, XsdType::String);
    assert_eq!(op.outputs[0].ty, XsdType::Int);
    assert_eq!(credit.base_path, "/api");

    let _ = federation;
}

#[test]
fn recrawls_are_incremental_until_the_lease_version_moves() {
    let net = MemNetwork::new();
    let federation = demo::host_mem(&net);
    let mut disc = discovery(&net);

    disc.crawl(&["mem://dir-a"]);
    let second = disc.crawl(&["mem://dir-a"]);
    assert_eq!(second.visited.len(), 0, "{second:?}");
    assert_eq!(second.skipped_unchanged.len(), 3, "{second:?}");

    // A new live lease on dir-b bumps its version; only dir-b is
    // re-listed on the next crawl.
    let dir_b = &federation.directories[1];
    dir_b
        .repository
        .publish(
            ServiceDescriptor::new(
                "fraud-check",
                "Fraud Check",
                "mem://fraud-0/api",
                Binding::Rest,
            )
            .category("lending"),
        )
        .unwrap();
    dir_b.renew_lease("fraud-check", 60_000);
    let third = disc.crawl(&["mem://dir-a"]);
    assert_eq!(third.visited, vec!["mem://dir-b"], "{third:?}");
    assert_eq!(third.skipped_unchanged.len(), 2, "{third:?}");
    // The new descriptor has no WSDL: cataloged, but without typed ops.
    let fraud = disc.catalog().get("fraud-check").unwrap();
    assert!(fraud.operations.is_empty());
}

#[test]
fn unreachable_directories_degrade_instead_of_failing_the_crawl() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    // The crawler runs on this thread, so its requests originate from
    // the client origin; cutting client → dir-c makes only dir-c dark.
    net.partition(soc_http::mem::CLIENT_ORIGIN, "dir-c");
    let mut disc = discovery(&net);
    let stats = disc.crawl(&["mem://dir-a"]);
    assert_eq!(stats.visited.len(), 2, "{stats:?}");
    assert_eq!(stats.unreachable, vec!["mem://dir-c"]);
    // dir-c's exclusive services are missing; the rest of the
    // federation still cataloged.
    assert!(disc.catalog().get("underwriting").is_none());
    assert!(disc.catalog().get("credit-check").is_some());
}

#[test]
fn search_ranks_lending_services() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let mut disc = discovery(&net);
    disc.crawl(&["mem://dir-a"]);

    let hits = disc.search("assess loan risk", 10);
    assert!(!hits.is_empty());
    assert!(hits[0].service_id.starts_with("risk-model"), "{hits:?}");
    let underwriting = disc.search("underwriting approval", 10);
    assert_eq!(underwriting[0].service_id, "underwriting", "{underwriting:?}");
}

#[test]
fn planner_chains_credit_risk_underwriting() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let mut disc = discovery(&net);
    disc.crawl(&["mem://dir-a"]);

    let plan = disc.plan(&lending_goal()).unwrap();
    let services: Vec<&str> = plan.nodes.iter().map(|n| n.service_id.as_str()).collect();
    assert_eq!(services, vec!["credit-check", "risk-model", "underwriting"]);
    // Planning is deterministic.
    assert_eq!(disc.plan(&lending_goal()).unwrap(), plan);

    // With the primary risk provider denied, the planner routes
    // through the alternative — and the plan still checks out.
    let mut planner = Planner::new(disc.index(), &NoQos);
    planner.deny("risk-model");
    let alt = planner.plan(&lending_goal()).unwrap();
    soc_discover::verify(&alt, &lending_goal()).unwrap();
    assert!(alt.nodes.iter().any(|n| n.service_id == "risk-model-alt"));
}

#[test]
fn unproducible_wants_fail_with_no_producer() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let mut disc = discovery(&net);
    disc.crawl(&["mem://dir-a"]);

    let goal = Goal::new().want("unobtainium", XsdType::Double);
    match disc.plan(&goal) {
        Err(DiscoverError::Plan(e)) => assert!(e.to_string().contains("unobtainium")),
        other => panic!("expected NoProducer, got {other:?}"),
    }
}

#[test]
fn achieve_executes_the_composition_through_the_gateway() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let mut disc = discovery(&net);
    disc.crawl(&["mem://dir-a"]);

    let achieved =
        disc.achieve(&lending_goal(), &lending_inputs(), &AchieveConfig::default()).unwrap();
    assert_eq!(achieved.attempts, 1);
    assert!(achieved.replanned.is_empty());
    assert_eq!(achieved.outputs["approved"].as_bool(), Some(true));
    let rate = achieved.outputs["rate_bps"].as_i64().unwrap();
    assert!((250..=1150).contains(&rate), "rate_bps {rate} out of model range");
}

#[test]
fn achieve_replans_around_a_partitioned_provider() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let mut disc = discovery(&net);
    disc.crawl(&["mem://dir-a"]);

    // The planner prefers risk-model; partition its only replica from
    // the caller mid-run. The saga fails at that node, compensates,
    // and the re-plan routes through risk-model-alt.
    net.partition(soc_http::mem::CLIENT_ORIGIN, "risk-0");
    let achieved =
        disc.achieve(&lending_goal(), &lending_inputs(), &AchieveConfig::default()).unwrap();
    assert_eq!(achieved.attempts, 2);
    assert_eq!(achieved.replanned, vec!["risk-model"]);
    assert!(achieved.plan.nodes.iter().any(|n| n.service_id == "risk-model-alt"));
    assert_eq!(achieved.outputs["approved"].as_bool(), Some(true));
}

#[test]
fn achieve_exhausts_when_every_provider_is_dark() {
    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let mut disc = discovery(&net);
    disc.crawl(&["mem://dir-a"]);

    net.partition(soc_http::mem::CLIENT_ORIGIN, "risk-0");
    net.partition(soc_http::mem::CLIENT_ORIGIN, "risk-alt-0");
    match disc.achieve(&lending_goal(), &lending_inputs(), &AchieveConfig::default()) {
        Err(DiscoverError::Exhausted { attempts, .. }) => assert!(attempts >= 2),
        other => panic!("expected exhaustion, got {other:?}"),
    }
}
