/root/repo/target/debug/deps/table5_evaluation-abf8643496b41b74.d: crates/soc-bench/src/bin/table5_evaluation.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_evaluation-abf8643496b41b74.rmeta: crates/soc-bench/src/bin/table5_evaluation.rs Cargo.toml

crates/soc-bench/src/bin/table5_evaluation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
