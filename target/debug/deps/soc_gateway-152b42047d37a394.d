/root/repo/target/debug/deps/soc_gateway-152b42047d37a394.d: crates/soc-gateway/src/lib.rs

/root/repo/target/debug/deps/libsoc_gateway-152b42047d37a394.rlib: crates/soc-gateway/src/lib.rs

/root/repo/target/debug/deps/libsoc_gateway-152b42047d37a394.rmeta: crates/soc-gateway/src/lib.rs

crates/soc-gateway/src/lib.rs:
