/root/repo/target/debug/deps/soc-8ba9ba7c87de1110.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoc-8ba9ba7c87de1110.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
