/root/repo/target/debug/deps/transport-aa762e6102fcb204.d: crates/soc-bench/benches/transport.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-aa762e6102fcb204.rmeta: crates/soc-bench/benches/transport.rs Cargo.toml

crates/soc-bench/benches/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
