/root/repo/target/debug/examples/web_account_app-fa9e617d40a1c4b8.d: examples/web_account_app.rs

/root/repo/target/debug/examples/web_account_app-fa9e617d40a1c4b8: examples/web_account_app.rs

examples/web_account_app.rs:
