/root/repo/target/debug/deps/soc_curriculum-afce898878b48121.d: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

/root/repo/target/debug/deps/libsoc_curriculum-afce898878b48121.rlib: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

/root/repo/target/debug/deps/libsoc_curriculum-afce898878b48121.rmeta: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

crates/soc-curriculum/src/lib.rs:
crates/soc-curriculum/src/acm.rs:
crates/soc-curriculum/src/chart.rs:
crates/soc-curriculum/src/enrollment.rs:
crates/soc-curriculum/src/evaluation.rs:
