//! Pinned process-level chaos campaigns: kill -9 a shard primary and a
//! saga coordinator mid-flight, restart against the same WAL
//! directories, and assert the no-lost / no-duplicated invariants on
//! both the mem and TCP transports.

use std::time::Duration;

use soc_chaos::process::{
    run_mem_coordinator_kill, run_mem_store_kill, run_tcp_coordinator_kill, run_tcp_store_kill,
    CoordKillConfig, RecoveryMode, StoreKillConfig,
};

const VICTIM: &str = env!("CARGO_BIN_EXE_victim");

fn coord_cfg(seed: u64, mode: RecoveryMode) -> CoordKillConfig {
    CoordKillConfig {
        seed,
        runs: 6,
        kill_run: 3,
        mode,
        finalize_delay: Duration::from_millis(150),
        kill_delay: Duration::from_millis(50),
    }
}

#[test]
fn tcp_store_primary_kill_loses_no_acked_writes() {
    let cfg = StoreKillConfig { seed: 0xC0FFEE, ..StoreKillConfig::default() };
    let report = run_tcp_store_kill(VICTIM, &cfg).expect("campaign runs");
    assert_eq!(report.acked, cfg.keys * cfg.rounds);
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn mem_store_primary_kill_loses_no_acked_writes() {
    let cfg = StoreKillConfig { seed: 0xBEAD, ..StoreKillConfig::default() };
    let report = run_mem_store_kill(&cfg).expect("campaign runs");
    assert_eq!(report.acked, cfg.keys * cfg.rounds);
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn tcp_coordinator_kill_resumes_without_duplicates() {
    let report =
        run_tcp_coordinator_kill(VICTIM, &coord_cfg(7, RecoveryMode::Resume)).expect("campaign");
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn tcp_coordinator_kill_compensates_cleanly() {
    let report = run_tcp_coordinator_kill(VICTIM, &coord_cfg(9, RecoveryMode::Compensate))
        .expect("campaign");
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn mem_coordinator_kill_resumes_without_duplicates() {
    let report = run_mem_coordinator_kill(&coord_cfg(11, RecoveryMode::Resume)).expect("campaign");
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
    // The planted crash must actually land on the mem transport.
    assert!(!report.settled.is_empty(), "nothing was left open to settle: {:#?}", report);
}

#[test]
fn mem_coordinator_kill_compensates_cleanly() {
    let report =
        run_mem_coordinator_kill(&coord_cfg(13, RecoveryMode::Compensate)).expect("campaign");
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
    assert!(!report.settled.is_empty(), "nothing was left open to settle: {:#?}", report);
}
