/root/repo/target/debug/deps/sync-8456a7ac1653d301.d: crates/soc-bench/benches/sync.rs Cargo.toml

/root/repo/target/debug/deps/libsync-8456a7ac1653d301.rmeta: crates/soc-bench/benches/sync.rs Cargo.toml

crates/soc-bench/benches/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
