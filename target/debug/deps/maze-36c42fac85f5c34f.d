/root/repo/target/debug/deps/maze-36c42fac85f5c34f.d: crates/soc-bench/benches/maze.rs Cargo.toml

/root/repo/target/debug/deps/libmaze-36c42fac85f5c34f.rmeta: crates/soc-bench/benches/maze.rs Cargo.toml

crates/soc-bench/benches/maze.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
