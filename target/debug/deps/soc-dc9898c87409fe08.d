/root/repo/target/debug/deps/soc-dc9898c87409fe08.d: src/lib.rs

/root/repo/target/debug/deps/soc-dc9898c87409fe08: src/lib.rs

src/lib.rs:
