//! Compact and pretty serialization.
//!
//! [`write_into`] appends straight into a caller-provided buffer, so a
//! server rendering many responses reuses one allocation; strings are
//! emitted run-at-a-time (one batched scan to the next byte needing an
//! escape) rather than char-at-a-time.

use crate::scan;
use crate::value::Value;

/// Serialize `v`; `pretty` adds two-space indentation and newlines.
pub fn to_string(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(v, pretty, 0, &mut out);
    out
}

/// Append the compact serialization of `v` to `out` — the
/// buffer-reusing twin of [`Value::to_compact`].
pub fn write_into(v: &Value, out: &mut String) {
    write_value(v, false, 0, out);
}

fn write_value(v: &Value, pretty: bool, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                write_value(item, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(pretty: bool, depth: usize, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut i = 0;
    // The bytes needing an escape (quote, backslash, controls) are
    // exactly the parser's string-special set; everything between two
    // of them is appended as one run.
    while let Some(p) = scan::string_special(&bytes[i..]) {
        let at = i + p;
        out.push_str(&s[i..at]);
        match bytes[at] {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            0x8 => out.push_str("\\b"),
            0xC => out.push_str("\\f"),
            c => {
                out.push_str(&format!("\\u{c:04x}"));
            }
        }
        i = at + 1;
    }
    out.push_str(&s[i..]);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{json, Value};

    #[test]
    fn compact_form() {
        let v = json!({ "a": [1, 2], "b": "x\ny", "c": null });
        assert_eq!(v.to_compact(), r#"{"a":[1,2],"b":"x\ny","c":null}"#);
    }

    #[test]
    fn pretty_form() {
        let v = json!({ "a": [1] });
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(json!({}).to_pretty(), "{}");
        assert_eq!(json!([]).to_pretty(), "[]");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::from("\u{1}\u{8}\u{c}");
        assert_eq!(v.to_compact(), "\"\\u0001\\b\\f\"");
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn floats_keep_distinguishing_decimal() {
        assert_eq!(Value::from(2.0).to_compact(), "2.0");
        assert_eq!(Value::from(2.5).to_compact(), "2.5");
        assert_eq!(Value::from(2i64).to_compact(), "2");
    }

    #[test]
    fn round_trip_both_forms() {
        let v = json!({ "s": "héllo 😀", "n": [1.5, (-3), 1e20], "t": true });
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }
}
