/root/repo/target/debug/deps/soc_http-bca59449b1e9c563.d: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_http-bca59449b1e9c563.rmeta: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs Cargo.toml

crates/soc-http/src/lib.rs:
crates/soc-http/src/client.rs:
crates/soc-http/src/codec.rs:
crates/soc-http/src/cookies.rs:
crates/soc-http/src/mem.rs:
crates/soc-http/src/server.rs:
crates/soc-http/src/types.rs:
crates/soc-http/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
