/root/repo/target/release/deps/soc_xml-d054b95f454ec952.d: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs

/root/repo/target/release/deps/libsoc_xml-d054b95f454ec952.rlib: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs

/root/repo/target/release/deps/libsoc_xml-d054b95f454ec952.rmeta: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs

crates/soc-xml/src/lib.rs:
crates/soc-xml/src/dom.rs:
crates/soc-xml/src/error.rs:
crates/soc-xml/src/escape.rs:
crates/soc-xml/src/name.rs:
crates/soc-xml/src/reader.rs:
crates/soc-xml/src/sax.rs:
crates/soc-xml/src/schema.rs:
crates/soc-xml/src/writer.rs:
crates/soc-xml/src/xpath.rs:
crates/soc-xml/src/xslt.rs:
