//! The federated directory crawler.
//!
//! Starting from a handful of root directories, the crawler walks the
//! federation's referral links (`GET /directory/peers`), pulls each
//! directory's service listing, follows every descriptor's `wsdl` link
//! and parses it into typed operation signatures. Everything goes
//! through a [`Gateway`], so crawling inherits the same retries,
//! circuit breakers, and tracing as production traffic — a directory
//! behind a flaky link degrades into a `unreachable` stats entry, not a
//! hung crawl.
//!
//! Three behaviors matter for a *federation* (vs. a single registry):
//!
//! - **Referral cycles.** Directories refer to each other freely —
//!   `a → b → c → a` is the norm, not an error. A visited set makes
//!   every crawl terminate.
//! - **Incremental re-crawls.** The referral response carries the
//!   directory's lease version. A re-crawl that sees an unchanged
//!   version skips the listing and the WSDL fetches for that directory
//!   entirely (but still follows its referrals).
//! - **Politeness.** An optional fixed delay between directory visits
//!   keeps a wide crawl from dogpiling the federation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use soc_gateway::Gateway;
use soc_http::{Request, Url};
use soc_json::Value;
use soc_observe::SpanKind;
use soc_registry::ServiceDescriptor;

use crate::catalog::{Catalog, DiscoveredService, TypedOperation};

/// Crawl tuning.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Stop after this many directories (visited, skipped, or failed).
    pub max_directories: usize,
    /// Fixed pause before each directory visit.
    pub politeness: Duration,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { max_directories: 64, politeness: Duration::ZERO }
    }
}

/// What one crawl did, per directory and in aggregate.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    /// Directories fully listed this crawl.
    pub visited: Vec<String>,
    /// Directories skipped because their lease version was unchanged.
    pub skipped_unchanged: Vec<String>,
    /// Directories that could not be reached (through the gateway's
    /// full retry budget).
    pub unreachable: Vec<String>,
    /// WSDL links that failed to fetch or parse: `(url, error)`. The
    /// service is still cataloged, just without typed operations.
    pub wsdl_errors: Vec<(String, String)>,
    /// Descriptors seen across all listings (before id-merging).
    pub services_seen: usize,
}

impl CrawlStats {
    /// Directories handled in any way this crawl.
    pub fn directories(&self) -> usize {
        self.visited.len() + self.skipped_unchanged.len() + self.unreachable.len()
    }
}

/// The crawler. Holds per-directory lease versions between crawls so
/// re-crawls are incremental; create a fresh one for a cold crawl.
pub struct Crawler {
    gateway: Gateway,
    config: CrawlConfig,
    last_versions: HashMap<String, u64>,
    registered: HashSet<String>,
}

/// The origin (`scheme://authority`) of a URL, if it parses.
pub(crate) fn origin_of(url: &str) -> Option<String> {
    let u = Url::parse(url).ok()?;
    Some(format!("{}://{}", u.scheme, u.authority()))
}

impl Crawler {
    /// A crawler that fetches through `gateway`.
    pub fn new(gateway: Gateway, config: CrawlConfig) -> Self {
        Crawler { gateway, config, last_versions: HashMap::new(), registered: HashSet::new() }
    }

    /// The gateway the crawler fetches through.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// GET `path` from `origin`, through the gateway. Each origin is
    /// registered as its own single-replica gateway service, so
    /// breaker and QoS state is tracked per host.
    fn fetch(&mut self, origin: &str, path: &str) -> Result<String, String> {
        let svc = format!("origin:{origin}");
        if self.registered.insert(svc.clone()) {
            self.gateway.register(&svc, &[origin]);
        }
        let resp = self.gateway.call(&svc, Request::get(path));
        if !resp.status.is_success() {
            return Err(format!("GET {origin}{path}: status {}", resp.status));
        }
        resp.text_body().map(str::to_string).map_err(|e| e.to_string())
    }

    /// The directory's referral record: `(lease version, peers)`.
    fn referral(&mut self, base: &str) -> Result<(u64, Vec<String>), String> {
        let text = self.fetch(base, "/directory/peers")?;
        let v = Value::parse(&text).map_err(|e| e.to_string())?;
        let version =
            v.pointer("/version")
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("{base}: referral missing version"))? as u64;
        let peers = match v.pointer("/peers") {
            Some(Value::Array(items)) => {
                items.iter().filter_map(Value::as_str).map(str::to_string).collect()
            }
            _ => Vec::new(),
        };
        Ok((version, peers))
    }

    /// The directory's full service listing.
    fn listing(&mut self, base: &str) -> Result<Vec<ServiceDescriptor>, String> {
        let text = self.fetch(base, "/services")?;
        let v = Value::parse(&text).map_err(|e| e.to_string())?;
        let Value::Array(items) = v else {
            return Err(format!("{base}: /services is not an array"));
        };
        items.iter().map(ServiceDescriptor::from_json).collect()
    }

    /// Describe one advertised service: follow its WSDL link (through
    /// the gateway) and recover typed operations. A relative WSDL
    /// `location` (leading `/`) resolves against the origin the WSDL
    /// was fetched from — services behind a host-agnostic router
    /// advertise themselves that way.
    fn describe(
        &mut self,
        dir: &str,
        d: ServiceDescriptor,
        stats: &mut CrawlStats,
    ) -> DiscoveredService {
        let mut svc = DiscoveredService {
            namespace: String::new(),
            base_path: Url::parse(&d.endpoint).map(|u| u.path).unwrap_or_else(|_| "/".into()),
            operations: Vec::new(),
            replicas: origin_of(&d.endpoint).into_iter().collect(),
            directories: vec![dir.to_string()],
            descriptor: d,
        };
        let Some(wsdl_url) = svc.descriptor.wsdl.clone() else {
            return svc;
        };
        let fetched = Url::parse(&wsdl_url).map_err(|e| e.to_string()).and_then(|u| {
            let origin = format!("{}://{}", u.scheme, u.authority());
            let xml = self.fetch(&origin, &u.path_and_query())?;
            let parsed = soc_soap::wsdl::parse(&xml)?;
            Ok((origin, parsed))
        });
        match fetched {
            Ok((wsdl_origin, parsed)) => {
                svc.namespace = parsed.contract.namespace.clone();
                svc.operations =
                    parsed.contract.operations.iter().map(TypedOperation::from).collect();
                if parsed.endpoint.starts_with('/') {
                    svc.base_path = parsed.endpoint.clone();
                    svc.replicas = vec![wsdl_origin];
                } else if let Ok(u) = Url::parse(&parsed.endpoint) {
                    svc.base_path = u.path.clone();
                    svc.replicas = vec![format!("{}://{}", u.scheme, u.authority())];
                }
            }
            Err(e) => stats.wsdl_errors.push((wsdl_url, e)),
        }
        svc
    }

    /// Crawl the federation reachable from `roots`, merging what is
    /// found into `catalog`. Returns per-crawl stats; lease versions
    /// are remembered so the next crawl is incremental.
    pub fn crawl(&mut self, roots: &[&str], catalog: &mut Catalog) -> CrawlStats {
        let mut crawl_span = soc_observe::span("discover.crawl", SpanKind::Internal);
        let _active = crawl_span.activate();
        let mut stats = CrawlStats::default();
        let mut queue: VecDeque<String> =
            roots.iter().map(|r| r.trim_end_matches('/').to_string()).collect();
        let mut seen: HashSet<String> = queue.iter().cloned().collect();

        while let Some(base) = queue.pop_front() {
            if stats.directories() >= self.config.max_directories {
                break;
            }
            if !self.config.politeness.is_zero() {
                std::thread::sleep(self.config.politeness);
            }
            let mut dir_span = soc_observe::span("discover.directory", SpanKind::Client);
            dir_span.set_attr("directory", base.as_str());
            let _dir_active = dir_span.activate();

            // Referral first: one round trip yields both the peers to
            // follow and the lease version that gates a full listing.
            let (version, peers) = match self.referral(&base) {
                Ok(r) => r,
                Err(e) => {
                    dir_span.set_error(e);
                    stats.unreachable.push(base);
                    continue;
                }
            };
            for peer in peers {
                let peer = peer.trim_end_matches('/').to_string();
                if seen.insert(peer.clone()) {
                    queue.push_back(peer);
                }
            }
            if self.last_versions.get(&base) == Some(&version) {
                dir_span.set_attr("unchanged", "true");
                stats.skipped_unchanged.push(base);
                continue;
            }
            match self.listing(&base) {
                Ok(descriptors) => {
                    dir_span.set_attr("services", descriptors.len().to_string());
                    for d in descriptors {
                        stats.services_seen += 1;
                        let described = self.describe(&base, d, &mut stats);
                        catalog.merge(described);
                    }
                    self.last_versions.insert(base.clone(), version);
                    stats.visited.push(base);
                }
                Err(e) => {
                    dir_span.set_error(e);
                    stats.unreachable.push(base);
                }
            }
        }

        crawl_span.set_attr("visited", stats.visited.len().to_string());
        crawl_span.set_attr("services", catalog.len().to_string());
        let m = soc_observe::metrics();
        m.counter("soc_discover_directories_total", &[("outcome", "visited")])
            .add(stats.visited.len() as u64);
        m.counter("soc_discover_directories_total", &[("outcome", "unchanged")])
            .add(stats.skipped_unchanged.len() as u64);
        m.counter("soc_discover_directories_total", &[("outcome", "unreachable")])
            .add(stats.unreachable.len() as u64);
        m.counter("soc_discover_wsdl_errors_total", &[]).add(stats.wsdl_errors.len() as u64);
        m.gauge("soc_discover_catalog_services", &[]).set(catalog.len() as i64);
        stats
    }
}
