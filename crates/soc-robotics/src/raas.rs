//! Robot as a Service: the REST binding of the simulator.
//!
//! This is Figure 1's "Web-based robotics programming environment": a
//! session-oriented service where a client creates a maze+robot
//! session, reads sensors, issues drop-down-simple commands
//! (`forward`, `left`, `right`), or asks the service to run a whole
//! named algorithm — all without seeing any robot hardware detail.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use soc_http::{Handler, Request, Response, Status};
use soc_json::{json, Value};
use soc_rest::router::Router;

use crate::algorithms::{self, Hand, Navigator, RandomWalk, TwoDistanceGreedy, WallFollower};
use crate::maze::Maze;
use crate::robot::{Action, Robot};

struct Session {
    maze: Maze,
    robot: Robot,
}

struct RaasState {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
}

/// The Robot-as-a-Service HTTP service.
pub struct RaasService {
    router: Router,
}

/// Look up a navigator by its service-level name.
pub fn navigator_by_name(name: &str) -> Option<Box<dyn Navigator>> {
    Some(match name {
        "wall-follow-right" => Box::new(WallFollower::new(Hand::Right)),
        "wall-follow-left" => Box::new(WallFollower::new(Hand::Left)),
        "two-distance-greedy" => Box::new(TwoDistanceGreedy::new()),
        "random-walk" => Box::new(RandomWalk::new(0xD1CE)),
        _ => return None,
    })
}

fn session_json(id: u64, s: &Session) -> Value {
    json!({
        "id": (id as i64),
        "width": (s.maze.width()),
        "height": (s.maze.height()),
        "position": [(s.robot.position.0), (s.robot.position.1)],
        "heading": (format!("{:?}", s.robot.heading)),
        "steps": (s.robot.steps()),
        "turns": (s.robot.turns()),
        "bumps": (s.robot.bumps()),
        "at_exit": (s.robot.at_exit(&s.maze))
    })
}

impl RaasService {
    /// Build the service.
    pub fn new() -> Self {
        let state = Arc::new(RaasState {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        });
        let mut router = Router::new();

        // Create a session: {"width": W, "height": H, "seed": S, "braid": f?}
        {
            let st = state.clone();
            router.post("/sessions", move |req, _p| {
                let body = match req
                    .text()
                    .map_err(|e| e.to_string())
                    .and_then(|t| Value::parse(t).map_err(|e| e.to_string()))
                {
                    Ok(v) => v,
                    Err(e) => return Response::error(Status::BAD_REQUEST, &e),
                };
                let width = body.get("width").and_then(Value::as_i64).unwrap_or(11) as usize;
                let height = body.get("height").and_then(Value::as_i64).unwrap_or(11) as usize;
                let seed = body.get("seed").and_then(Value::as_i64).unwrap_or(0) as u64;
                if !(2..=101).contains(&width) || !(2..=101).contains(&height) {
                    return Response::error(Status::UNPROCESSABLE, "maze size out of range");
                }
                let mut maze = Maze::generate(width, height, seed);
                if let Some(f) = body.get("braid").and_then(Value::as_f64) {
                    maze.braid(f, seed.wrapping_add(1));
                }
                let robot = Robot::at_start(&maze);
                let id = st.next_id.fetch_add(1, Ordering::Relaxed);
                let session = Session { maze, robot };
                let out = session_json(id, &session);
                st.sessions.lock().insert(id, session);
                let mut resp = Response::json(&out.to_compact());
                resp.status = Status::CREATED;
                resp
            });
        }
        // Read session state.
        {
            let st = state.clone();
            router.get("/sessions/{id}", move |_req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad session id");
                };
                match st.sessions.lock().get(&id) {
                    Some(s) => Response::json(&session_json(id, s).to_compact()),
                    None => Response::error(Status::NOT_FOUND, "no such session"),
                }
            });
        }
        // Read sensors.
        {
            let st = state.clone();
            router.get("/sessions/{id}/sensors", move |_req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad session id");
                };
                match st.sessions.lock().get(&id) {
                    Some(s) => {
                        let sensors = s.robot.sense(&s.maze);
                        Response::json(
                            &json!({
                                "left": (sensors.left),
                                "front": (sensors.front),
                                "right": (sensors.right)
                            })
                            .to_compact(),
                        )
                    }
                    None => Response::error(Status::NOT_FOUND, "no such session"),
                }
            });
        }
        // Issue one command: {"action": "forward"|"left"|"right"}
        {
            let st = state.clone();
            router.post("/sessions/{id}/move", move |req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad session id");
                };
                let action = req
                    .text()
                    .ok()
                    .and_then(|t| Value::parse(t).ok())
                    .and_then(|v| v.get("action").and_then(Value::as_str).map(str::to_string));
                let action = match action.as_deref() {
                    Some("forward") => Action::Forward,
                    Some("left") => Action::TurnLeft,
                    Some("right") => Action::TurnRight,
                    _ => {
                        return Response::error(
                            Status::UNPROCESSABLE,
                            "action must be forward|left|right",
                        )
                    }
                };
                let mut sessions = st.sessions.lock();
                let Some(s) = sessions.get_mut(&id) else {
                    return Response::error(Status::NOT_FOUND, "no such session");
                };
                let ok = s.robot.act(&s.maze, action);
                let mut out = session_json(id, s);
                out.set("moved", ok);
                Response::json(&out.to_compact())
            });
        }
        // Run an algorithm to completion:
        // {"algorithm": "...", "max_ticks": N}
        {
            let st = state.clone();
            router.post("/sessions/{id}/run", move |req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad session id");
                };
                let body =
                    req.text().ok().and_then(|t| Value::parse(t).ok()).unwrap_or(Value::Null);
                let algo_name = body
                    .get("algorithm")
                    .and_then(Value::as_str)
                    .unwrap_or("wall-follow-right")
                    .to_string();
                let Some(mut nav) = navigator_by_name(&algo_name) else {
                    return Response::error(Status::UNPROCESSABLE, "unknown algorithm");
                };
                let max_ticks =
                    body.get("max_ticks").and_then(Value::as_i64).unwrap_or(10_000) as usize;
                let mut sessions = st.sessions.lock();
                let Some(s) = sessions.get_mut(&id) else {
                    return Response::error(Status::NOT_FOUND, "no such session");
                };
                let outcome = algorithms::run(&s.maze, nav.as_mut(), max_ticks);
                // Leave the session's robot at the run's end point.
                let mut robot = Robot::at_start(&s.maze);
                nav.reset();
                let mut ticks = 0;
                while !robot.at_exit(&s.maze) && ticks < max_ticks {
                    let percept = algorithms::Percept {
                        sensors: robot.sense(&s.maze),
                        position: robot.position,
                        heading: robot.heading,
                        exit: s.maze.exit,
                    };
                    let a = nav.decide(percept);
                    robot.act(&s.maze, a);
                    ticks += 1;
                }
                s.robot = robot;
                Response::json(
                    &json!({
                        "algorithm": algo_name,
                        "reached": (outcome.reached),
                        "steps": (outcome.steps),
                        "turns": (outcome.turns),
                        "bumps": (outcome.bumps),
                        "ticks": (outcome.ticks)
                    })
                    .to_compact(),
                )
            });
        }
        // ASCII rendering of the maze (Figure 1's visual pane).
        {
            let st = state.clone();
            router.get("/sessions/{id}/render", move |_req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad session id");
                };
                match st.sessions.lock().get(&id) {
                    Some(s) => Response::text(s.maze.to_ascii(Some(s.robot.position))),
                    None => Response::error(Status::NOT_FOUND, "no such session"),
                }
            });
        }
        // Delete a session.
        {
            let st = state;
            router.delete("/sessions/{id}", move |_req, p| {
                let Some(id) = p.parse::<u64>("id") else {
                    return Response::error(Status::BAD_REQUEST, "bad session id");
                };
                if st.sessions.lock().remove(&id).is_some() {
                    Response::new(Status::NO_CONTENT)
                } else {
                    Response::error(Status::NOT_FOUND, "no such session")
                }
            });
        }

        RaasService { router }
    }
}

impl Default for RaasService {
    fn default() -> Self {
        RaasService::new()
    }
}

impl Handler for RaasService {
    fn handle(&self, req: Request) -> Response {
        self.router.handle(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::MemNetwork;
    use soc_rest::RestClient;

    fn client() -> RestClient {
        let net = MemNetwork::new();
        net.host("robot", RaasService::new());
        RestClient::new(Arc::new(net))
    }

    fn create(client: &RestClient) -> u64 {
        let v = client
            .post("mem://robot/sessions", &json!({ "width": 9, "height": 9, "seed": 3 }))
            .unwrap();
        v.get("id").and_then(Value::as_i64).unwrap() as u64
    }

    #[test]
    fn session_lifecycle() {
        let c = client();
        let id = create(&c);
        let state = c.get(&format!("mem://robot/sessions/{id}")).unwrap();
        assert_eq!(state.get("steps").and_then(Value::as_i64), Some(0));
        c.delete(&format!("mem://robot/sessions/{id}")).unwrap();
        assert!(c.get(&format!("mem://robot/sessions/{id}")).is_err());
    }

    #[test]
    fn sensors_and_single_moves() {
        let c = client();
        let id = create(&c);
        let sensors = c.get(&format!("mem://robot/sessions/{id}/sensors")).unwrap();
        assert!(sensors.get("front").and_then(Value::as_i64).is_some());
        let out = c
            .post(&format!("mem://robot/sessions/{id}/move"), &json!({ "action": "right" }))
            .unwrap();
        assert_eq!(out.get("turns").and_then(Value::as_i64), Some(1));
        assert_eq!(out.get("moved").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn invalid_action_rejected() {
        let c = client();
        let id = create(&c);
        let err = c
            .post(&format!("mem://robot/sessions/{id}/move"), &json!({ "action": "fly" }))
            .unwrap_err();
        assert!(err.to_string().contains("422"), "{err}");
    }

    #[test]
    fn run_wall_follower_to_exit() {
        let c = client();
        let id = create(&c);
        let out = c
            .post(
                &format!("mem://robot/sessions/{id}/run"),
                &json!({ "algorithm": "wall-follow-right", "max_ticks": 5000 }),
            )
            .unwrap();
        assert_eq!(out.get("reached").and_then(Value::as_bool), Some(true));
        // Session robot ends at the exit.
        let state = c.get(&format!("mem://robot/sessions/{id}")).unwrap();
        assert_eq!(state.get("at_exit").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let c = client();
        let id = create(&c);
        assert!(c
            .post(&format!("mem://robot/sessions/{id}/run"), &json!({ "algorithm": "teleport" }))
            .is_err());
    }

    #[test]
    fn render_returns_ascii() {
        let c = client();
        let id = create(&c);
        let resp = c
            .send_raw(soc_http::Request::get(format!("mem://robot/sessions/{id}/render")))
            .unwrap();
        let art = resp.text_body().unwrap();
        assert!(art.contains(" R "));
        assert!(art.contains("+---"));
    }

    #[test]
    fn oversized_maze_rejected() {
        let c = client();
        let err =
            c.post("mem://robot/sessions", &json!({ "width": 5000, "height": 5 })).unwrap_err();
        assert!(err.to_string().contains("422"), "{err}");
    }
}
