/root/repo/target/release/deps/soc_gateway-d48c3ce2e7606b79.d: crates/soc-gateway/src/lib.rs

/root/repo/target/release/deps/libsoc_gateway-d48c3ce2e7606b79.rlib: crates/soc-gateway/src/lib.rs

/root/repo/target/release/deps/libsoc_gateway-d48c3ce2e7606b79.rmeta: crates/soc-gateway/src/lib.rs

crates/soc-gateway/src/lib.rs:
