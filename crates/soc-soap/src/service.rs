//! The SOAP service host: envelope dispatch plus `?wsdl` self-description.

use std::collections::HashMap;
use std::sync::Arc;

use soc_http::{Handler, Method, Request, Response, Status};

use crate::contract::Contract;
use crate::envelope::{self, Decoded, SoapFault};
use crate::wsdl;

/// Operation implementations receive the request parameters and return
/// output parameters or a fault.
pub type OperationFn =
    dyn Fn(&HashMap<String, String>) -> Result<Vec<(String, String)>, SoapFault> + Send + Sync;

/// A hosted SOAP service: implements [`Handler`], so it can be bound to
/// a TCP server or a `mem://` host directly.
pub struct SoapService {
    contract: Contract,
    endpoint: String,
    implementations: HashMap<String, Arc<OperationFn>>,
}

impl SoapService {
    /// Create a service for `contract`, advertising `endpoint` in its
    /// WSDL.
    pub fn new(contract: Contract, endpoint: &str) -> Self {
        SoapService { contract, endpoint: endpoint.to_string(), implementations: HashMap::new() }
    }

    /// Provide the implementation of an operation. Panics if the
    /// contract does not declare it (an implementation bug worth failing
    /// fast on).
    pub fn implement(
        &mut self,
        operation: &str,
        f: impl Fn(&HashMap<String, String>) -> Result<Vec<(String, String)>, SoapFault>
            + Send
            + Sync
            + 'static,
    ) -> &mut Self {
        assert!(
            self.contract.find(operation).is_some(),
            "contract {} has no operation {operation:?}",
            self.contract.name
        );
        self.implementations.insert(operation.to_string(), Arc::new(f));
        self
    }

    /// The service's contract.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// The WSDL document served at `?wsdl`.
    pub fn wsdl(&self) -> String {
        wsdl::generate(&self.contract, &self.endpoint)
    }

    fn dispatch(&self, req: &Request) -> Result<String, SoapFault> {
        let body = req.text().map_err(|_| SoapFault::client("request body is not UTF-8"))?;
        let decoded = envelope::decode(body)
            .map_err(|e| SoapFault::client(format!("malformed envelope: {e}")))?;
        let payload = match decoded {
            Decoded::Body(b) => b,
            Decoded::Fault(f) => {
                return Err(SoapFault::client(format!("request contained a fault: {f}")))
            }
        };
        if let Some(ns) = &payload.namespace {
            if ns != &self.contract.namespace {
                return Err(SoapFault::client(format!(
                    "operation namespace {ns:?} does not match contract {:?}",
                    self.contract.namespace
                )));
            }
        }
        self.contract
            .validate_inputs(&payload.element, &payload.params)
            .map_err(SoapFault::client)?;

        let implementation = self.implementations.get(&payload.element).ok_or_else(|| {
            SoapFault::server(format!("operation {} not implemented", payload.element))
        })?;

        let args: HashMap<String, String> = payload.params.into_iter().collect();
        let outputs = implementation(&args)?;

        // Validate outputs against the contract too — a service must not
        // break its own interface.
        let op = self.contract.find(&payload.element).expect("validated above");
        for p in &op.outputs {
            let Some((_, v)) = outputs.iter().find(|(n, _)| *n == p.name) else {
                return Err(SoapFault::server(format!(
                    "implementation omitted output {:?}",
                    p.name
                )));
            };
            if !p.ty.accepts(v) {
                return Err(SoapFault::server(format!(
                    "implementation returned {:?}={v:?}, not a valid {}",
                    p.name, p.ty
                )));
            }
        }
        Ok(envelope::encode(
            &self.contract.namespace,
            &format!("{}Response", payload.element),
            &outputs,
        ))
    }
}

impl Handler for SoapService {
    fn handle(&self, req: Request) -> Response {
        // `GET …?wsdl` serves the contract.
        if req.method == Method::Get {
            if req.target.ends_with("?wsdl") || req.query_pairs().iter().any(|(k, _)| k == "wsdl") {
                return Response::xml_owned(self.wsdl());
            }
            return Response::error(
                Status::METHOD_NOT_ALLOWED,
                "POST SOAP envelopes here (GET ?wsdl for the contract)",
            );
        }
        if req.method != Method::Post {
            return Response::error(Status::METHOD_NOT_ALLOWED, "POST required");
        }
        let mut span = soc_observe::span("soap.dispatch", soc_observe::SpanKind::Internal);
        span.set_attr("soap.service", self.contract.name.as_str());
        let result = {
            let _active = span.activate();
            self.dispatch(&req)
        };
        match result {
            Ok(xml) => Response::xml_owned(xml),
            Err(fault) => {
                span.set_error(format!("{}: {}", fault.code, fault.message));
                // SOAP 1.1: faults ride on HTTP 500.
                let mut resp = Response::xml_owned(envelope::encode_fault(&fault));
                resp.status = Status::INTERNAL_SERVER_ERROR;
                resp.headers.set("X-Soap-Fault", &fault.code);
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Operation, XsdType};

    fn service() -> SoapService {
        let contract = Contract::new("Calc", "urn:soc:calc").operation(
            Operation::new("Add")
                .input("a", XsdType::Int)
                .input("b", XsdType::Int)
                .output("sum", XsdType::Int),
        );
        let mut svc = SoapService::new(contract, "mem://calc/soap");
        svc.implement("Add", |params| {
            let a: i64 = params["a"].parse().unwrap();
            let b: i64 = params["b"].parse().unwrap();
            Ok(vec![("sum".to_string(), (a + b).to_string())])
        });
        svc
    }

    fn call(svc: &SoapService, xml: &str) -> Response {
        svc.handle(Request::post("/soap", Vec::new()).with_text("text/xml", xml))
    }

    #[test]
    fn dispatches_valid_call() {
        let svc = service();
        let req = envelope::encode(
            "urn:soc:calc",
            "Add",
            &[("a".into(), "2".into()), ("b".into(), "40".into())],
        );
        let resp = call(&svc, &req);
        assert_eq!(resp.status, Status::OK);
        match envelope::decode(resp.text_body().unwrap()).unwrap() {
            Decoded::Body(b) => {
                assert_eq!(b.element, "AddResponse");
                assert_eq!(b.params, vec![("sum".to_string(), "42".to_string())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn type_errors_become_client_faults() {
        let svc = service();
        let req = envelope::encode(
            "urn:soc:calc",
            "Add",
            &[("a".into(), "two".into()), ("b".into(), "40".into())],
        );
        let resp = call(&svc, &req);
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        match envelope::decode(resp.text_body().unwrap()).unwrap() {
            Decoded::Fault(f) => assert_eq!(f.code, "soap:Client"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_operation_faults() {
        let svc = service();
        let req = envelope::encode("urn:soc:calc", "Sub", &[]);
        let resp = call(&svc, &req);
        match envelope::decode(resp.text_body().unwrap()).unwrap() {
            Decoded::Fault(f) => assert!(f.message.contains("unknown operation")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_namespace_faults() {
        let svc = service();
        let req = envelope::encode(
            "urn:someone:else",
            "Add",
            &[("a".into(), "1".into()), ("b".into(), "2".into())],
        );
        let resp = call(&svc, &req);
        match envelope::decode(resp.text_body().unwrap()).unwrap() {
            Decoded::Fault(f) => assert!(f.message.contains("namespace")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn implementation_fault_propagates() {
        let contract = Contract::new("F", "urn:f")
            .operation(Operation::new("Boom").output("x", XsdType::String));
        let mut svc = SoapService::new(contract, "mem://f");
        svc.implement("Boom", |_| Err(SoapFault::server("kaboom").with_detail("d")));
        let resp = call(&svc, &envelope::encode("urn:f", "Boom", &[]));
        match envelope::decode(resp.text_body().unwrap()).unwrap() {
            Decoded::Fault(f) => {
                assert_eq!(f.code, "soap:Server");
                assert_eq!(f.detail.as_deref(), Some("d"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_output_is_server_fault() {
        let contract =
            Contract::new("B", "urn:b").operation(Operation::new("N").output("n", XsdType::Int));
        let mut svc = SoapService::new(contract, "mem://b");
        svc.implement("N", |_| Ok(vec![("n".to_string(), "not-a-number".to_string())]));
        let resp = call(&svc, &envelope::encode("urn:b", "N", &[]));
        match envelope::decode(resp.text_body().unwrap()).unwrap() {
            Decoded::Fault(f) => assert_eq!(f.code, "soap:Server"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serves_wsdl_on_get() {
        let svc = service();
        let resp = svc.handle(Request::get("/soap?wsdl"));
        assert_eq!(resp.status, Status::OK);
        let parsed = wsdl::parse(resp.text_body().unwrap()).unwrap();
        assert_eq!(parsed.contract.name, "Calc");
        assert_eq!(parsed.endpoint, "mem://calc/soap");
    }

    #[test]
    fn get_without_wsdl_is_405() {
        let svc = service();
        assert_eq!(svc.handle(Request::get("/soap")).status, Status::METHOD_NOT_ALLOWED);
    }

    #[test]
    #[should_panic(expected = "no operation")]
    fn implementing_undeclared_operation_panics() {
        let mut svc = service();
        svc.implement("Nope", |_| Ok(vec![]));
    }

    #[test]
    fn malformed_xml_is_client_fault() {
        let svc = service();
        let resp = call(&svc, "<<<not xml");
        assert_eq!(resp.headers.get("X-Soap-Fault"), Some("soap:Client"));
    }
}
