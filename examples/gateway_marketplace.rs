//! The Section V marketplace behind the QoS-aware gateway.
//!
//! Three replicas of the ASU service host sit behind one gateway
//! endpoint. The replicas are registered in the service directory, the
//! gateway resolves them through a [`RegistryResolver`] with a lease,
//! and the fault injector plays the paper's unreliable-service world:
//! one replica drops every 5th request, another is slow, and later one
//! goes offline entirely. Clients talking to `mem://gw` never notice.
//!
//! ```sh
//! cargo run --release --example gateway_marketplace
//! ```

use std::sync::Arc;
use std::time::Duration;

use soc::gateway::{BreakerConfig, Gateway, GatewayConfig, Policy, RegistryResolver};
use soc::http::mem::{FaultConfig, Transport};
use soc::http::{MemNetwork, Request};
use soc::json::ser::to_string;
use soc::registry::directory::DirectoryService;
use soc::registry::{Binding, Repository, ServiceDescriptor};
use soc::services::bindings::ServiceHost;

fn main() {
    let net = MemNetwork::new();

    // Three replicas of the Section V service host.
    for (i, name) in ["asu-0", "asu-1", "asu-2"].iter().enumerate() {
        net.host(name, ServiceHost::new(7 + i as u64));
    }
    // The paper's fault model: one replica flaky, one slow.
    net.set_fault("asu-1", FaultConfig { fail_every: 5, ..Default::default() });
    net.set_fault("asu-2", FaultConfig { latency: Duration::from_millis(2), ..Default::default() });

    // Register the replicas in the service directory under the
    // `asu#N` replica convention.
    let repo = Repository::new();
    for i in 0..3 {
        repo.publish(
            ServiceDescriptor::new(
                &format!("asu#{i}"),
                "asu",
                &format!("mem://asu-{i}"),
                Binding::Rest,
            )
            .describe("replicated ASU sample-service host")
            .category("infrastructure")
            .provider("asu-repository"),
        )
        .unwrap();
    }
    let (dir, _) = DirectoryService::new(repo, vec![]);
    net.host("dir", dir);

    // The gateway resolves replicas from the directory (5 s lease).
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let resolver =
        Arc::new(RegistryResolver::new(transport.clone(), "mem://dir", Duration::from_secs(5)));
    // Round-robin spreads load across all replicas (least-latency
    // would funnel everything to the single fastest one).
    let gw = Gateway::with_resolver(
        transport,
        resolver,
        GatewayConfig {
            policy: Policy::RoundRobin,
            breaker: BreakerConfig { cool_down: Duration::from_millis(100), ..Default::default() },
            ..GatewayConfig::default()
        },
    );
    net.host("gw", gw.clone());

    // Clients hit one stable endpoint, oblivious to replica health.
    println!("== 200 credit-score lookups through mem://gw ==");
    let mut ok = 0;
    for i in 0..200 {
        let ssn = format!("{:03}-{:02}-{:04}", i % 900, i % 90, 1000 + i);
        let resp =
            net.send(Request::get(format!("mem://gw/svc/asu/credit/score?ssn={ssn}"))).unwrap();
        if resp.status.is_success() {
            ok += 1;
        }
    }
    println!("client-visible success: {ok}/200 despite 20% faults on asu-1\n");

    // Now a replica disappears outright — the paper's "removed without
    // notice". Its breaker opens and the survivors carry the load.
    net.set_fault("asu-0", FaultConfig { offline: true, ..Default::default() });
    let mut ok = 0;
    for _ in 0..60 {
        let resp = net.send(Request::get("mem://gw/svc/asu/health")).unwrap();
        if resp.status.is_success() {
            ok += 1;
        }
    }
    println!("== asu-0 offline ==");
    println!("client-visible success: {ok}/60");
    println!("breaker(asu-0) = {:?}", gw.breaker_state("mem://asu-0").map(|s| s.as_str()));

    // It comes back; after the cool-down the breaker lets probes in and
    // closes again.
    net.set_fault("asu-0", FaultConfig::default());
    std::thread::sleep(Duration::from_millis(120));
    for _ in 0..20 {
        net.send(Request::get("mem://gw/svc/asu/health")).unwrap();
    }
    println!(
        "after recovery: breaker(asu-0) = {:?}\n",
        gw.breaker_state("mem://asu-0").map(|s| s.as_str())
    );

    // The stats endpoint, exactly as a client would fetch it.
    let stats = net.send(Request::get("mem://gw/gateway/stats")).unwrap();
    let v = soc::json::Value::parse(stats.text_body().unwrap()).unwrap();
    println!("== GET mem://gw/gateway/stats ==\n{}", to_string(&v, true));
}
