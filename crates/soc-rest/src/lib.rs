//! # soc-rest — the RESTful service framework
//!
//! CSE446's project list includes *"RESTful service development"* and
//! *"Web applications consuming RESTful services"*. This crate is the
//! framework those projects would use:
//!
//! - [`router`] — method + path-template routing (`/services/{id}`),
//!   404/405 handling with `Allow` headers, and a [`router::Router`]
//!   that plugs directly into `soc-http` as a [`soc_http::Handler`].
//! - [`middleware`] — a composable around-chain: logging, API-key
//!   authentication, and rate limiting are provided (the dependability
//!   unit's "security mechanisms that safeguard the Web applications").
//! - [`resource`] — a CRUD [`resource::Resource`] trait auto-mounted to
//!   REST conventions with JSON payloads.
//! - [`client`] — a typed [`client::RestClient`] over any
//!   [`soc_http::Transport`] with JSON encode/decode and error mapping.
//! - [`negotiate`] — `Accept`-header content negotiation between JSON
//!   and XML renderings of the same data.
//!
//! ```
//! use soc_rest::router::Router;
//! use soc_http::{Request, Response, Status};
//! use soc_http::mem::{MemNetwork, Transport};
//!
//! let mut router = Router::new();
//! router.get("/hello/{name}", |_req, p| {
//!     Response::text(format!("hi {}", p.get("name").unwrap()))
//! });
//! let net = MemNetwork::new();
//! net.host("svc", router);
//! let resp = net.send(Request::get("mem://svc/hello/ann")).unwrap();
//! assert_eq!(resp.text_body().unwrap(), "hi ann");
//! ```

pub mod client;
pub mod middleware;
pub mod negotiate;
pub mod resource;
pub mod router;

pub use client::{RestClient, RestError};
pub use router::{PathParams, Router};
