/root/repo/target/debug/deps/soc_parallel-cc69bebcd8b99037.d: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_parallel-cc69bebcd8b99037.rmeta: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs Cargo.toml

crates/soc-parallel/src/lib.rs:
crates/soc-parallel/src/metrics.rs:
crates/soc-parallel/src/par_iter.rs:
crates/soc-parallel/src/pipeline.rs:
crates/soc-parallel/src/pool.rs:
crates/soc-parallel/src/simcore.rs:
crates/soc-parallel/src/sync/mod.rs:
crates/soc-parallel/src/sync/barrier.rs:
crates/soc-parallel/src/sync/buffer.rs:
crates/soc-parallel/src/sync/event.rs:
crates/soc-parallel/src/sync/semaphore.rs:
crates/soc-parallel/src/sync/spinlock.rs:
crates/soc-parallel/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
