//! **Figure 1 harness** — the "Web-based robotics programming
//! environment": drive the Robot-as-a-Service API the way the paper's
//! web page does (a few drop-down commands, sensors, then an autonomous
//! algorithm), printing each interaction and the rendered maze.
//!
//! ```sh
//! cargo run -p soc-bench --bin fig1_raas
//! ```

use std::sync::Arc;

use soc_http::{MemNetwork, Request};
use soc_json::{json, Value};
use soc_rest::RestClient;
use soc_robotics::raas::RaasService;

fn main() {
    println!("Figure 1: Web-based robotics programming environment (Robot as a Service)");
    soc_bench::print_rule(74);

    let net = MemNetwork::new();
    net.host("robot", RaasService::new());
    let rest = RestClient::new(Arc::new(net));

    // Create a session — the page's "new maze" button.
    let session = rest
        .post("mem://robot/sessions", &json!({ "width": 13, "height": 9, "seed": 14 }))
        .expect("session");
    let id = session.get("id").and_then(Value::as_i64).unwrap();
    println!("POST /sessions            -> session {id}");

    // The "program" a student writes with a few drop-down commands.
    let program = ["forward", "forward", "right", "forward", "left", "forward"];
    println!("\nstudent program: {program:?}");
    for cmd in program {
        let out = rest
            .post(&format!("mem://robot/sessions/{id}/move"), &json!({ "action": cmd }))
            .expect("move");
        println!(
            "POST /sessions/{id}/move    {cmd:<8} -> position {} heading {} (moved: {})",
            out.get("position").map(|p| p.to_compact()).unwrap_or_default(),
            out.get("heading").and_then(Value::as_str).unwrap_or("?"),
            out.get("moved").and_then(Value::as_bool).unwrap_or(false),
        );
    }

    let sensors = rest.get(&format!("mem://robot/sessions/{id}/sensors")).expect("sensors");
    println!("GET  /sessions/{id}/sensors -> {sensors}");

    // Hand control to each autonomous algorithm — the page's comparison.
    println!("\nautonomous runs (fresh sessions, same maze seed):");
    println!("{:<24} {:>8} {:>7} {:>7}", "algorithm", "reached", "steps", "ticks");
    for algo in ["two-distance-greedy", "wall-follow-right", "wall-follow-left", "random-walk"] {
        let s = rest
            .post("mem://robot/sessions", &json!({ "width": 13, "height": 9, "seed": 14 }))
            .unwrap();
        let sid = s.get("id").and_then(Value::as_i64).unwrap();
        let run = rest
            .post(
                &format!("mem://robot/sessions/{sid}/run"),
                &json!({ "algorithm": algo, "max_ticks": 20000 }),
            )
            .unwrap();
        println!(
            "{:<24} {:>8} {:>7} {:>7}",
            algo,
            run.get("reached").and_then(Value::as_bool).unwrap_or(false),
            run.get("steps").and_then(Value::as_i64).unwrap_or(-1),
            run.get("ticks").and_then(Value::as_i64).unwrap_or(-1),
        );
    }

    // The rendered maze pane.
    let art = rest.send_raw(Request::get(format!("mem://robot/sessions/{id}/render"))).unwrap();
    println!("\nmaze pane (S start, E exit, R robot):\n{}", art.text_body().unwrap());
}
