//! Tier-1 properties of the zero-copy XML data plane.
//!
//! Two guarantees ride on these tests:
//!
//! 1. **Round-trip fidelity** — `parse(serialize(doc))` reproduces the
//!    document (semantic tree equality), across entity-hostile text,
//!    CDATA sections, attribute values, and deep nesting.
//! 2. **Reader equivalence** — the borrowed event API and the owned
//!    event API describe byte-identical event streams: the zero-copy
//!    fast path changes performance, never meaning.

use proptest::prelude::*;
use soc_xml::reader::OwnedAttribute;
use soc_xml::{Document, NodeId, OwnedEvent, XmlEvent, XmlReader};

// ---------------------------------------------------------------------
// Round-trip: parse(serialize(doc)) == doc
// ---------------------------------------------------------------------

/// Document content with XML-hostile characters: `& < > ' "` all force
/// entity escapes on the way out and expansion on the way back in.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~é\\n\\t]{1,20}").unwrap()
}

#[derive(Debug, Clone)]
enum Tree {
    Text(String),
    CData(String),
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Tree> },
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        // A CDATA section cannot contain its own terminator; the writer
        // would split it into two sections, which reparse as two nodes.
        text_strategy().prop_map(|s| Tree::CData(s.replace("]]>", "]) >"))),
    ];
    // Depth 6 comfortably exceeds the "deep nesting" bar while keeping
    // shrunk counterexamples readable.
    leaf.prop_recursive(6, 48, 4, |inner| {
        (
            "[a-f]{1,4}",
            proptest::collection::vec(("[g-k]{1,3}", text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn build(doc: &mut Document, parent: NodeId, tree: &Tree) {
    match tree {
        // Adjacent text siblings merge on reparse and empty text
        // disappears, so the builder normalizes both away: a document
        // that can't be expressed in XML isn't a round-trip failure.
        Tree::Text(t) => {
            doc.add_text(parent, t.clone());
        }
        Tree::CData(t) => {
            doc.add_cdata(parent, t.clone());
        }
        Tree::Element { name, attrs, children } => {
            let el = doc.add_element(parent, name.as_str());
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    doc.set_attr(el, k.as_str(), v.clone());
                }
            }
            let mut prev_was_text = false;
            for c in children {
                if matches!(c, Tree::Text(_)) {
                    if prev_was_text {
                        continue;
                    }
                    prev_was_text = true;
                } else {
                    prev_was_text = false;
                }
                build(doc, el, c);
            }
        }
    }
}

proptest! {
    /// The flagship property: serialize to XML text, reparse, and the
    /// two documents are semantically equal (names, attributes, node
    /// kinds, text — arena layout and interner state excluded).
    #[test]
    fn parse_of_serialize_is_identity(trees in proptest::collection::vec(tree_strategy(), 0..4)) {
        let mut doc = Document::new("root");
        let root = doc.root();
        let mut prev_was_text = false;
        for t in &trees {
            if matches!(t, Tree::Text(_)) {
                if prev_was_text {
                    continue;
                }
                prev_was_text = true;
            } else {
                prev_was_text = false;
            }
            build(&mut doc, root, t);
        }
        let xml = doc.to_xml();
        let reparsed = Document::parse_str_keep_whitespace(&xml).unwrap();
        prop_assert_eq!(&reparsed, &doc);
        // And the reparse is a serialization fixpoint.
        prop_assert_eq!(reparsed.to_xml(), xml);
    }

    /// Attribute round-trip under every escape-worthy character.
    #[test]
    fn attributes_round_trip(k in "[a-z]{1,6}", v in text_strategy()) {
        let mut doc = Document::new("r");
        doc.set_attr(doc.root(), k.as_str(), v.clone());
        let reparsed = Document::parse_str(&doc.to_xml()).unwrap();
        prop_assert_eq!(&reparsed, &doc);
    }
}

#[test]
fn deep_nesting_round_trips() {
    let mut doc = Document::new("d0");
    let mut cur = doc.root();
    for depth in 1..=64 {
        cur = doc.add_element(cur, format!("d{depth}").as_str());
        doc.set_attr(cur, "depth", depth.to_string());
    }
    doc.add_text(cur, "bottom & <deep>");
    let xml = doc.to_xml();
    let reparsed = Document::parse_str_keep_whitespace(&xml).unwrap();
    assert_eq!(reparsed, doc);
}

#[test]
fn entities_and_cdata_round_trip() {
    let mut doc = Document::new("mix");
    let root = doc.root();
    doc.add_text(root, "a < b && c > 'd' \"e\"");
    doc.add_cdata(root, "<raw & unescaped>");
    let el = doc.add_element(root, "item");
    doc.set_attr(el, "q", "\"quoted\" & <angled>");
    let reparsed = Document::parse_str_keep_whitespace(&doc.to_xml()).unwrap();
    assert_eq!(reparsed, doc);
}

// ---------------------------------------------------------------------
// Equivalence: borrowed events == owned events
// ---------------------------------------------------------------------

/// Convert one borrowed event (plus the reader's attribute buffer) into
/// its owned form, mirroring what `next_owned` promises to produce.
fn to_owned(ev: XmlEvent<'_>, reader: &XmlReader<'_>) -> OwnedEvent {
    match ev {
        XmlEvent::StartDocument { version, encoding } => OwnedEvent::StartDocument {
            version: version.to_string(),
            encoding: encoding.map(str::to_string),
        },
        XmlEvent::StartElement { name } => OwnedEvent::StartElement {
            name: name.to_qname(),
            attributes: reader
                .attributes()
                .iter()
                .map(|a| OwnedAttribute { name: a.name.to_qname(), value: a.value.to_string() })
                .collect(),
        },
        XmlEvent::EndElement { name } => OwnedEvent::EndElement { name: name.to_qname() },
        XmlEvent::Text(t) => OwnedEvent::Text(t.into_owned()),
        XmlEvent::CData(t) => OwnedEvent::CData(t.to_string()),
        XmlEvent::Comment(t) => OwnedEvent::Comment(t.to_string()),
        XmlEvent::ProcessingInstruction { target, data } => {
            OwnedEvent::ProcessingInstruction { target: target.to_string(), data: data.to_string() }
        }
        XmlEvent::Doctype(t) => OwnedEvent::Doctype(t.to_string()),
        XmlEvent::EndDocument => OwnedEvent::EndDocument,
    }
}

fn borrowed_stream_as_owned(input: &str) -> Vec<OwnedEvent> {
    let mut reader = XmlReader::new(input);
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event().unwrap();
        let done = ev == XmlEvent::EndDocument;
        events.push(to_owned(ev, &reader));
        if done {
            return events;
        }
    }
}

fn owned_stream(input: &str) -> Vec<OwnedEvent> {
    let mut reader = XmlReader::new(input);
    let mut events = Vec::new();
    loop {
        let ev = reader.next_owned().unwrap();
        let done = ev == OwnedEvent::EndDocument;
        events.push(ev);
        if done {
            return events;
        }
    }
}

/// Documents exercising every event kind and both `Cow` branches
/// (borrowed clean text, owned entity-expanded text).
const EQUIVALENCE_CORPUS: &[&str] = &[
    "<a/>",
    "<a x='1' y=\"two\"/>",
    r#"<?xml version="1.0" encoding="UTF-8"?><root><child>text</child></root>"#,
    "<r>plain then &amp; escaped &lt;text&gt;</r>",
    "<r a='clean' b='with &quot;entities&quot; &amp; more'/>",
    "<r><![CDATA[raw <markup> & text]]></r>",
    "<!DOCTYPE note SYSTEM \"note.dtd\"><note>n</note>",
    "<r><!-- a comment --><?target some data?></r>",
    "<ns:outer xmlns:ns='urn:x'><ns:inner ns:attr='v'/></ns:outer>",
    "<deep><a><b><c><d><e>leaf</e></d></c></b></a></deep>",
    "<mixed>t1<el/>t2<![CDATA[c]]>t3</mixed>",
    "<r>&#65;&#x42; numeric &apos;refs&apos;</r>",
];

#[test]
fn borrowed_and_owned_streams_are_identical() {
    for input in EQUIVALENCE_CORPUS {
        assert_eq!(
            borrowed_stream_as_owned(input),
            owned_stream(input),
            "event streams diverged for {input:?}"
        );
    }
}

proptest! {
    /// The equivalence also holds for every serializable document, not
    /// just the hand-picked corpus.
    #[test]
    fn borrowed_and_owned_streams_agree_on_generated_docs(tree in tree_strategy()) {
        let mut doc = Document::new("root");
        let root = doc.root();
        build(&mut doc, root, &tree);
        let xml = doc.to_xml();
        prop_assert_eq!(borrowed_stream_as_owned(&xml), owned_stream(&xml));
    }
}
