//! **Figure 3 harness** — "Speedup and efficiency" of Collatz
//! conjecture validation, single core up through 32 cores.
//!
//! The paper measured a TBB-threaded validator on Intel's 32-core
//! Manycore Testing Lab and plotted speedup plus usage efficiency for
//! 4, 8, 16, and 32 cores against a single core. We reproduce it twice:
//!
//! 1. **Measured** — the real `soc-parallel` work-stealing pool on this
//!    host (bounded by the host's core count).
//! 2. **Simulated** — the identical task graph list-scheduled on k
//!    virtual cores (`soc_parallel::simcore`), which reproduces the
//!    1–32-core *shape* regardless of the host (see DESIGN.md's
//!    substitution table).
//!
//! ```sh
//! cargo run -p soc-bench --release --bin fig3_collatz
//! ```

use std::time::Instant;

use soc_curriculum::chart::ascii_chart;
use soc_parallel::metrics::{amdahl_speedup, scaling_table};
use soc_parallel::simcore::scaling_series;
use soc_parallel::workloads::{collatz_task_graph, validate_parallel, validate_sequential};
use soc_parallel::{Schedule, ThreadPool};

fn main() {
    let limit: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(400_000);
    let cores = [1usize, 4, 8, 16, 32];

    println!("Figure 3: Collatz conjecture validation over [1, {limit}]");
    soc_bench::print_rule(64);

    // ---- measured on this host ----------------------------------------
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n[measured] host parallelism: {host} hardware thread(s)");
    let mut raw = Vec::new();
    let reference = validate_sequential(limit);
    for &threads in cores.iter().filter(|&&c| c <= (host * 4).max(4)) {
        let pool = ThreadPool::new(threads);
        let start = Instant::now();
        let report = validate_parallel(&pool, limit, Schedule::Dynamic { chunk: 1024 });
        let elapsed = start.elapsed();
        assert_eq!(report, reference, "parallel result must match sequential");
        raw.push((threads, elapsed));
    }
    println!("{:>8} {:>12} {:>9} {:>11}", "threads", "time", "speedup", "efficiency");
    for row in scaling_table(raw) {
        println!(
            "{:>8} {:>12?} {:>9.2} {:>10.1}%",
            row.threads,
            row.elapsed,
            row.speedup,
            row.efficiency * 100.0
        );
    }
    println!(
        "(longest trajectory below {limit}: {} steps at n = {})",
        reference.max_steps, reference.argmax
    );
    if host < 4 {
        println!(
            "note: only {host} hardware thread(s) available — oversubscribed rows \
             demonstrate the Table 1 lesson that more threads than cores does not help."
        );
    }

    // ---- simulated 1..32 virtual cores ---------------------------------
    println!("\n[simulated] identical task graph on k virtual cores (list scheduling)");
    let graph = collatz_task_graph(limit.min(200_000), 256);
    let series = scaling_series(&graph, &cores, 2);
    println!("{:>8} {:>9} {:>11}", "cores", "speedup", "efficiency");
    for &(c, s, e) in &series {
        println!("{c:>8} {s:>9.2} {:>10.1}%", e * 100.0);
    }

    // The figure itself, in ASCII.
    let speedups: Vec<f64> = series.iter().map(|&(_, s, _)| s).collect();
    let efficiencies: Vec<f64> = series.iter().map(|&(_, _, e)| e * 32.0).collect();
    println!("\nFigure 3 (simulated; efficiency scaled ×32 to share the axis):");
    print!("{}", ascii_chart(&[("speedup", &speedups), ("efficiency", &efficiencies)], 48, 12));
    println!("          x-axis: cores = 1, 4, 8, 16, 32");

    // Amdahl cross-check: estimate the serial fraction from the 32-core
    // point and verify the whole curve is consistent with that model.
    let (_, s32, _) = *series.last().unwrap();
    let serial_est = (32.0 / s32 - 1.0) / 31.0;
    println!(
        "\nAmdahl cross-check: 32-core speedup {s32:.2} implies serial fraction ≈ {:.2}%",
        serial_est * 100.0
    );
    println!("{:>8} {:>11} {:>11}", "cores", "simulated", "amdahl-fit");
    for &(c, s, _) in &series {
        println!("{c:>8} {s:>11.2} {:>11.2}", amdahl_speedup(serial_est.clamp(0.0, 1.0), c));
    }

    // Shape assertions (what EXPERIMENTS.md records).
    assert!(series.windows(2).all(|w| w[1].1 > w[0].1), "speedup must rise with cores");
    assert!(series.windows(2).all(|w| w[1].2 <= w[0].2 + 1e-9), "efficiency must fall");
    let (_, s32, e32) = *series.last().unwrap();
    println!(
        "\nshape check: monotone speedup ✓, declining efficiency ✓, \
         32-core speedup {s32:.1} ({:.0}% efficiency) — sublinear, as in the paper.",
        e32 * 100.0
    );
}
