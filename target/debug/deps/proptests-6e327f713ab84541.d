/root/repo/target/debug/deps/proptests-6e327f713ab84541.d: crates/soc-http/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6e327f713ab84541: crates/soc-http/tests/proptests.rs

crates/soc-http/tests/proptests.rs:
