/root/repo/target/debug/deps/proptests-975816d5fadaebcf.d: crates/soc-workflow/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-975816d5fadaebcf.rmeta: crates/soc-workflow/tests/proptests.rs Cargo.toml

crates/soc-workflow/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
