/root/repo/target/debug/deps/gateway_resilience-be3a8e727b00dab3.d: tests/gateway_resilience.rs

/root/repo/target/debug/deps/gateway_resilience-be3a8e727b00dab3: tests/gateway_resilience.rs

tests/gateway_resilience.rs:
