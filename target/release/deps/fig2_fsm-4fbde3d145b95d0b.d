/root/repo/target/release/deps/fig2_fsm-4fbde3d145b95d0b.d: crates/soc-bench/src/bin/fig2_fsm.rs

/root/repo/target/release/deps/fig2_fsm-4fbde3d145b95d0b: crates/soc-bench/src/bin/fig2_fsm.rs

crates/soc-bench/src/bin/fig2_fsm.rs:
