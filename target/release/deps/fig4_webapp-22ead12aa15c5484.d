/root/repo/target/release/deps/fig4_webapp-22ead12aa15c5484.d: crates/soc-bench/src/bin/fig4_webapp.rs

/root/repo/target/release/deps/fig4_webapp-22ead12aa15c5484: crates/soc-bench/src/bin/fig4_webapp.rs

crates/soc-bench/src/bin/fig4_webapp.rs:
