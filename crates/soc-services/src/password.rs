//! The random string / strong password generation service, with an
//! entropy estimator so clients can see *why* a password is strong.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Character classes to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Charset {
    /// a–z
    pub lower: bool,
    /// A–Z
    pub upper: bool,
    /// 0–9
    pub digits: bool,
    /// Punctuation.
    pub symbols: bool,
}

impl Charset {
    /// Everything on.
    pub fn full() -> Self {
        Charset { lower: true, upper: true, digits: true, symbols: true }
    }

    /// Letters and digits only.
    pub fn alphanumeric() -> Self {
        Charset { lower: true, upper: true, digits: true, symbols: false }
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a = Vec::new();
        if self.lower {
            a.extend('a'..='z');
        }
        if self.upper {
            a.extend('A'..='Z');
        }
        if self.digits {
            a.extend('0'..='9');
        }
        if self.symbols {
            a.extend("!@#$%^&*()-_=+[]{}<>?".chars());
        }
        a
    }
}

/// The generator service (seedable for reproducible tests; production
/// callers seed from the OS).
pub struct PasswordService {
    rng: parking_lot::Mutex<StdRng>,
}

impl PasswordService {
    /// Service with an explicit seed.
    pub fn new(seed: u64) -> Self {
        PasswordService { rng: parking_lot::Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// Generate a random string of `length` from `charset`. When the
    /// charset enables a class, the output is guaranteed to contain at
    /// least one character of it (the classic policy requirement),
    /// provided `length` allows.
    pub fn generate(&self, length: usize, charset: Charset) -> Result<String, String> {
        let alphabet = charset.alphabet();
        if alphabet.is_empty() {
            return Err("charset selects no characters".into());
        }
        if length == 0 || length > 1024 {
            return Err("length must be in 1..=1024".into());
        }
        let mut rng = self.rng.lock();
        loop {
            let candidate: String =
                (0..length).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect();
            if Self::satisfies(&candidate, charset) || length < Self::classes_on(charset) {
                return Ok(candidate);
            }
        }
    }

    fn classes_on(c: Charset) -> usize {
        [c.lower, c.upper, c.digits, c.symbols].iter().filter(|&&b| b).count()
    }

    fn satisfies(s: &str, c: Charset) -> bool {
        (!c.lower || s.chars().any(|ch| ch.is_ascii_lowercase()))
            && (!c.upper || s.chars().any(|ch| ch.is_ascii_uppercase()))
            && (!c.digits || s.chars().any(|ch| ch.is_ascii_digit()))
            && (!c.symbols || s.chars().any(|ch| !ch.is_ascii_alphanumeric()))
    }

    /// Shannon-style entropy estimate in bits: `length × log2(|alphabet|)`
    /// for the smallest standard alphabet covering the string.
    pub fn entropy_bits(password: &str) -> f64 {
        let mut alphabet = 0usize;
        if password.chars().any(|c| c.is_ascii_lowercase()) {
            alphabet += 26;
        }
        if password.chars().any(|c| c.is_ascii_uppercase()) {
            alphabet += 26;
        }
        if password.chars().any(|c| c.is_ascii_digit()) {
            alphabet += 10;
        }
        if password.chars().any(|c| !c.is_ascii_alphanumeric()) {
            alphabet += 21;
        }
        if alphabet == 0 {
            return 0.0;
        }
        password.chars().count() as f64 * (alphabet as f64).log2()
    }

    /// Strength label from the entropy estimate.
    pub fn strength(password: &str) -> &'static str {
        let bits = Self::entropy_bits(password);
        if bits < 28.0 {
            "very weak"
        } else if bits < 45.0 {
            "weak"
        } else if bits < 70.0 {
            "reasonable"
        } else if bits < 100.0 {
            "strong"
        } else {
            "very strong"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        let svc = PasswordService::new(1);
        for len in [1, 8, 16, 64] {
            assert_eq!(svc.generate(len, Charset::full()).unwrap().chars().count(), len);
        }
    }

    #[test]
    fn respects_charset() {
        let svc = PasswordService::new(2);
        let digits_only = Charset { lower: false, upper: false, digits: true, symbols: false };
        let p = svc.generate(32, digits_only).unwrap();
        assert!(p.chars().all(|c| c.is_ascii_digit()), "{p}");
    }

    #[test]
    fn covers_all_enabled_classes() {
        let svc = PasswordService::new(3);
        for _ in 0..20 {
            let p = svc.generate(12, Charset::full()).unwrap();
            assert!(p.chars().any(|c| c.is_ascii_lowercase()), "{p}");
            assert!(p.chars().any(|c| c.is_ascii_uppercase()), "{p}");
            assert!(p.chars().any(|c| c.is_ascii_digit()), "{p}");
            assert!(p.chars().any(|c| !c.is_ascii_alphanumeric()), "{p}");
        }
    }

    #[test]
    fn rejects_degenerate_requests() {
        let svc = PasswordService::new(4);
        let none = Charset { lower: false, upper: false, digits: false, symbols: false };
        assert!(svc.generate(8, none).is_err());
        assert!(svc.generate(0, Charset::full()).is_err());
        assert!(svc.generate(2000, Charset::full()).is_err());
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = PasswordService::new(9).generate(16, Charset::full()).unwrap();
        let b = PasswordService::new(9).generate(16, Charset::full()).unwrap();
        assert_eq!(a, b);
        let c = PasswordService::new(10).generate(16, Charset::full()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn entropy_estimates() {
        assert_eq!(PasswordService::entropy_bits(""), 0.0);
        let lower8 = PasswordService::entropy_bits("abcdefgh");
        assert!((lower8 - 8.0 * (26f64).log2()).abs() < 1e-9);
        assert!(
            PasswordService::entropy_bits("aB3!aB3!") > PasswordService::entropy_bits("aaaaaaaa")
        );
    }

    #[test]
    fn strength_labels_monotone() {
        assert_eq!(PasswordService::strength("abc"), "very weak");
        assert_eq!(PasswordService::strength("abcdefgh"), "weak");
        assert_eq!(PasswordService::strength("aB3!xY9?qW"), "reasonable");
        assert_eq!(PasswordService::strength("aB3!xY9?qW7$mN2&kL5t"), "very strong");
    }
}
