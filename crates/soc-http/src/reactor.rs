//! The readiness-driven server transport: one event-loop thread owns
//! every connection's I/O, handlers run on the `soc-parallel` pool.
//!
//! The threaded transport parks one pool thread per connection, which
//! caps real concurrency at pool size — an idle keep-alive connection
//! costs a whole blocked thread. Here the reactor multiplexes all
//! connections over a [`Poller`](crate::poller::Poller) (epoll on
//! Linux): sockets are nonblocking, each connection is a small state
//! machine
//!
//! ```text
//! ReadingHead → ReadingBody → Handling → Writing ─┐
//!      ▲                                          │ keep-alive
//!      └────────────── KeepAlive ◄────────────────┘
//! ```
//!
//! and the bytes live in per-connection incremental codec buffers
//! instead of a thread's stack. When a full request has been parsed the
//! reactor hands it to the worker pool (`Handling`); the worker runs
//! the same `Handler`/span/panic-catch path as the threaded transport,
//! serializes the response, pushes it onto a completion queue, and
//! wakes the loop through an eventfd [`Waker`](crate::poller::Waker).
//! The reactor never executes handler code and workers never touch a
//! socket.
//!
//! Backpressure at the connection cap is identical to the threaded
//! transport: connections over `max_connections` are shed with a
//! `503 + Retry-After` written from the accept path, and counted in
//! `ServerStats::shed`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use soc_parallel::ThreadPool;

use crate::codec::{self, BodyFraming};
use crate::poller::{Event, Interest, Poller, Waker};
use crate::server::{Handler, ServerStats};
use crate::types::{Headers, HttpError, HttpResult, Method, Request, Response, Status, Version};

/// Reactor tunables, copied out of `ServerConfig` by `bind_with`.
#[derive(Debug, Clone)]
pub(crate) struct ReactorConfig {
    pub workers: usize,
    pub max_connections: usize,
    pub io_timeout: Duration,
    pub keep_alive_timeout: Duration,
    pub body_limit: usize,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// How often the loop wakes to sweep deadlines when nothing is ready.
const SWEEP_INTERVAL: Duration = Duration::from_millis(250);

/// Per-read scratch size.
const READ_CHUNK: usize = 16 * 1024;

/// A handler's finished work, travelling pool → reactor.
struct Completion {
    slot: usize,
    gen: u64,
    /// Serialized response bytes; `None` if serialization failed (the
    /// connection is closed without a response, like the threaded
    /// transport's failed write).
    bytes: Option<Vec<u8>>,
    close: bool,
}

// ---------------------------------------------------------------------
// Incremental request parser
// ---------------------------------------------------------------------

/// Where a connection's parser is inside the current message.
enum Phase {
    /// Accumulating the request line + headers.
    Head,
    /// Head parsed; accumulating the body.
    Body { head: Head, framing: BodyFraming, body: Vec<u8>, chunk: ChunkPhase },
}

struct Head {
    method: Method,
    target: String,
    version: Version,
    headers: Headers,
}

/// Sub-state of an incremental chunked-body decode.
enum ChunkPhase {
    SizeLine,
    /// Inside a chunk's data. `until` is the body length at which this
    /// chunk is complete — derived from `body.len()` rather than a
    /// countdown so that bytes appended through the direct-read window
    /// (which bypass the lookahead buffer) are accounted for free.
    Data {
        until: usize,
    },
    /// The CRLF that terminates a chunk's data.
    DataEnd,
    Trailer {
        budget: usize,
    },
}

/// Incremental HTTP/1.1 request parser over an owned byte buffer.
///
/// Bytes are appended as the socket produces them; [`advance`] consumes
/// complete messages. Framing decisions (`Content-Length` vs `chunked`,
/// smuggling rejections, body limits, chunk-size overflow) are the
/// shared `codec` routines, so the two transports cannot drift.
pub(crate) struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
    /// Head-terminator scan cursor, so repeated partial reads don't
    /// rescan the whole head.
    scan: usize,
    phase: Phase,
    body_limit: usize,
}

/// Next `\n` at or after `from`, scanning 8 bytes per iteration (the
/// same SWAR technique as `soc_xml::scan` / `soc_json::scan`): XOR with
/// a broadcast `\n` turns matches into zero bytes, and the carry trick
/// flags zero lanes in the high bits.
fn find_newline(buf: &[u8], from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const NEEDLE: u64 = LO * b'\n' as u64;
    let mut i = from;
    while i + 8 <= buf.len() {
        let v = u64::from_le_bytes(buf[i..i + 8].try_into().unwrap()) ^ NEEDLE;
        let hits = !((v & !HI).wrapping_add(!HI) | v) & HI;
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    buf[i..].iter().position(|&b| b == b'\n').map(|p| i + p)
}

/// One past the end of the head section (the blank line), if complete.
/// Lines may end `\r\n` or bare `\n`, matching the blocking reader.
/// Hops newline-to-newline (batched scan) instead of stepping bytes.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while let Some(nl) = find_newline(buf, i) {
        if buf.get(nl + 1) == Some(&b'\n') {
            return Some(nl + 2);
        }
        if buf.get(nl + 1) == Some(&b'\r') && buf.get(nl + 2) == Some(&b'\n') {
            return Some(nl + 3);
        }
        i = nl + 1;
    }
    None
}

/// Next `\n`-terminated line starting at `pos`: `(line_bytes_end,
/// next_pos)` with the trailing `\r` (if any) excluded from the line.
fn find_line(buf: &[u8], pos: usize) -> Option<(usize, usize)> {
    let nl = find_newline(buf, pos)?;
    let end = if nl > pos && buf[nl - 1] == b'\r' { nl - 1 } else { nl };
    Some((end, nl + 1))
}

impl RequestParser {
    pub(crate) fn new(body_limit: usize) -> RequestParser {
        RequestParser { buf: Vec::new(), pos: 0, scan: 0, phase: Phase::Head, body_limit }
    }

    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True between messages with nothing buffered: the connection is
    /// genuinely idle (keep-alive), not mid-request.
    fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Head) && self.buffered() == 0
    }

    fn in_body(&self) -> bool {
        matches!(self.phase, Phase::Body { .. })
    }

    /// Mid-body with the lookahead buffer drained: returns the body
    /// vector and how many bytes it can still take, so the transport
    /// can read wire bytes straight into the final allocation — the
    /// one the handler (and the XML/JSON parsers borrowing from
    /// `Request::body`) will see — instead of copying
    /// scratch → lookahead buffer → body. Opens for a
    /// `Content-Length` body and, under `Transfer-Encoding: chunked`,
    /// for the data section of the current chunk (framing metadata —
    /// size lines, chunk CRLFs, trailers — still goes through the
    /// lookahead buffer).
    fn direct_body(&mut self) -> Option<(&mut Vec<u8>, usize)> {
        if self.pos < self.buf.len() {
            return None;
        }
        let Phase::Body { framing, body, chunk, .. } = &mut self.phase else {
            return None;
        };
        let target = match (&*framing, &*chunk) {
            (BodyFraming::Length(n), _) => *n,
            (BodyFraming::Chunked, ChunkPhase::Data { until }) => *until,
            _ => return None,
        };
        if body.len() < target {
            let need = target - body.len();
            Some((body, need))
        } else {
            None
        }
    }

    /// Consume as much as possible; `Ok(Some(..))` when one complete
    /// request has been parsed (leftover pipelined bytes stay buffered).
    fn advance(&mut self) -> HttpResult<Option<(Request, Version)>> {
        loop {
            match &mut self.phase {
                Phase::Head => {
                    let from = self.scan.max(self.pos);
                    match find_head_end(&self.buf, from) {
                        Some(end) => {
                            let (method, target, version, headers) =
                                codec::parse_request_head(&self.buf[self.pos..end])?;
                            let framing = codec::body_framing(&headers, self.body_limit)?;
                            let body = match framing {
                                // Cap the preallocation: the length is
                                // attacker-controlled and the bytes may
                                // never arrive.
                                BodyFraming::Length(n) => Vec::with_capacity(n.min(16 * 1024)),
                                BodyFraming::Chunked => Vec::new(),
                            };
                            self.pos = end;
                            self.scan = end;
                            self.phase = Phase::Body {
                                head: Head { method, target, version, headers },
                                framing,
                                body,
                                chunk: ChunkPhase::SizeLine,
                            };
                        }
                        None => {
                            if self.buffered() > codec::HEADER_LIMIT {
                                return Err(HttpError::Malformed(
                                    "header section too large".into(),
                                ));
                            }
                            // Re-scan with overlap so a terminator split
                            // across reads is still found.
                            self.scan = self.buf.len().saturating_sub(3).max(self.pos);
                            return Ok(None);
                        }
                    }
                }
                Phase::Body { framing: BodyFraming::Length(n), body, .. } => {
                    let need = *n - body.len();
                    let take = need.min(self.buf.len() - self.pos);
                    body.extend_from_slice(&self.buf[self.pos..self.pos + take]);
                    self.pos += take;
                    if body.len() < *n {
                        return Ok(None);
                    }
                    return Ok(Some(self.finish()));
                }
                Phase::Body { framing: BodyFraming::Chunked, body, chunk, .. } => match chunk {
                    ChunkPhase::SizeLine => match find_line(&self.buf, self.pos) {
                        Some((line_end, next)) => {
                            let line = std::str::from_utf8(&self.buf[self.pos..line_end]).map_err(
                                |_| HttpError::Malformed("non-UTF-8 header line".into()),
                            )?;
                            let size = codec::parse_chunk_size(line, body.len(), self.body_limit)?;
                            self.pos = next;
                            *chunk = if size == 0 {
                                ChunkPhase::Trailer { budget: codec::TRAILER_LIMIT }
                            } else {
                                ChunkPhase::Data { until: body.len() + size }
                            };
                        }
                        None => {
                            if self.buffered() > 1024 {
                                return Err(HttpError::Malformed(
                                    "bad chunk size: line too long".into(),
                                ));
                            }
                            return Ok(None);
                        }
                    },
                    ChunkPhase::Data { until } => {
                        let take = (*until - body.len()).min(self.buf.len() - self.pos);
                        body.extend_from_slice(&self.buf[self.pos..self.pos + take]);
                        self.pos += take;
                        if body.len() < *until {
                            return Ok(None);
                        }
                        *chunk = ChunkPhase::DataEnd;
                    }
                    ChunkPhase::DataEnd => {
                        if self.buf.len() - self.pos < 2 {
                            return Ok(None);
                        }
                        if &self.buf[self.pos..self.pos + 2] != b"\r\n" {
                            return Err(HttpError::Malformed("missing CRLF after chunk".into()));
                        }
                        self.pos += 2;
                        *chunk = ChunkPhase::SizeLine;
                    }
                    ChunkPhase::Trailer { budget } => match find_line(&self.buf, self.pos) {
                        Some((line_end, next)) => {
                            let consumed = next - self.pos;
                            if consumed > *budget {
                                return Err(HttpError::Malformed(
                                    "header section too large".into(),
                                ));
                            }
                            *budget -= consumed;
                            let empty = line_end == self.pos;
                            self.pos = next;
                            if empty {
                                return Ok(Some(self.finish()));
                            }
                        }
                        None => {
                            if self.buf.len() - self.pos > *budget {
                                return Err(HttpError::Malformed(
                                    "header section too large".into(),
                                ));
                            }
                            return Ok(None);
                        }
                    },
                },
            }
        }
    }

    /// Package the completed message and reset for the next one,
    /// keeping any pipelined leftover bytes.
    fn finish(&mut self) -> (Request, Version) {
        let Phase::Body { head, body, .. } = std::mem::replace(&mut self.phase, Phase::Head) else {
            unreachable!("finish called outside body phase");
        };
        self.buf.drain(..self.pos);
        self.pos = 0;
        self.scan = 0;
        (
            Request { method: head.method, target: head.target, headers: head.headers, body },
            head.version,
        )
    }
}

// ---------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    ReadingHead,
    ReadingBody,
    Handling,
    Writing,
    KeepAlive,
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    state: ConnState,
    parser: RequestParser,
    write_buf: Vec<u8>,
    written: usize,
    close_after_write: bool,
    /// Peer half-closed its write side; finish in-flight work, then
    /// close instead of going back to keep-alive.
    peer_closed: bool,
    deadline: Instant,
    interest: Interest,
}

struct Slab {
    entries: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = Some(conn);
                slot
            }
            None => {
                self.entries.push(Some(conn));
                self.entries.len() - 1
            }
        }
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.entries.get_mut(slot)?.take()?;
        self.free.push(slot);
        self.live -= 1;
        Some(conn)
    }

    fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.entries.get_mut(slot)?.as_mut()
    }
}

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    cfg: ReactorConfig,
    handler: Arc<dyn Handler>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    pool: ThreadPool,
    conns: Slab,
    completions: Arc<Mutex<Vec<Completion>>>,
    gen: u64,
    shed_counter: soc_observe::Counter,
}

/// Create the poller + waker and spawn the event-loop thread. The
/// returned waker unblocks the loop so `shutdown` is immediate.
pub(crate) fn spawn(
    listener: TcpListener,
    cfg: ReactorConfig,
    handler: Arc<dyn Handler>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
) -> HttpResult<(std::thread::JoinHandle<()>, Arc<Waker>)> {
    let io_err = |e: std::io::Error| HttpError::Io(e.to_string());
    let poller = Poller::new().map_err(io_err)?;
    let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER).map_err(io_err)?);
    let waker2 = waker.clone();
    let thread = std::thread::Builder::new()
        .name("soc-http-reactor".into())
        .spawn(move || run(listener, poller, waker2, cfg, handler, stats, stop))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    Ok((thread, waker))
}

/// Run the event loop until `stop` is set. Owns the listener, every
/// connection, and the worker pool; dropping on exit joins the pool.
fn run(
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    cfg: ReactorConfig,
    handler: Arc<dyn Handler>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
) {
    let pool = ThreadPool::new(cfg.workers.max(1));
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    listener.set_ttl(64).ok();
    if poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).is_err() {
        return;
    }
    let shed_counter = soc_observe::metrics().counter("soc_http_connections_shed_total", &[]);
    let mut reactor = Reactor {
        listener,
        poller,
        waker,
        cfg,
        handler,
        stats,
        stop,
        pool,
        conns: Slab { entries: Vec::new(), free: Vec::new(), live: 0 },
        completions: Arc::new(Mutex::new(Vec::new())),
        gen: 0,
        shed_counter,
    };
    reactor.run_loop();
}

impl Reactor {
    fn run_loop(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut next_sweep = Instant::now() + SWEEP_INTERVAL;
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            let timeout = next_sweep.saturating_duration_since(now);
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                return;
            }
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            // Pull the batch out so `self` stays borrowable.
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.conn_ready((token - TOKEN_BASE) as usize, ev),
                }
            }
            events = batch;
            self.apply_completions();
            let now = Instant::now();
            if now >= next_sweep {
                self.sweep_deadlines(now);
                next_sweep = now + SWEEP_INTERVAL;
            }
        }
    }

    // -- accept path --------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.live >= self.cfg.max_connections {
                        self.stats.shed.fetch_add(1, Ordering::Relaxed);
                        self.shed_counter.inc();
                        // Accepted sockets don't inherit nonblocking
                        // from the listener, so the bounded blocking
                        // write in `shed_connection` applies as-is.
                        crate::server::shed_connection(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    self.gen += 1;
                    let conn = Conn {
                        stream,
                        gen: self.gen,
                        state: ConnState::ReadingHead,
                        parser: RequestParser::new(self.cfg.body_limit),
                        write_buf: Vec::new(),
                        written: 0,
                        close_after_write: false,
                        peer_closed: false,
                        deadline: Instant::now() + self.cfg.io_timeout,
                        interest: Interest::READ,
                    };
                    let slot = self.conns.insert(conn);
                    let fd = self.conns.get_mut(slot).unwrap().stream.as_raw_fd();
                    if self.poller.add(fd, slot as u64 + TOKEN_BASE, Interest::READ).is_err() {
                        self.conns.remove(slot);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failures (fd exhaustion, aborted
                // handshakes): back off briefly instead of spinning on
                // a level-triggered readable listener.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    return;
                }
            }
        }
    }

    // -- connection events --------------------------------------------

    fn conn_ready(&mut self, slot: usize, ev: &Event) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        match conn.state {
            ConnState::Writing => {
                if ev.writable || ev.hangup {
                    self.write_ready(slot);
                }
            }
            ConnState::Handling => {
                // Interest is NONE while a worker owns the request, but
                // RDHUP/ERR still arrive. Probe: a half-close keeps the
                // connection (the response is still deliverable); a
                // hard error drops it.
                if ev.hangup {
                    let mut probe = [0u8; 64];
                    match conn.stream.read(&mut probe) {
                        Ok(0) => conn.peer_closed = true,
                        Ok(n) => conn.parser.push(&probe[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.close(slot);
                        }
                    }
                }
            }
            ConnState::ReadingHead | ConnState::ReadingBody | ConnState::KeepAlive => {
                if ev.readable || ev.hangup {
                    self.read_ready(slot);
                }
            }
        }
    }

    fn read_ready(&mut self, slot: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        // Bound buffered-but-unparsed bytes: past this a peer is either
        // over a limit the parser will reject or flooding pipelined
        // requests ahead of our responses.
        let cap = self.cfg.body_limit + codec::HEADER_LIMIT + READ_CHUNK;
        loop {
            let Some(conn) = self.conns.get_mut(slot) else { return };
            if conn.parser.buffered() > cap {
                break;
            }
            // Mid-body (`Content-Length`, or the data section of a
            // chunk): read straight into the body allocation the
            // handler will own, skipping the scratch → lookahead-buffer
            // → body double copy. Growth is bounded per read, so a
            // claimed-but-never-sent length cannot force a large
            // allocation up front.
            let read = if let Some((body, need)) = conn.parser.direct_body() {
                let start = body.len();
                body.resize(start + need.min(READ_CHUNK), 0);
                let r = conn.stream.read(&mut body[start..]);
                body.truncate(start + *r.as_ref().unwrap_or(&0));
                r
            } else {
                conn.stream.read(&mut scratch).inspect(|&n| conn.parser.push(&scratch[..n]))
            };
            match read {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                // Drive the parser now rather than after the drain, so
                // once the head parses the rest of the body takes the
                // direct path. On a complete request `advance_parser`
                // dispatches and parks read interest; the poller is
                // level-triggered, so bytes left in the socket re-arm
                // readiness when interest returns.
                Ok(_) => {
                    if !self.advance_step(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.advance_parser(slot);
    }

    /// One parser step during the read loop: returns `false` when the
    /// connection left the reading states (request dispatched, 400 sent,
    /// or closed) and the caller must stop reading.
    fn advance_step(&mut self, slot: usize) -> bool {
        self.advance_parser(slot);
        matches!(
            self.conns.get_mut(slot).map(|c| c.state),
            Some(ConnState::ReadingHead | ConnState::ReadingBody | ConnState::KeepAlive)
        )
    }

    /// Drive the parser; dispatch on a complete request, 400 on a
    /// malformed one, close on a truncated one.
    fn advance_parser(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        match conn.parser.advance() {
            Ok(Some((req, version))) => {
                conn.state = ConnState::Handling;
                // The handler owns the clock now; handler execution has
                // no timeout on either transport.
                conn.deadline = Instant::now() + Duration::from_secs(3600);
                self.set_interest(slot, Interest::NONE);
                self.dispatch(slot, req, version);
            }
            Ok(None) => {
                if conn.peer_closed {
                    // EOF between requests is a normal close; EOF mid-
                    // request is truncation. Neither gets a response,
                    // matching the blocking transport.
                    self.close(slot);
                    return;
                }
                let now = Instant::now();
                if conn.parser.is_idle() {
                    conn.state = ConnState::KeepAlive;
                    conn.deadline = now + self.cfg.keep_alive_timeout;
                } else {
                    conn.state = if conn.parser.in_body() {
                        ConnState::ReadingBody
                    } else {
                        ConnState::ReadingHead
                    };
                    conn.deadline = now + self.cfg.io_timeout;
                }
                self.set_interest(slot, Interest::READ);
            }
            Err(e) => {
                // Parse errors answer 400 and close, like the threaded
                // transport — with the close made explicit on the wire.
                let resp = Response::error(Status::BAD_REQUEST, &e.to_string())
                    .with_header("Connection", "close");
                let mut bytes = Vec::new();
                if codec::write_response(&mut bytes, &resp).is_err() {
                    self.close(slot);
                    return;
                }
                self.start_write(slot, bytes, true);
            }
        }
    }

    /// Hand a parsed request to the worker pool.
    fn dispatch(&mut self, slot: usize, req: Request, version: Version) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let gen = conn.gen;
        let close_requested = codec::wants_close(version, &req.headers);
        let handler = self.handler.clone();
        let stats = self.stats.clone();
        let completions = self.completions.clone();
        let waker = self.waker.clone();
        self.pool.spawn_detached(move || {
            let mut resp = crate::observe::serve_with_span(req, "http.server", |req| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(req)))
                {
                    Ok(resp) => resp,
                    Err(_) => Response::error(Status::INTERNAL_SERVER_ERROR, "handler panicked"),
                }
            });
            if resp.status.0 >= 500 {
                stats.failed.fetch_add(1, Ordering::Relaxed);
            }
            stats.served.fetch_add(1, Ordering::Relaxed);
            // Close if the client asked, or the handler did. Either
            // way the peer (possibly a pooled client) must see it.
            let close = close_requested || resp.headers.has_token("Connection", "close");
            if close && !resp.headers.has_token("Connection", "close") {
                resp.headers.set("Connection", "close");
            }
            let mut bytes = Vec::with_capacity(resp.body.len() + 256);
            let ok = codec::write_response(&mut bytes, &resp).is_ok();
            completions.lock().push(Completion { slot, gen, bytes: ok.then_some(bytes), close });
            waker.wake();
        });
    }

    fn apply_completions(&mut self) {
        let done: Vec<Completion> = std::mem::take(&mut *self.completions.lock());
        for c in done {
            let Some(conn) = self.conns.get_mut(c.slot) else { continue };
            // Generation guard: the slot may have been reused after a
            // mid-handling disconnect.
            if conn.gen != c.gen || conn.state != ConnState::Handling {
                continue;
            }
            match c.bytes {
                Some(bytes) => self.start_write(c.slot, bytes, c.close),
                None => self.close(c.slot),
            }
        }
    }

    // -- write path ----------------------------------------------------

    fn start_write(&mut self, slot: usize, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        conn.write_buf = bytes;
        conn.written = 0;
        conn.close_after_write = close;
        conn.state = ConnState::Writing;
        conn.deadline = Instant::now() + self.cfg.io_timeout;
        self.write_ready(slot);
    }

    fn write_ready(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        while conn.written < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_interest(slot, Interest::WRITE);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.finish_write(slot);
    }

    fn finish_write(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        conn.write_buf = Vec::new();
        conn.written = 0;
        if conn.close_after_write || conn.peer_closed {
            self.close(slot);
            return;
        }
        conn.state = ConnState::KeepAlive;
        conn.deadline = Instant::now() + self.cfg.keep_alive_timeout;
        self.set_interest(slot, Interest::READ);
        // Pipelined bytes may already hold the next request.
        self.advance_parser(slot);
    }

    // -- bookkeeping ---------------------------------------------------

    fn set_interest(&mut self, slot: usize, interest: Interest) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        if conn.interest == interest {
            return;
        }
        conn.interest = interest;
        let fd = conn.stream.as_raw_fd();
        self.poller.modify(fd, slot as u64 + TOKEN_BASE, interest).ok();
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns.remove(slot) {
            self.poller.delete(conn.stream.as_raw_fd()).ok();
            // Dropping the stream closes the fd.
        }
    }

    fn sweep_deadlines(&mut self, now: Instant) {
        let expired: Vec<usize> = self
            .conns
            .entries
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| e.as_ref().and_then(|c| (c.deadline <= now).then_some(slot)))
            .collect();
        for slot in expired {
            // Stalled reads/writes and idle keep-alives close silently,
            // exactly as the blocking transport's socket timeouts do.
            self.close(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(
        parser: &mut RequestParser,
        bytes: &[u8],
    ) -> HttpResult<Option<(Request, Version)>> {
        parser.push(bytes);
        parser.advance()
    }

    #[test]
    fn parses_request_fed_one_byte_at_a_time() {
        let raw = b"POST /echo HTTP/1.1\r\nContent-Length: 5\r\nX-K: v\r\n\r\nhello";
        let mut p = RequestParser::new(1024);
        for (i, b) in raw.iter().enumerate() {
            match parse_all(&mut p, &[*b]).unwrap() {
                Some((req, version)) => {
                    assert_eq!(i, raw.len() - 1, "must complete exactly at the last byte");
                    assert_eq!(req.method, Method::Post);
                    assert_eq!(req.target, "/echo");
                    assert_eq!(req.headers.get("X-K"), Some("v"));
                    assert_eq!(req.body, b"hello");
                    assert_eq!(version, Version::Http11);
                    return;
                }
                None => assert!(i < raw.len() - 1),
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn parses_chunked_incrementally() {
        let mut raw = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&codec::encode_chunked(b"hello chunked world", 5));
        let mut p = RequestParser::new(1024);
        let mut done = None;
        for chunk in raw.chunks(3) {
            if let Some(pair) = parse_all(&mut p, chunk).unwrap() {
                done = Some(pair);
            }
        }
        let (req, _) = done.expect("request completes");
        assert_eq!(req.body, b"hello chunked world");
        assert!(p.is_idle());
    }

    #[test]
    fn pipelined_request_survives_in_the_buffer() {
        let mut raw = b"GET /one HTTP/1.1\r\n\r\n".to_vec();
        raw.extend_from_slice(b"GET /two HTTP/1.1\r\n\r\n");
        let mut p = RequestParser::new(1024);
        let (first, _) = parse_all(&mut p, &raw).unwrap().expect("first completes");
        assert_eq!(first.target, "/one");
        assert!(!p.is_idle(), "second request still buffered");
        let (second, _) = p.advance().unwrap().expect("second completes from leftover");
        assert_eq!(second.target, "/two");
        assert!(p.is_idle());
    }

    #[test]
    fn oversized_chunk_size_is_rejected_without_allocating() {
        let raw = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffffffffffff\r\n";
        let mut p = RequestParser::new(1024);
        let err = parse_all(&mut p, raw).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }));
    }

    #[test]
    fn unbounded_trailers_are_rejected() {
        let mut raw = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n".to_vec();
        for i in 0..100 {
            raw.extend_from_slice(format!("X-T{i}: {}\r\n", "v".repeat(100)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut p = RequestParser::new(usize::MAX);
        let err = parse_all(&mut p, &raw).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn head_end_scanner_finds_terminators_at_every_alignment() {
        // Both terminator forms, at every offset relative to the 8-byte
        // SWAR words, including the scalar tail.
        for pad in 0..32 {
            let mut crlf = vec![b'a'; pad];
            crlf.extend_from_slice(b"\r\n\r\n");
            assert_eq!(find_head_end(&crlf, 0), Some(pad + 4), "crlf pad {pad}");
            let mut bare = vec![b'x'; pad];
            bare.extend_from_slice(b"\n\n");
            assert_eq!(find_head_end(&bare, 0), Some(pad + 2), "bare pad {pad}");
        }
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: h\r\n", 0), None);
        assert_eq!(find_newline(b"", 0), None);
    }

    #[test]
    fn direct_body_reads_land_in_the_final_allocation() {
        let mut p = RequestParser::new(1024);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert!(p.advance().unwrap().is_none());
        // Lookahead drained, mid-Length-body: the direct window is open.
        let (body, need) = p.direct_body().expect("direct window");
        assert_eq!((body.as_slice(), need), (&b"abc"[..], 7));
        body.extend_from_slice(b"defghij"); // what a socket read would do
        let (req, _) = p.advance().unwrap().expect("complete");
        assert_eq!(req.body, b"abcdefghij");
        // Chunked framing: closed while awaiting chunk metadata, open
        // inside a chunk's data section.
        let mut p = RequestParser::new(1024);
        p.push(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(p.advance().unwrap().is_none());
        assert!(p.direct_body().is_none(), "size line not yet seen");
        p.push(b"a\r\nxy");
        assert!(p.advance().unwrap().is_none());
        let (body, need) = p.direct_body().expect("mid-chunk window");
        assert_eq!((body.as_slice(), need), (&b"xy"[..], 8));
        body.extend_from_slice(b"zzzzzzzz"); // direct read finishes the chunk
        assert!(p.advance().unwrap().is_none());
        assert!(p.direct_body().is_none(), "chunk CRLF is framing, not data");
        p.push(b"\r\n0\r\n\r\n");
        let (req, _) = p.advance().unwrap().expect("complete");
        assert_eq!(req.body, b"xyzzzzzzzz");
        // Buffered lookahead keeps the window closed.
        let mut p = RequestParser::new(1024);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab");
        assert!(p.direct_body().is_none(), "head not yet parsed");
    }

    /// Feed `wire` through the incremental parser in `step`-byte
    /// slices, routing bytes through the direct-read window whenever
    /// it is open (exactly as `read_ready` does) when `direct` is set.
    fn drive(wire: &[u8], step: usize, direct: bool, limit: usize) -> HttpResult<Option<Request>> {
        let mut p = RequestParser::new(limit);
        let mut i = 0;
        while i < wire.len() {
            let take = match p.direct_body() {
                Some((body, need)) if direct => {
                    let take = need.min(step).min(wire.len() - i);
                    body.extend_from_slice(&wire[i..i + take]);
                    take
                }
                _ => {
                    let take = step.min(wire.len() - i);
                    p.push(&wire[i..i + take]);
                    take
                }
            };
            i += take;
            if let Some((req, _)) = p.advance()? {
                return Ok(Some(req));
            }
        }
        Ok(None)
    }

    #[test]
    fn chunked_parsing_matches_the_threaded_codec() {
        const LIMIT: usize = 64 * 1024;
        let bodies: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"x".to_vec(),
            b"hello chunked world".to_vec(),
            (0..=255u8).cycle().take(5000).collect(),
        ];
        let mut wires: Vec<Vec<u8>> = Vec::new();
        for body in &bodies {
            for chunk in [1usize, 7, 64, 4096] {
                let mut raw = b"POST /diff HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
                raw.extend_from_slice(&codec::encode_chunked(body, chunk));
                wires.push(raw);
            }
        }
        // Chunk extensions and trailers are framing the window must
        // not swallow; the malformed tails must fail on both paths.
        wires.push(
            b"POST /d HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              5;ext=1\r\nhello\r\n0\r\nX-T: v\r\n\r\n"
                .to_vec(),
        );
        wires.push(
            b"POST /d HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX0\r\n\r\n".to_vec(),
        );
        wires.push(b"POST /d HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffff\r\n".to_vec());

        for (w, wire) in wires.iter().enumerate() {
            let threaded = codec::read_request(&mut std::io::BufReader::new(&wire[..]), LIMIT);
            for step in [1usize, 3, 17, 1024, wire.len()] {
                for direct in [false, true] {
                    match (&threaded, drive(wire, step, direct, LIMIT)) {
                        (Ok(t), Ok(Some(r))) => assert_eq!(
                            t.body, r.body,
                            "wire {w} step {step} direct {direct}: bodies diverged"
                        ),
                        (Err(_), Err(_)) => {}
                        (t, r) => panic!(
                            "wire {w} step {step} direct {direct}: threaded={:?} reactor={:?}",
                            t.as_ref().map(|q| q.body.len()),
                            r.map(|q| q.map(|req| req.body.len()))
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn header_section_limit_applies_before_terminator() {
        let mut p = RequestParser::new(1024);
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', codec::HEADER_LIMIT + 10));
        let err = parse_all(&mut p, &raw).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }
}
