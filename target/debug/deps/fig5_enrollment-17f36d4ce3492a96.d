/root/repo/target/debug/deps/fig5_enrollment-17f36d4ce3492a96.d: crates/soc-bench/src/bin/fig5_enrollment.rs

/root/repo/target/debug/deps/fig5_enrollment-17f36d4ce3492a96: crates/soc-bench/src/bin/fig5_enrollment.rs

crates/soc-bench/src/bin/fig5_enrollment.rs:
