/root/repo/target/release/deps/fig5_enrollment-9f9b6f36b4b882bb.d: crates/soc-bench/src/bin/fig5_enrollment.rs

/root/repo/target/release/deps/fig5_enrollment-9f9b6f36b4b882bb: crates/soc-bench/src/bin/fig5_enrollment.rs

crates/soc-bench/src/bin/fig5_enrollment.rs:
