/root/repo/target/debug/deps/soc_soap-7e1aa84b708fc418.d: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

/root/repo/target/debug/deps/soc_soap-7e1aa84b708fc418: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

crates/soc-soap/src/lib.rs:
crates/soc-soap/src/client.rs:
crates/soc-soap/src/contract.rs:
crates/soc-soap/src/envelope.rs:
crates/soc-soap/src/service.rs:
crates/soc-soap/src/wsdl.rs:
