//! Property tests for the SOAP layer: envelope/fault round-trips with
//! arbitrary payloads, and WSDL generate→parse identity for arbitrary
//! contracts.

use proptest::prelude::*;
use soc_soap::contract::{Contract, Operation, XsdType};
use soc_soap::envelope::{self, Decoded, SoapFault};
use soc_soap::wsdl;

fn params_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-z][a-z0-9]{0,8}", "[ -~é中]{0,24}"), 0..6).prop_map(|pairs| {
        // Envelope parameters are element names: dedupe to keep the
        // comparison well-defined (duplicates are legal XML but the
        // round-trip compares position-wise).
        let mut seen = std::collections::HashSet::new();
        pairs.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect()
    })
}

fn xsd_type() -> impl Strategy<Value = XsdType> {
    prop_oneof![
        Just(XsdType::String),
        Just(XsdType::Int),
        Just(XsdType::Double),
        Just(XsdType::Boolean),
    ]
}

fn contract_strategy() -> impl Strategy<Value = Contract> {
    (
        "[A-Z][A-Za-z]{0,10}",
        "[a-z][a-z:.-]{0,16}",
        proptest::collection::vec(
            (
                "[A-Z][A-Za-z0-9]{0,10}",
                proptest::collection::vec(("[a-z]{1,6}", xsd_type()), 0..4),
                proptest::collection::vec(("[a-z]{1,6}", xsd_type()), 0..3),
            ),
            1..4,
        ),
    )
        .prop_map(|(name, ns, ops)| {
            let mut c = Contract::new(&name, &format!("urn:{ns}"));
            let mut seen_ops = std::collections::HashSet::new();
            for (op_name, ins, outs) in ops {
                if !seen_ops.insert(op_name.clone()) {
                    continue;
                }
                let mut op = Operation::new(&op_name);
                let mut seen = std::collections::HashSet::new();
                for (p, t) in ins {
                    if seen.insert(p.clone()) {
                        op = op.input(&p, t);
                    }
                }
                let mut seen = std::collections::HashSet::new();
                for (p, t) in outs {
                    if seen.insert(p.clone()) {
                        op = op.output(&p, t);
                    }
                }
                c.operations.push(op);
            }
            c
        })
}

proptest! {
    #[test]
    fn envelope_round_trip(
        ns in "[a-z][a-z:.-]{0,16}",
        element in "[A-Z][A-Za-z0-9]{0,12}",
        params in params_strategy(),
    ) {
        let ns = format!("urn:{ns}");
        let xml = envelope::encode(&ns, &element, &params);
        match envelope::decode(&xml).unwrap() {
            Decoded::Body(b) => {
                prop_assert_eq!(b.element, element);
                prop_assert_eq!(b.namespace.as_deref(), Some(ns.as_str()));
                prop_assert_eq!(b.params, params);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_round_trip(
        code in "(soap:Client|soap:Server)",
        message in "[ -~]{0,48}",
        detail in proptest::option::of("[ -~]{0,32}"),
    ) {
        let f = SoapFault {
            code: code.clone(),
            message: message.trim().to_string(),
            detail: detail.map(|d| d.trim().to_string()),
        };
        match envelope::decode(&envelope::encode_fault(&f)).unwrap() {
            Decoded::Fault(got) => prop_assert_eq!(got, f),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn wsdl_generate_parse_identity(contract in contract_strategy(), endpoint in "mem://[a-z]{1,8}/[a-z]{1,8}") {
        let xml = wsdl::generate(&contract, &endpoint);
        let parsed = wsdl::parse(&xml).unwrap();
        prop_assert_eq!(parsed.endpoint, endpoint);
        // Documentation defaults to None in generated contracts.
        prop_assert_eq!(parsed.contract, contract);
    }

    #[test]
    fn decode_never_panics(s in "[ -~<>]{0,128}") {
        let _ = envelope::decode(&s);
        let _ = wsdl::parse(&s);
    }
}
