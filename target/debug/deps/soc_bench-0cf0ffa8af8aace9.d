/root/repo/target/debug/deps/soc_bench-0cf0ffa8af8aace9.d: crates/soc-bench/src/lib.rs

/root/repo/target/debug/deps/soc_bench-0cf0ffa8af8aace9: crates/soc-bench/src/lib.rs

crates/soc-bench/src/lib.rs:
