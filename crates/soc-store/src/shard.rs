//! The shard map: consistent hashing with virtual nodes over the
//! registry's lease table, N-way replication, and stable rebalancing
//! on lease join/expiry.
//!
//! Every key hashes onto a ring of virtual-node points. Walking the
//! ring clockwise from the key's hash yields the owner list: the first
//! distinct node is the **primary** (all writes land there), the next
//! `replication - 1` distinct nodes are replicas (log-shipped copies,
//! eligible for version-gated reads). Virtual nodes keep the load
//! spread even; consistent hashing keeps a membership change from
//! reshuffling more than the departed/arrived node's share of keys.

use soc_registry::directory::LeaseSnapshot;

/// Virtual-node points per physical node — enough that a 3-node ring
/// balances within a few percent.
const VNODES: u32 = 64;

/// One physical store node on the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardNode {
    /// Stable node id (the lease id in the registry).
    pub id: String,
    /// Base URL where the node's store routes are served.
    pub endpoint: String,
}

/// An immutable consistent-hash ring over a set of nodes. Rebuilt (not
/// mutated) when the lease table's live set changes — consumers swap
/// the whole map atomically.
#[derive(Debug, Clone)]
pub struct ShardMap {
    version: u64,
    replication: usize,
    nodes: Vec<ShardNode>,
    /// `(point_hash, index into nodes)`, sorted by hash.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Build a ring at `version` over `nodes` with `replication`-way
    /// ownership (clamped to the node count; min 1).
    pub fn build(version: u64, mut nodes: Vec<ShardNode>, replication: usize) -> ShardMap {
        nodes.sort_by(|a, b| a.id.cmp(&b.id));
        nodes.dedup_by(|a, b| a.id == b.id);
        let mut ring = Vec::with_capacity(nodes.len() * VNODES as usize);
        for (i, node) in nodes.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((point_hash(format!("{}#{v}", node.id).as_bytes()), i as u32));
            }
        }
        ring.sort_unstable();
        ShardMap { version, replication: replication.max(1), nodes, ring }
    }

    /// Build from a registry lease snapshot: every live lease that
    /// advertises an endpoint becomes a ring node. The snapshot's
    /// version becomes the map's version, so "has the ring changed"
    /// is one integer compare.
    pub fn from_leases(snapshot: &LeaseSnapshot, replication: usize) -> ShardMap {
        let nodes = snapshot
            .endpoints
            .iter()
            .map(|(id, endpoint)| ShardNode { id: id.clone(), endpoint: endpoint.clone() })
            .collect();
        ShardMap::build(snapshot.version, nodes, replication)
    }

    /// The lease-table version this ring was built from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// All nodes, sorted by id.
    pub fn nodes(&self) -> &[ShardNode] {
        &self.nodes
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The key's owners: primary first, then replicas, up to the
    /// replication factor (or every node, whichever is fewer).
    pub fn owners(&self, key: &str) -> Vec<&ShardNode> {
        if self.ring.is_empty() {
            return Vec::new();
        }
        let want = self.replication.min(self.nodes.len());
        let h = point_hash(key.as_bytes());
        let start = self.ring.partition_point(|&(p, _)| p < h);
        let mut owners: Vec<&ShardNode> = Vec::with_capacity(want);
        let mut seen = vec![false; self.nodes.len()];
        for i in 0..self.ring.len() {
            let (_, node_idx) = self.ring[(start + i) % self.ring.len()];
            if !seen[node_idx as usize] {
                seen[node_idx as usize] = true;
                owners.push(&self.nodes[node_idx as usize]);
                if owners.len() == want {
                    break;
                }
            }
        }
        owners
    }

    /// The key's primary owner.
    pub fn primary(&self, key: &str) -> Option<&ShardNode> {
        self.owners(key).first().copied()
    }

    /// Whether `id` owns `key` (primary or replica).
    pub fn owns(&self, id: &str, key: &str) -> bool {
        self.owners(key).iter().any(|n| n.id == id)
    }

    /// Serialize the map for publication over the wire (the
    /// `POST /store/map` route a coordinator pushes rebalances with).
    pub fn to_json(&self) -> soc_json::Value {
        use soc_json::Value;
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                let mut node = Value::object();
                node.set("id", n.id.as_str());
                node.set("endpoint", n.endpoint.as_str());
                node
            })
            .collect();
        let mut map = Value::object();
        map.set("version", self.version as i64);
        map.set("replication", self.replication as i64);
        map.set("nodes", Value::Array(nodes));
        map
    }

    /// Rebuild a map published with [`ShardMap::to_json`].
    pub fn from_json(v: &soc_json::Value) -> Result<ShardMap, String> {
        use soc_json::Value;
        let version = v.get("version").and_then(Value::as_i64).ok_or("map missing version")? as u64;
        let replication =
            v.get("replication").and_then(Value::as_i64).ok_or("map missing replication")? as usize;
        let mut nodes = Vec::new();
        for n in v.get("nodes").and_then(Value::as_array).ok_or("map missing nodes")? {
            nodes.push(ShardNode {
                id: n.get("id").and_then(Value::as_str).ok_or("node missing id")?.to_string(),
                endpoint: n
                    .get("endpoint")
                    .and_then(Value::as_str)
                    .ok_or("node missing endpoint")?
                    .to_string(),
            });
        }
        Ok(ShardMap::build(version, nodes, replication))
    }

    /// Fraction of `sample` keys whose primary differs between `self`
    /// and `other` — the rebalancing cost of a membership change.
    pub fn moved_primaries(&self, other: &ShardMap, sample: &[String]) -> f64 {
        if sample.is_empty() {
            return 0.0;
        }
        let moved = sample
            .iter()
            .filter(|k| self.primary(k).map(|n| &n.id) != other.primary(k).map(|n| &n.id))
            .count();
        moved as f64 / sample.len() as f64
    }
}

/// Ring-point hash: FNV-1a 64 with a murmur-style finalizer. FNV alone
/// leaves the high bits (which dominate ring ordering) under-mixed for
/// short sequential inputs like `"c#17"`, which visibly skews vnode
/// placement; the finalizer restores avalanche.
fn point_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[&str]) -> Vec<ShardNode> {
        ids.iter()
            .map(|id| ShardNode { id: id.to_string(), endpoint: format!("mem://{id}") })
            .collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("key-{i}")).collect()
    }

    #[test]
    fn owners_are_distinct_and_replication_bounded() {
        let map = ShardMap::build(1, nodes(&["a", "b", "c", "d"]), 3);
        for k in keys(100) {
            let owners = map.owners(&k);
            assert_eq!(owners.len(), 3);
            let mut ids: Vec<&str> = owners.iter().map(|n| n.id.as_str()).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 3, "owners of {k} must be distinct");
        }
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let map = ShardMap::build(1, nodes(&["a", "b"]), 5);
        assert_eq!(map.owners("k").len(), 2);
        let empty = ShardMap::build(1, vec![], 3);
        assert!(empty.owners("k").is_empty());
        assert!(empty.primary("k").is_none());
    }

    #[test]
    fn ownership_is_deterministic() {
        let a = ShardMap::build(1, nodes(&["a", "b", "c"]), 2);
        let b = ShardMap::build(2, nodes(&["c", "a", "b"]), 2);
        for k in keys(200) {
            assert_eq!(
                a.owners(&k).iter().map(|n| &n.id).collect::<Vec<_>>(),
                b.owners(&k).iter().map(|n| &n.id).collect::<Vec<_>>(),
                "node insertion order must not matter"
            );
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let map = ShardMap::build(1, nodes(&["a", "b", "c", "d", "e"]), 1);
        let mut counts = std::collections::HashMap::new();
        let sample = keys(5000);
        for k in &sample {
            *counts.entry(map.primary(k).unwrap().id.clone()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 5, "every node owns some keys");
        for (id, n) in &counts {
            let share = *n as f64 / sample.len() as f64;
            assert!((0.08..=0.35).contains(&share), "node {id} owns {share:.3} of the keyspace");
        }
    }

    #[test]
    fn membership_change_moves_a_bounded_share() {
        let before = ShardMap::build(1, nodes(&["a", "b", "c", "d"]), 2);
        let after = ShardMap::build(2, nodes(&["a", "b", "c"]), 2);
        let sample = keys(4000);
        let moved = before.moved_primaries(&after, &sample);
        // Removing one of four nodes should move roughly a quarter of
        // primaries — and consistent hashing must keep it well under
        // the full reshuffle a naive `hash % n` would cause.
        assert!(moved > 0.15 && moved < 0.45, "moved {moved:.3}");
        // Keys whose primary survives keep that primary.
        for k in &sample {
            let b = before.primary(k).unwrap();
            if b.id != "d" {
                assert_eq!(after.primary(k).unwrap().id, b.id, "stable key {k} moved");
            }
        }
    }

    #[test]
    fn from_leases_uses_endpoints_and_version() {
        let snap = LeaseSnapshot {
            version: 42,
            live: vec!["s1".into(), "s2".into(), "s3".into()],
            endpoints: vec![
                ("s1".into(), "http://127.0.0.1:7001".into()),
                ("s2".into(), "http://127.0.0.1:7002".into()),
            ],
        };
        let map = ShardMap::from_leases(&snap, 2);
        assert_eq!(map.version(), 42);
        // Only leases that advertise an endpoint join the ring.
        assert_eq!(map.nodes().len(), 2);
        let owners = map.owners("k");
        assert_eq!(owners.len(), 2);
        assert!(owners[0].endpoint.starts_with("http://127.0.0.1:700"));
    }
}
