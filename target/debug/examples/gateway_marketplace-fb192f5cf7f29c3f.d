/root/repo/target/debug/examples/gateway_marketplace-fb192f5cf7f29c3f.d: examples/gateway_marketplace.rs Cargo.toml

/root/repo/target/debug/examples/libgateway_marketplace-fb192f5cf7f29c3f.rmeta: examples/gateway_marketplace.rs Cargo.toml

examples/gateway_marketplace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
