//! Data-parallel loops over index ranges and slices, with a choice of
//! scheduling policy — the ablation the `fig3` bench sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::pool::ThreadPool;

/// How iterations are distributed over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Pre-partition the range into one contiguous block per worker.
    /// Zero scheduling overhead; poor balance on irregular work (like
    /// Collatz trajectory lengths).
    Static,
    /// Workers grab fixed-size chunks from a shared atomic counter.
    /// Balances irregular work at the cost of one fetch-add per chunk.
    Dynamic {
        /// Iterations per grab.
        chunk: usize,
    },
}

impl Schedule {
    /// A reasonable default: dynamic with ~4 chunks per worker.
    pub fn default_for(len: usize, workers: usize) -> Schedule {
        let chunk = (len / (workers * 4).max(1)).max(1);
        Schedule::Dynamic { chunk }
    }
}

/// Run `body(i)` for every `i` in `range` on the pool.
///
/// ```
/// use soc_parallel::{parallel_for, Schedule, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicUsize::new(0);
/// parallel_for(&pool, 0..100, Schedule::Dynamic { chunk: 8 }, |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub fn parallel_for<F>(
    pool: &ThreadPool,
    range: std::ops::Range<usize>,
    schedule: Schedule,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    let start = range.start;
    let len = range.len();
    if len == 0 {
        return;
    }
    let workers = pool.threads();
    match schedule {
        Schedule::Static => {
            let per = len.div_ceil(workers);
            pool.scope(|s| {
                for w in 0..workers {
                    let lo = start + w * per;
                    let hi = (lo + per).min(start + len);
                    if lo >= hi {
                        break;
                    }
                    let body = &body;
                    s.spawn(move || {
                        for i in lo..hi {
                            body(i);
                        }
                    });
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..workers {
                    let next = &next;
                    let body = &body;
                    s.spawn(move || loop {
                        let lo = next.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= len {
                            return;
                        }
                        let hi = (lo + chunk).min(len);
                        for i in lo..hi {
                            body(start + i);
                        }
                    });
                }
            });
        }
    }
}

/// Map `f` over `items` in parallel, preserving order.
pub fn parallel_map<T, U, F>(pool: &ThreadPool, items: &[T], schedule: Schedule, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    // The output is pre-split into disjoint per-chunk slices so workers
    // can fill their piece without synchronizing on the whole vector.
    let chunk = match schedule {
        Schedule::Static => items.len().div_ceil(pool.threads()).max(1),
        Schedule::Dynamic { chunk } => chunk.max(1),
    };
    type Piece<'w, T, U> = (usize, &'w [T], &'w mut [Option<U>]);
    let work: Vec<Piece<T, U>> = {
        let mut pieces = Vec::new();
        let mut rest_out: &mut [Option<U>] = &mut out;
        let mut idx = 0;
        while idx < items.len() {
            let take = chunk.min(items.len() - idx);
            let (head, tail) = rest_out.split_at_mut(take);
            pieces.push((idx, &items[idx..idx + take], head));
            rest_out = tail;
            idx += take;
        }
        pieces
    };
    let queue = Mutex::new(work);
    pool.scope(|s| {
        for _ in 0..pool.threads() {
            let queue = &queue;
            let f = &f;
            s.spawn(move || loop {
                let piece = queue.lock().pop();
                let Some((_, input, output)) = piece else { return };
                for (src, dst) in input.iter().zip(output.iter_mut()) {
                    *dst = Some(f(src));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("parallel_map slot unfilled")).collect()
}

/// Reduce `range` in parallel: `map` each index, combine with `fold`
/// (associative), starting from `identity` in each worker.
pub fn parallel_reduce<T, M, F>(
    pool: &ThreadPool,
    range: std::ops::Range<usize>,
    schedule: Schedule,
    identity: T,
    map: M,
    fold: F,
) -> T
where
    T: Send + Clone,
    M: Fn(usize) -> T + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    let len = range.len();
    if len == 0 {
        return identity;
    }
    let start = range.start;
    let workers = pool.threads();
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(workers));
    match schedule {
        Schedule::Static => {
            let per = len.div_ceil(workers);
            pool.scope(|s| {
                for w in 0..workers {
                    let lo = start + w * per;
                    let hi = (lo + per).min(start + len);
                    if lo >= hi {
                        break;
                    }
                    let (map, fold, partials) = (&map, &fold, &partials);
                    let id = identity.clone();
                    s.spawn(move || {
                        let mut acc = id;
                        for i in lo..hi {
                            acc = fold(acc, map(i));
                        }
                        partials.lock().push(acc);
                    });
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..workers {
                    let (map, fold, partials, next) = (&map, &fold, &partials, &next);
                    let id = identity.clone();
                    s.spawn(move || {
                        let mut acc = id;
                        loop {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= len {
                                break;
                            }
                            let hi = (lo + chunk).min(len);
                            for i in lo..hi {
                                acc = fold(acc, map(start + i));
                            }
                        }
                        partials.lock().push(acc);
                    });
                }
            });
        }
    }
    partials.into_inner().into_iter().fold(identity, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let p = pool();
        for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 7 }] {
            let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
            parallel_for(&p, 0..1000, schedule, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "{schedule:?}");
        }
    }

    #[test]
    fn parallel_for_empty_range() {
        parallel_for(&pool(), 5..5, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_for_offset_range() {
        let p = pool();
        let sum = AtomicU64::new(0);
        parallel_for(&p, 10..20, Schedule::Dynamic { chunk: 3 }, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (10..20u64).sum());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let p = pool();
        let items: Vec<u64> = (0..500).collect();
        for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 13 }] {
            let out = parallel_map(&p, &items, schedule, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "{schedule:?}");
        }
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u8> = parallel_map(&pool(), &[] as &[u8], Schedule::Static, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let p = pool();
        for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 11 }] {
            let got = parallel_reduce(&p, 0..10_000, schedule, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(got, (0..10_000u64).sum(), "{schedule:?}");
        }
    }

    #[test]
    fn parallel_reduce_non_commutative_safe_with_max() {
        let p = pool();
        let got = parallel_reduce(
            &p,
            0..1_000,
            Schedule::Dynamic { chunk: 17 },
            0u64,
            |i| ((i * 2_654_435_761) % 1_000_003) as u64,
            u64::max,
        );
        let expect = (0..1_000u64).map(|i| (i * 2_654_435_761) % 1_000_003).max().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn schedule_default_is_reasonable() {
        match Schedule::default_for(1_000, 4) {
            Schedule::Dynamic { chunk } => assert!((1..=1_000).contains(&chunk)),
            other => panic!("{other:?}"),
        }
        // Degenerate sizes never produce a zero chunk.
        match Schedule::default_for(1, 64) {
            Schedule::Dynamic { chunk } => assert_eq!(chunk, 1),
            other => panic!("{other:?}"),
        }
    }
}
