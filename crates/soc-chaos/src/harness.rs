//! The chaos driver: the full stack under a seeded fault schedule.
//!
//! [`run_mem_chaos`] stands up replicated mortgage services (sharing
//! one [`SubmissionLedger`] like replicas share a database), a notify
//! service with its own ledger, a flaky finalize step, and a QoS-aware
//! gateway — then drives the mortgage **saga** through it many times
//! while the `MemNetwork` injects seeded probabilistic faults
//! (pre-handler failures, lost responses, corruption, truncation,
//! partitions). [`run_tcp_chaos`] is the same story over real sockets,
//! with a [`crate::FaultProxy`] doing the damage on the wire.
//!
//! Both return a [`ChaosReport`] whose [`ChaosReport::violations`]
//! checks the invariants that define correctness under faults:
//!
//! 1. every run resolves within its deadline — completed or cleanly
//!    compensated, never hung;
//! 2. **zero duplicated applications**: no logical submission executed
//!    twice service-side, no matter how many retries/hedges/replays the
//!    fault schedule provoked (`max_executions_per_content == 1`);
//! 3. compensations exactly balance completed steps: every compensated
//!    run's compensators ran in reverse topological order exactly once
//!    each, cancels never target unknown ids, and completed runs keep
//!    their application open;
//! 4. the gateway's breakers recover once faults clear.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use soc_gateway::{BreakerState, Gateway, GatewayConfig};
use soc_http::mem::{MemNetwork, Transport, CLIENT_ORIGIN};
use soc_http::{FaultConfig, FaultRng, FaultWindow, Request, Response};
use soc_json::{json, Value};
use soc_services::bindings::ServiceHost;
use soc_services::ledger::SubmissionLedger;
use soc_workflow::activity::{Activity, ActivityError, Const, Ports, ServiceCall};
use soc_workflow::graph::WorkflowGraph;
use soc_workflow::{ResiliencePolicy, SagaConfig, WorkflowOutcome};

use crate::proxy::{FaultProxy, ProxyFaults};

/// One chaos campaign's knobs. Everything is derived from `seed`, so a
/// `(seed, config)` pair replays the identical schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: service faults, gateway jitter, and saga backoff
    /// all derive from it.
    pub seed: u64,
    /// Workflow runs to drive through the stack.
    pub runs: usize,
    /// Mortgage service replicas behind the gateway.
    pub replicas: usize,
    /// Overall fault budget: the per-request probability mass split
    /// across fail/reset/corrupt/truncate on each replica.
    pub fault_pct: f64,
    /// Probability that the finalize step fails one attempt (drives
    /// compensation on some seeds).
    pub finalize_fail_prob: f64,
    /// Take finalize fully down: every run compensates.
    pub finalize_offline: bool,
    /// Partition the client from replica 0 for the first half of the
    /// campaign (MemNetwork harness only).
    pub partition: bool,
    /// Per-run saga deadline.
    pub deadline: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            runs: 24,
            replicas: 3,
            fault_pct: 0.2,
            finalize_fail_prob: 0.15,
            finalize_offline: false,
            partition: true,
            deadline: Duration::from_secs(5),
        }
    }
}

/// How one saga run through the stack ended.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Run index within the campaign.
    pub run: usize,
    /// Forward path finished; the application stays open.
    pub completed: bool,
    /// Compensated with every compensator succeeding.
    pub clean_compensation: bool,
    /// Node whose failure triggered compensation.
    pub failed_at: Option<String>,
    /// Compensators that ran, in execution order.
    pub compensated: Vec<String>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Aggregate result of one chaos campaign. See the module docs for the
/// invariants [`ChaosReport::violations`] checks.
#[derive(Debug)]
pub struct ChaosReport {
    /// The campaign's master seed.
    pub seed: u64,
    /// Per-run outcomes.
    pub outcomes: Vec<RunOutcome>,
    /// Per-run deadline plus the straggler-join slack.
    pub run_budget: Duration,
    /// Worst duplication factor across logical applications
    /// (invariant: ≤ 1).
    pub max_app_executions_per_content: u64,
    /// Applications executed and not cancelled (invariant: one per
    /// completed run).
    pub open_applications: u64,
    /// Cancels addressed at unknown application ids (invariant: 0).
    pub orphan_cancels: u64,
    /// Replays served from the application ledger's cache — evidence
    /// the idempotency plane actually absorbed retries.
    pub deduped_replays: u64,
    /// Notifications executed and not cancelled.
    pub open_notifications: u64,
    /// Cancels addressed at unknown notification receipts.
    pub notify_orphan_cancels: u64,
    /// Submissions that arrived without an idempotency key
    /// (invariant: 0 — every workflow POST carries one).
    pub keyless_submissions: u64,
    /// Application ids of completed runs.
    pub completed_app_ids: Vec<String>,
    /// Application ids the ledger saw cancelled.
    pub cancelled_app_ids: Vec<String>,
    /// Did every breaker close again after faults cleared?
    pub breakers_recovered: bool,
    /// Whole-campaign wall-clock time.
    pub elapsed: Duration,
}

impl ChaosReport {
    /// Runs that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.completed).count()
    }

    /// Runs that compensated cleanly.
    pub fn compensated_clean(&self) -> usize {
        self.outcomes.iter().filter(|o| o.clean_compensation).count()
    }

    /// Fraction of runs that were client-visibly fine: completed or
    /// cleanly compensated.
    pub fn success_or_clean(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        (self.completed() + self.compensated_clean()) as f64 / self.outcomes.len() as f64
    }

    /// Every invariant violation found, as human-readable strings; an
    /// empty vec means the campaign upheld all of them.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.max_app_executions_per_content > 1 {
            v.push(format!(
                "duplicated application: a logical submission executed {} times",
                self.max_app_executions_per_content
            ));
        }
        if self.orphan_cancels > 0 {
            v.push(format!("{} cancels targeted unknown application ids", self.orphan_cancels));
        }
        if self.notify_orphan_cancels > 0 {
            v.push(format!(
                "{} cancels targeted unknown notification receipts",
                self.notify_orphan_cancels
            ));
        }
        if self.keyless_submissions > 0 {
            v.push(format!(
                "{} submissions reached the service without an idempotency key",
                self.keyless_submissions
            ));
        }
        // Completed runs keep their application open; compensated runs
        // must not.
        if self.open_applications != self.completed() as u64 {
            v.push(format!(
                "open applications ({}) != completed runs ({}): compensation does not \
                 balance completed submissions",
                self.open_applications,
                self.completed()
            ));
        }
        for id in &self.completed_app_ids {
            if self.cancelled_app_ids.contains(id) {
                v.push(format!("completed run's application {id} was cancelled"));
            }
        }
        for o in &self.outcomes {
            if o.elapsed > self.run_budget {
                v.push(format!(
                    "run {} blew its budget: {:?} > {:?}",
                    o.run, o.elapsed, self.run_budget
                ));
            }
            // Compensators run in reverse topological order, exactly
            // once each: in the mortgage saga that means `notify`
            // (when it completed) strictly before `apply`.
            let mut seen = std::collections::HashSet::new();
            for c in &o.compensated {
                if !seen.insert(c.clone()) {
                    v.push(format!("run {}: compensator {c:?} ran twice", o.run));
                }
            }
            let pos = |name: &str| o.compensated.iter().position(|c| c == name);
            if let (Some(n), Some(a)) = (pos("notify"), pos("apply")) {
                if n > a {
                    v.push(format!(
                        "run {}: compensators out of order (apply before notify): {:?}",
                        o.run, o.compensated
                    ));
                }
            }
            if o.completed && !o.compensated.is_empty() {
                v.push(format!("run {}: completed yet compensated {:?}", o.run, o.compensated));
            }
        }
        if !self.breakers_recovered {
            v.push("gateway breakers did not close after faults cleared".into());
        }
        v
    }

    /// One line for sweep output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:#x}: {} runs, {} completed, {} compensated clean, {:.1}% ok, \
             {} deduped replays, {} open apps, breakers_recovered={}, {:?}",
            self.seed,
            self.outcomes.len(),
            self.completed(),
            self.compensated_clean(),
            self.success_or_clean() * 100.0,
            self.deduped_replays,
            self.open_applications,
            self.breakers_recovered,
            self.elapsed,
        )
    }
}

/// A compensator: POSTs `{id_field: <id>}` to `path` on each base URL
/// in turn until one answers, retrying through injected faults —
/// compensation must land even on a misbehaving network. The id is
/// read from the forward activity's `out` port (its parsed response),
/// which is exactly what the saga engine hands a compensator.
///
/// With [`CancelCall::with_reservation`] it can also compensate a
/// forward step that *failed without yielding an id*: a lost-response
/// attempt may still have landed server-side, so the compensator
/// recomputes the idempotency key the forward block chose up front
/// (key == application id) and cancels *by reservation* — the service
/// tombstones the key if nothing has landed yet, refusing any
/// straggling retry that arrives later.
pub struct CancelCall {
    transport: Arc<dyn Transport>,
    bases: Vec<String>,
    path: String,
    id_field: String,
    log: Arc<Mutex<Vec<String>>>,
    node: &'static str,
    reservation: Option<(ServiceCall, String)>,
}

impl CancelCall {
    /// Build a compensator for `node`, cancelling at `bases`/`path` by
    /// `id_field`, appending `"cancel:{node}:{id}"` to `log`.
    pub fn new(
        transport: Arc<dyn Transport>,
        bases: Vec<String>,
        path: &str,
        id_field: &str,
        log: Arc<Mutex<Vec<String>>>,
        node: &'static str,
    ) -> Self {
        CancelCall {
            transport,
            bases,
            path: path.to_string(),
            id_field: id_field.to_string(),
            log,
            node,
            reservation: None,
        }
    }

    /// Enable reservation cancels: when the forward output carries no
    /// id (the step failed), derive the id from `forward`'s idempotency
    /// key in the current trace and POST it to `path` instead of the
    /// normal cancel route. `forward` must be a clone of the exact
    /// block wired into the graph — the key is per block instance.
    pub fn with_reservation(mut self, forward: ServiceCall, path: &str) -> Self {
        self.reservation = Some((forward, path.to_string()));
        self
    }
}

impl Activity for CancelCall {
    fn inputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let forward_id = inputs
            .get("out")
            .and_then(|v| v.get(&self.id_field))
            .and_then(Value::as_str)
            .map(str::to_string);
        let (id, path) = match forward_id {
            Some(id) => (id, self.path.as_str()),
            None => {
                // The forward step failed before the saga ever learned
                // an id — but one of its lost-response attempts may
                // have landed. Its idempotency key is the application
                // id, and it is recomputable: the compensator runs in a
                // child span of the same trace the forward attempts
                // used.
                let Some((forward, reservation_path)) = &self.reservation else {
                    return Err(ActivityError::Failed(format!(
                        "no {:?} in forward output",
                        self.id_field
                    )));
                };
                let Some(ctx) = soc_observe::context::current() else {
                    return Err(ActivityError::Failed(format!(
                        "no {:?} in forward output and no trace to derive the reservation key",
                        self.id_field
                    )));
                };
                (forward.idempotency_key_in(&ctx), reservation_path.as_str())
            }
        };
        let body = {
            let mut b = Value::Object(vec![]);
            b.set(self.id_field.clone(), id.as_str());
            b.to_compact()
        };
        // Cancelling is idempotent service-side, so spraying retries
        // across replicas is safe; 4 rounds over every base drives the
        // residual failure probability to negligible.
        let mut last = String::new();
        for round in 0..4 {
            for base in &self.bases {
                let req = Request::post(format!("{base}/{path}"), Vec::new())
                    .with_text("application/json", &body);
                match self.transport.send(req) {
                    Ok(resp) if resp.status.is_success() => {
                        self.log.lock().push(format!("cancel:{}:{id}", self.node));
                        return Ok(HashMap::from([("out".to_string(), Value::from(id.as_str()))]));
                    }
                    Ok(resp) => last = format!("status {}", resp.status),
                    Err(e) => last = e.to_string(),
                }
            }
            std::thread::sleep(Duration::from_millis(1 << round));
        }
        Err(ActivityError::Service(format!("cancel {} failed: {last}", self.node)))
    }
}

/// The notify service: records a notification per idempotency key in
/// its own ledger (replays dedupe) and supports cancellation by the
/// receipt it returned.
fn notify_handler(ledger: Arc<SubmissionLedger>) -> impl Fn(Request) -> Response {
    move |req: Request| {
        let body = req.text().unwrap_or_default().to_string();
        match req.path() {
            "/notify" => {
                let Some(key) = req.idempotency_key().map(str::to_string) else {
                    return Response::error(
                        soc_http::Status(422),
                        "notify requires an Idempotency-Key",
                    );
                };
                // Echo the application id through so downstream steps
                // (and the harness) can correlate.
                let app_id = Value::parse(&body)
                    .ok()
                    .and_then(|v| {
                        v.get("application_id").and_then(Value::as_str).map(str::to_string)
                    })
                    .unwrap_or_default();
                let k = key.clone();
                let (resp, _) = ledger.apply(&key, &body, move || {
                    json!({ "notified": true, "receipt": (k.as_str()), "application_id": (app_id.as_str()) })
                        .to_compact()
                });
                Response::json(&resp)
            }
            "/notify/cancel" => match Value::parse(&body)
                .ok()
                .and_then(|v| v.get("receipt").and_then(Value::as_str).map(str::to_string))
            {
                Some(receipt) => {
                    let known = ledger.cancel(&receipt);
                    Response::json(&json!({ "cancelled": known }).to_compact())
                }
                None => Response::error(soc_http::Status(422), "missing receipt"),
            },
            // Cancel by the idempotency key (== receipt) chosen before
            // the notification was sent; tombstones an unseen key so a
            // straggling retry is refused.
            "/notify/cancel-reservation" => match Value::parse(&body)
                .ok()
                .and_then(|v| v.get("receipt").and_then(Value::as_str).map(str::to_string))
            {
                Some(receipt) => {
                    let landed = ledger.cancel_reservation(&receipt);
                    Response::json(&json!({ "cancelled": landed }).to_compact())
                }
                None => Response::error(soc_http::Status(422), "missing receipt"),
            },
            _ => Response::error(soc_http::Status(404), "no such route"),
        }
    }
}

/// The finalize service: echoes its body, failing one attempt with the
/// seeded probability (or always, when `offline`) — the flaky last
/// step that drives some seeds into compensation.
fn finalize_handler(seed: u64, fail_prob: f64, offline: bool) -> impl Fn(Request) -> Response {
    let rng = Mutex::new(FaultRng::new(seed ^ 0xF1A71));
    move |req: Request| {
        if offline || rng.lock().chance(fail_prob) {
            return Response::error(soc_http::Status(503), "finalize unavailable (injected)");
        }
        Response::json(req.text().unwrap_or("{}"))
    }
}

/// The split of the overall fault budget across fault kinds on each
/// replica (fixed proportions so `fault_pct` is the one knob).
fn replica_faults(cfg: &ChaosConfig, replica: usize) -> FaultConfig {
    let f = cfg.fault_pct;
    let mut fault = FaultConfig::seeded(cfg.seed ^ ((replica as u64 + 1) * 0x9E37))
        .with_fail(0.40 * f)
        .with_reset(0.25 * f)
        .with_corrupt(0.20 * f)
        .with_truncate(0.15 * f);
    // One replica misbehaves in bursts rather than uniformly.
    if replica == cfg.replicas.saturating_sub(1) {
        fault = fault.with_window(FaultWindow { period: 10, faulty: 4, offset: 3 });
    }
    fault
}

/// Build the per-run mortgage saga graph.
#[allow(clippy::too_many_arguments)]
fn build_saga(
    run: usize,
    cfg: &ChaosConfig,
    gw: &Gateway,
    transport: &Arc<dyn Transport>,
    mortgage_bases: &[String],
    notify_base: &str,
    finalize_base: &str,
    log: &Arc<Mutex<Vec<String>>>,
) -> WorkflowGraph {
    let mut g = WorkflowGraph::new();
    // Distinct content per run so the ledger audits each logical
    // application separately.
    let app = g.add(
        "application",
        Const::new(json!({
            "name": (format!("chaos-{:x}-{run}", cfg.seed)),
            "ssn": "123-45-6789",
            "annual_income": 120000,
            "loan_amount": (250_000 + run as i64),
            "term_years": 30
        })),
    );
    // Keep clones of the forward blocks: their idempotency keys double
    // as server-side ids, so each compensator can cancel-by-reservation
    // when the forward step fails without ever yielding an id.
    let apply_call = ServiceCall::post_via_gateway(gw.clone(), "mortgage", "mortgage/apply");
    let notify_call = ServiceCall::post(transport.clone(), &format!("{notify_base}/notify"));
    let apply = g.add("apply", apply_call.clone());
    let notify = g.add("notify", notify_call.clone());
    let finalize = g.add(
        "finalize",
        ServiceCall::post(transport.clone(), &format!("{finalize_base}/finalize")),
    );
    g.connect(app, "out", apply, "body").unwrap();
    g.connect(apply, "out", notify, "body").unwrap();
    g.connect(notify, "out", finalize, "body").unwrap();

    g.set_policy(
        apply,
        ResiliencePolicy::retries(4)
            .with_timeout(Duration::from_millis(500))
            .with_backoff(Duration::from_micros(500), Duration::from_millis(8)),
    )
    .unwrap();
    g.set_policy(
        notify,
        ResiliencePolicy::retries(4)
            .with_backoff(Duration::from_micros(500), Duration::from_millis(8)),
    )
    .unwrap();
    g.set_policy(
        finalize,
        ResiliencePolicy::retries(2)
            .with_backoff(Duration::from_micros(500), Duration::from_millis(4)),
    )
    .unwrap();

    g.set_compensation(
        apply,
        CancelCall::new(
            transport.clone(),
            mortgage_bases.to_vec(),
            "mortgage/cancel",
            "application_id",
            log.clone(),
            "apply",
        )
        .with_reservation(apply_call, "mortgage/cancel-reservation"),
    )
    .unwrap();
    g.set_compensation(
        notify,
        CancelCall::new(
            transport.clone(),
            vec![notify_base.to_string()],
            "notify/cancel",
            "receipt",
            log.clone(),
            "notify",
        )
        .with_reservation(notify_call, "notify/cancel-reservation"),
    )
    .unwrap();
    g
}

/// Shared post-campaign bookkeeping: drive the saga runs, then fill the
/// report from the ledgers.
#[allow(clippy::too_many_arguments)]
fn drive_runs(
    cfg: &ChaosConfig,
    gw: &Gateway,
    transport: &Arc<dyn Transport>,
    mortgage_bases: &[String],
    notify_base: &str,
    finalize_base: &str,
    log: &Arc<Mutex<Vec<String>>>,
    mut mid_campaign: impl FnMut(usize),
) -> Vec<(RunOutcome, Option<String>)> {
    let mut results = Vec::with_capacity(cfg.runs);
    for run in 0..cfg.runs {
        mid_campaign(run);
        let graph =
            build_saga(run, cfg, gw, transport, mortgage_bases, notify_base, finalize_base, log);
        let saga = SagaConfig {
            deadline: cfg.deadline,
            seed: cfg.seed ^ (run as u64 + 1).wrapping_mul(0xD00D),
        };
        let start = Instant::now();
        let outcome = graph.run_saga(&HashMap::new(), &saga);
        let elapsed = start.elapsed();
        let (outcome_rec, app_id) = match outcome {
            Ok(WorkflowOutcome::Completed(outputs)) => {
                // finalize echoes its body, so the application id of a
                // completed run is visible on the unconnected output.
                let app_id = outputs
                    .get("finalize.out")
                    .and_then(|v| v.get("application_id"))
                    .and_then(Value::as_str)
                    .map(str::to_string);
                (
                    RunOutcome {
                        run,
                        completed: true,
                        clean_compensation: false,
                        failed_at: None,
                        compensated: Vec::new(),
                        elapsed,
                    },
                    app_id,
                )
            }
            Ok(WorkflowOutcome::Compensated {
                failed_at,
                compensated,
                compensation_errors,
                ..
            }) => (
                RunOutcome {
                    run,
                    completed: false,
                    clean_compensation: compensation_errors.is_empty(),
                    failed_at: Some(failed_at),
                    compensated,
                    elapsed,
                },
                None,
            ),
            Err(e) => (
                RunOutcome {
                    run,
                    completed: false,
                    clean_compensation: false,
                    failed_at: Some(format!("structural: {e}")),
                    compensated: Vec::new(),
                    elapsed,
                },
                None,
            ),
        };
        results.push((outcome_rec, app_id));
    }
    results
}

/// Probe until every known breaker is closed and a clean call round
/// trips, or `timeout` passes. The default breaker cool-down is 1 s, so
/// recovery needs real time.
fn breakers_recover(gw: &Gateway, endpoints: &[String], timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        let probe = gw.call("mortgage", Request::get("health"));
        let all_closed = endpoints
            .iter()
            .all(|e| matches!(gw.breaker_state(e), None | Some(BreakerState::Closed)));
        if probe.status.is_success() && all_closed {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn fill_report(
    cfg: &ChaosConfig,
    results: Vec<(RunOutcome, Option<String>)>,
    app_ledger: &SubmissionLedger,
    notify_ledger: &SubmissionLedger,
    breakers_recovered: bool,
    elapsed: Duration,
) -> ChaosReport {
    let completed_app_ids = results.iter().filter_map(|(_, id)| id.clone()).collect::<Vec<_>>();
    ChaosReport {
        seed: cfg.seed,
        outcomes: results.into_iter().map(|(o, _)| o).collect(),
        // Slack on top of the forward deadline: compensation and
        // straggler joins legitimately run past it.
        run_budget: cfg.deadline + Duration::from_secs(5),
        max_app_executions_per_content: app_ledger.max_executions_per_content(),
        open_applications: app_ledger.open_applications(),
        orphan_cancels: app_ledger.orphan_cancels(),
        deduped_replays: app_ledger.total_deduped(),
        open_notifications: notify_ledger.open_applications(),
        notify_orphan_cancels: notify_ledger.orphan_cancels(),
        keyless_submissions: app_ledger.keyless_submissions(),
        completed_app_ids,
        cancelled_app_ids: app_ledger.cancelled_keys(),
        breakers_recovered,
        elapsed,
    }
}

/// Run one chaos campaign over the in-memory network. Deterministic
/// per `(seed, config)` up to thread scheduling of straggler joins.
pub fn run_mem_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let started = Instant::now();
    let net = MemNetwork::new();
    let app_ledger = Arc::new(SubmissionLedger::new());
    let notify_ledger = Arc::new(SubmissionLedger::new());

    let mut mortgage_bases = Vec::new();
    let mut replica_hosts = Vec::new();
    for r in 0..cfg.replicas.max(1) {
        let host = format!("mortgage{r}.asu");
        net.host(&host, ServiceHost::with_ledger(cfg.seed ^ r as u64, app_ledger.clone()));
        net.set_fault(&host, replica_faults(cfg, r));
        mortgage_bases.push(format!("mem://{host}"));
        replica_hosts.push(host);
    }
    net.host("notify.asu", notify_handler(notify_ledger.clone()));
    net.set_fault(
        "notify.asu",
        FaultConfig::seeded(cfg.seed ^ 0x0F)
            .with_fail(0.3 * cfg.fault_pct)
            .with_reset(0.2 * cfg.fault_pct),
    );
    net.host(
        "finalize.asu",
        finalize_handler(cfg.seed, cfg.finalize_fail_prob, cfg.finalize_offline),
    );

    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let gw = Gateway::new(
        transport.clone(),
        GatewayConfig {
            seed: cfg.seed,
            max_retries: 4,
            base_backoff: Duration::from_micros(300),
            max_backoff: Duration::from_millis(5),
            request_deadline: Duration::from_secs(2),
            ..GatewayConfig::default()
        },
    );
    let endpoints: Vec<String> = mortgage_bases.clone();
    gw.register("mortgage", &endpoints.iter().map(String::as_str).collect::<Vec<_>>());

    if cfg.partition {
        net.partition(CLIENT_ORIGIN, &replica_hosts[0]);
    }
    let halfway = cfg.runs / 2;
    let net2 = net.clone();
    let heal_host = replica_hosts[0].clone();
    let log = Arc::new(Mutex::new(Vec::new()));
    let results = drive_runs(
        cfg,
        &gw,
        &transport,
        &mortgage_bases,
        "mem://notify.asu",
        "mem://finalize.asu",
        &log,
        move |run| {
            if cfg.partition && run == halfway {
                net2.heal(CLIENT_ORIGIN, &heal_host);
            }
        },
    );

    // Faults clear; the breakers must find their way back to closed.
    for host in &replica_hosts {
        net.set_fault(host, FaultConfig::seeded(cfg.seed));
    }
    net.set_fault("notify.asu", FaultConfig::seeded(cfg.seed));
    net.heal_all();
    let breakers_recovered = breakers_recover(&gw, &endpoints, Duration::from_secs(8));

    fill_report(cfg, results, &app_ledger, &notify_ledger, breakers_recovered, started.elapsed())
}

/// Run one chaos campaign over real TCP sockets: each mortgage replica
/// is an [`soc_http::HttpServer`] fronted by a [`FaultProxy`] injecting
/// delay/reset/truncation on the wire. Returns the report plus the
/// proxies' open-tunnel counts after shutdown (leak check).
pub fn run_tcp_chaos(cfg: &ChaosConfig) -> (ChaosReport, Vec<i64>) {
    use soc_http::{HttpClient, HttpServer};

    let started = Instant::now();
    let app_ledger = Arc::new(SubmissionLedger::new());
    let notify_ledger = Arc::new(SubmissionLedger::new());

    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    let mut proxied_urls = Vec::new();
    let mut direct_urls = Vec::new();
    for r in 0..cfg.replicas.max(1) {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            4,
            ServiceHost::with_ledger(cfg.seed ^ r as u64, app_ledger.clone()),
        )
        .expect("bind replica");
        let f = cfg.fault_pct;
        let proxy = FaultProxy::bind(
            server.addr(),
            ProxyFaults::seeded(cfg.seed ^ ((r as u64 + 1) * 0x515))
                .with_delay(0.2 * f, Duration::from_millis(20))
                .with_reset(0.4 * f)
                .with_truncate(0.4 * f),
        )
        .expect("bind proxy");
        proxied_urls.push(proxy.url());
        direct_urls.push(server.url());
        servers.push(server);
        proxies.push(proxy);
    }
    let notify_srv = HttpServer::bind("127.0.0.1:0", 4, notify_handler(notify_ledger.clone()))
        .expect("bind notify");
    let finalize_srv = HttpServer::bind(
        "127.0.0.1:0",
        4,
        finalize_handler(cfg.seed, cfg.finalize_fail_prob, cfg.finalize_offline),
    )
    .expect("bind finalize");

    let transport: Arc<dyn Transport> = Arc::new(HttpClient::new());
    let gw = Gateway::new(
        transport.clone(),
        GatewayConfig {
            seed: cfg.seed,
            max_retries: 4,
            base_backoff: Duration::from_micros(300),
            max_backoff: Duration::from_millis(5),
            request_deadline: Duration::from_secs(4),
            ..GatewayConfig::default()
        },
    );
    gw.register("mortgage", &proxied_urls.iter().map(String::as_str).collect::<Vec<_>>());

    let log = Arc::new(Mutex::new(Vec::new()));
    // Compensators cancel via the DIRECT server urls: compensation
    // should not have to fight the fault proxy to undo work.
    let results = drive_runs(
        cfg,
        &gw,
        &transport,
        &direct_urls,
        &notify_srv.url(),
        &finalize_srv.url(),
        &log,
        |_| {},
    );

    // Swap the faulty proxies out for the direct endpoints: faults are
    // gone, the breakers must close again.
    gw.register("mortgage", &direct_urls.iter().map(String::as_str).collect::<Vec<_>>());
    let breakers_recovered = breakers_recover(&gw, &direct_urls, Duration::from_secs(8));

    let mut open = Vec::new();
    for proxy in &mut proxies {
        proxy.shutdown();
        open.push(proxy.open_tunnels());
    }
    let report = fill_report(
        cfg,
        results,
        &app_ledger,
        &notify_ledger,
        breakers_recovered,
        started.elapsed(),
    );
    (report, open)
}

/// Live thread count of this process (Linux); used by chaos tests to
/// assert the harness does not leak threads across campaigns.
pub fn live_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}
