//! # soc-parallel — the multithreading substrate (CSE445 unit 2)
//!
//! The paper's unit 2 covers *"critical operations, synchronization,
//! resource locking versus unbreakable operations, semaphore, events and
//! event coordination"* plus the performance side: Intel TBB-style task
//! libraries and the speedup/efficiency experiment of Figure 3. This
//! crate implements all of it from scratch:
//!
//! - [`pool`] — a work-stealing thread pool ([`ThreadPool`]) with
//!   rayon-shaped entry points: [`pool::ThreadPool::spawn`],
//!   [`pool::ThreadPool::join`], and [`pool::ThreadPool::scope`].
//! - [`par_iter`] — data-parallel loops: [`par_iter::parallel_for`],
//!   [`par_iter::parallel_map`], [`par_iter::parallel_reduce`] with
//!   static or dynamic (work-stealing) scheduling.
//! - [`pipeline`] — a TBB-style multi-stage pipeline over bounded
//!   channels.
//! - [`sync`] — teaching-grade synchronization primitives built on
//!   atomics + thread parking: semaphore, auto/manual reset events,
//!   countdown event, spin lock, and a bounded producer/consumer buffer.
//! - [`metrics`] — speedup, efficiency, Amdahl/Gustafson laws
//!   (Tables 1–2's "performance metrics" outcomes).
//! - [`simcore`] — a deterministic virtual-multicore scheduler for task
//!   DAGs (list scheduling, critical paths). This is the substitution
//!   substrate for the paper's 32-core Intel Manycore Testing Lab: it
//!   reproduces the *shape* of Figure 3 on any host, including the
//!   single-core container this reproduction runs in.
//! - [`workloads`] — the Collatz-conjecture validation workload used by
//!   the paper's Figure 3 experiment.
//!
//! ```
//! use soc_parallel::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let (a, b) = pool.join(|| 21 * 2, || "fast");
//! assert_eq!(a, 42);
//! assert_eq!(b, "fast");
//! ```

pub mod metrics;
pub mod par_iter;
pub mod pipeline;
pub mod pool;
pub mod simcore;
pub mod sync;
pub mod workloads;

pub use metrics::{amdahl_speedup, efficiency, speedup};
pub use par_iter::{parallel_for, parallel_map, parallel_reduce, Schedule};
pub use pool::ThreadPool;
