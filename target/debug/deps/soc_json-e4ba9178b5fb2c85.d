/root/repo/target/debug/deps/soc_json-e4ba9178b5fb2c85.d: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

/root/repo/target/debug/deps/soc_json-e4ba9178b5fb2c85: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

crates/soc-json/src/lib.rs:
crates/soc-json/src/parse.rs:
crates/soc-json/src/pointer.rs:
crates/soc-json/src/ser.rs:
crates/soc-json/src/value.rs:
