/root/repo/target/debug/deps/fig1_raas-194f73397a972b0c.d: crates/soc-bench/src/bin/fig1_raas.rs

/root/repo/target/debug/deps/fig1_raas-194f73397a972b0c: crates/soc-bench/src/bin/fig1_raas.rs

crates/soc-bench/src/bin/fig1_raas.rs:
