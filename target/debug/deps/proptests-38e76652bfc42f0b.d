/root/repo/target/debug/deps/proptests-38e76652bfc42f0b.d: crates/soc-services/tests/proptests.rs

/root/repo/target/debug/deps/proptests-38e76652bfc42f0b: crates/soc-services/tests/proptests.rs

crates/soc-services/tests/proptests.rs:
