//! Crash-recovery property tests for the WAL: damage a log at *every*
//! byte offset — truncation (a torn tail) and single-byte corruption
//! (a lying disk) — and require the recovery contract from the module
//! docs: replay is **prefix-consistent or loud**. A reopened log either
//! yields exactly the first `k` records that were appended, or refuses
//! to open with [`StoreError::Corrupt`]; it never invents, reorders, or
//! silently skips past a record. Plus: compacting through a snapshot
//! must be observationally equivalent to replaying the full log.

use std::fs;
use std::path::Path;

use proptest::collection::vec;
use proptest::prelude::*;
use soc_store::wal::{FsyncPolicy, Recovery, Wal, WalConfig};
use soc_store::{StoreError, TempDir};

/// Fast config for property tests: skip fsync (the tests model crash
/// damage by rewriting file bytes, not by killing processes).
fn fast() -> WalConfig {
    WalConfig { fsync: FsyncPolicy::Never, ..WalConfig::default() }
}

const SEG_1: &str = "seg-00000000000000000001.wal";

/// Append `records` to a fresh log and return the raw bytes of its
/// (single) segment file.
fn segment_bytes(records: &[Vec<u8>]) -> Vec<u8> {
    let tmp = TempDir::new("props-build");
    {
        let (wal, _) = Wal::open_with(tmp.path(), fast()).unwrap();
        for r in records {
            wal.append(r).unwrap();
        }
    }
    fs::read(tmp.path().join(SEG_1)).unwrap()
}

/// End offset of each frame within a segment file: frame `i` spans
/// `[ends[i] - (8 + len), ends[i])`, after the 16-byte header.
fn frame_ends(records: &[Vec<u8>]) -> Vec<usize> {
    let mut off = 16usize;
    records
        .iter()
        .map(|r| {
            off += 8 + r.len();
            off
        })
        .collect()
}

/// Open a directory containing exactly `bytes` as segment 1.
fn open_bytes(bytes: &[u8]) -> Result<(Wal, Recovery), StoreError> {
    let tmp = TempDir::new("props-open");
    fs::write(tmp.path().join(SEG_1), bytes).unwrap();
    Wal::open_with(tmp.path(), fast())
}

/// Assert `recovery` replayed exactly the first `want` of `records`.
fn assert_prefix(recovery: &Recovery, records: &[Vec<u8>], want: usize, ctx: &str) {
    assert_eq!(recovery.records.len(), want, "{ctx}: wrong prefix length");
    for (i, (lsn, payload)) in recovery.records.iter().enumerate() {
        assert_eq!(*lsn, i as u64 + 1, "{ctx}: LSN gap at {i}");
        assert_eq!(payload, &records[i], "{ctx}: payload diverged at {i}");
    }
}

proptest! {
    // Each case reopens the log once per byte offset, so keep the
    // case count low and the logs small; coverage comes from the
    // exhaustive per-byte sweep inside each case.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the segment at every byte offset (what a torn tail
    /// looks like after a crash) recovers exactly the records whose
    /// frames survived whole, and the log stays appendable.
    #[test]
    fn truncation_at_every_offset_is_prefix_consistent(
        records in vec(vec(any::<u8>(), 0..12), 1..7),
    ) {
        let full = segment_bytes(&records);
        let ends = frame_ends(&records);
        prop_assert_eq!(*ends.last().unwrap(), full.len());

        for cut in 0..=full.len() {
            let (_, recovery) = open_bytes(&full[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}: torn tails must recover, got {e}"));
            // A cut inside the 16-byte header drops the segment wholly
            // (nothing in it was ever acknowledged); otherwise every
            // frame that ends at or before the cut survives.
            let want =
                if cut < 16 { 0 } else { ends.iter().filter(|&&e| e <= cut).count() };
            assert_prefix(&recovery, &records, want, &format!("cut at {cut}"));
            if cut >= 16 {
                let good = if want == 0 { 16 } else { ends[want - 1] };
                prop_assert_eq!(recovery.truncated_bytes, (cut - good) as u64);
            }
        }

        // Recovery must leave a log that accepts new writes with the
        // next contiguous LSN. Spot-check a mid-log cut.
        let cut = full.len() / 2;
        let tmp = TempDir::new("props-reappend");
        fs::write(tmp.path().join(SEG_1), &full[..cut]).unwrap();
        let survivors = {
            let (wal, recovery) = Wal::open_with(tmp.path(), fast()).unwrap();
            let n = recovery.records.len() as u64;
            prop_assert_eq!(wal.append(b"after-crash").unwrap(), n + 1);
            n
        };
        let (_, recovery) = Wal::open_with(tmp.path(), fast()).unwrap();
        prop_assert_eq!(recovery.records.len() as u64, survivors + 1);
        prop_assert_eq!(recovery.records.last().unwrap().1.as_slice(), b"after-crash");
    }

    /// Flipping a byte at every offset (bit rot / a lying disk) either
    /// recovers the exact clean prefix before the damaged frame or —
    /// for header damage — drops the segment. CRC framing means the
    /// damage is always *detected*; nothing replays as modified.
    #[test]
    fn byte_flips_are_prefix_consistent_or_loud(
        records in vec(vec(any::<u8>(), 0..12), 1..7),
    ) {
        let full = segment_bytes(&records);
        let ends = frame_ends(&records);

        for flip in 0..full.len() {
            let mut bytes = full.clone();
            bytes[flip] ^= 0xA5;
            let (_, recovery) = open_bytes(&bytes)
                .unwrap_or_else(|e| panic!("flip at {flip}: final-segment damage must truncate, got {e}"));
            // Damage in the header drops the segment; damage inside
            // frame `k` truncates at `k`'s start, keeping 0..k intact.
            let want =
                if flip < 16 { 0 } else { ends.iter().filter(|&&e| e <= flip).count() };
            assert_prefix(&recovery, &records, want, &format!("flip at {flip}"));
        }
    }

    /// Compaction equivalence: a log that snapshots (and truncates its
    /// history) at arbitrary points replays to the same state as a log
    /// that kept every record.
    #[test]
    fn snapshot_plus_replay_equals_full_replay(
        steps in vec((vec(any::<u8>(), 0..12), any::<bool>()), 1..10),
    ) {
        let plain = TempDir::new("props-plain");
        let compacted = TempDir::new("props-compacted");
        let mut applied: Vec<Vec<u8>> = Vec::new();
        {
            let (a, _) = Wal::open_with(plain.path(), fast()).unwrap();
            let (b, _) = Wal::open_with(compacted.path(), fast()).unwrap();
            for (payload, snap_after) in &steps {
                a.append(payload).unwrap();
                b.append(payload).unwrap();
                applied.push(payload.clone());
                if *snap_after {
                    // "State" is the full record list, length-framed.
                    let state = encode_state(&applied);
                    let lsn = b.snapshot(&state).unwrap();
                    prop_assert_eq!(lsn as usize, applied.len());
                }
            }
        }

        let (_, full) = Wal::open_with(plain.path(), fast()).unwrap();
        let via_full: Vec<Vec<u8>> = full.records.into_iter().map(|(_, p)| p).collect();

        let (_, rec) = Wal::open_with(compacted.path(), fast()).unwrap();
        let mut via_snap = match &rec.snapshot {
            Some((lsn, state)) => {
                let decoded = decode_state(state);
                prop_assert_eq!(*lsn as usize, decoded.len());
                // Replayed records must pick up exactly past the snapshot.
                if let Some((first, _)) = rec.records.first() {
                    prop_assert_eq!(*first, lsn + 1);
                }
                decoded
            }
            None => Vec::new(),
        };
        via_snap.extend(rec.records.into_iter().map(|(_, p)| p));

        prop_assert_eq!(&via_full, &applied);
        prop_assert_eq!(&via_snap, &applied);
    }
}

fn encode_state(records: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        out.extend_from_slice(r);
    }
    out
}

fn decode_state(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        out.push(bytes[4..4 + len].to_vec());
        bytes = &bytes[4 + len..];
    }
    out
}

/// Find the lone file matching `prefix` in `dir`.
fn find_file(dir: &Path, prefix: &str) -> std::path::PathBuf {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix}* file in {}", dir.display()))
}

/// Mid-log damage — a corrupt frame in a *non-final* segment — must
/// fail the open loudly: the records after it are intact on disk, so
/// truncating would silently drop acknowledged history.
#[test]
fn corruption_in_a_non_final_segment_fails_loudly() {
    let tmp = TempDir::new("props-midlog");
    let cfg = WalConfig { segment_bytes: 1, fsync: FsyncPolicy::Never, ..WalConfig::default() };
    {
        // segment_bytes = 1 rotates after every record: 3 segments.
        let (wal, _) = Wal::open_with(tmp.path(), cfg.clone()).unwrap();
        for r in [b"alpha".as_slice(), b"beta", b"gamma"] {
            wal.append(r).unwrap();
        }
    }
    let first = tmp.path().join(SEG_1);
    let mut bytes = fs::read(&first).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5; // damage the frame payload, not the header
    fs::write(&first, &bytes).unwrap();

    match Wal::open_with(tmp.path(), cfg) {
        Err(StoreError::Corrupt(why)) => assert!(why.contains("non-final"), "{why}"),
        Err(e) => panic!("expected Corrupt, got {e:?}"),
        Ok(_) => panic!("expected Corrupt, got a successful open"),
    }
}

/// A hole in the segment chain (an unlinked file) is unrecoverable
/// history loss and must refuse to open.
#[test]
fn segment_chain_gap_fails_loudly() {
    let tmp = TempDir::new("props-gap");
    let cfg = WalConfig { segment_bytes: 1, fsync: FsyncPolicy::Never, ..WalConfig::default() };
    {
        let (wal, _) = Wal::open_with(tmp.path(), cfg.clone()).unwrap();
        for r in [b"alpha".as_slice(), b"beta", b"gamma"] {
            wal.append(r).unwrap();
        }
    }
    fs::remove_file(tmp.path().join("seg-00000000000000000002.wal")).unwrap();
    match Wal::open_with(tmp.path(), cfg) {
        Err(StoreError::Corrupt(why)) => assert!(why.contains("gap"), "{why}"),
        Err(e) => panic!("expected Corrupt, got {e:?}"),
        Ok(_) => panic!("expected Corrupt, got a successful open"),
    }
}

/// A corrupt snapshot whose covered history was already compacted away
/// must fail the open: the checksum rejects the snapshot and the
/// records it summarized no longer exist anywhere.
#[test]
fn corrupt_snapshot_after_compaction_fails_loudly() {
    let tmp = TempDir::new("props-snap");
    {
        let (wal, _) = Wal::open_with(tmp.path(), fast()).unwrap();
        for r in [b"alpha".as_slice(), b"beta", b"gamma"] {
            wal.append(r).unwrap();
        }
        wal.snapshot(b"state-after-3").unwrap();
        wal.append(b"delta").unwrap();
    }
    let snap = find_file(tmp.path(), "snap-");
    let mut bytes = fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    fs::write(&snap, &bytes).unwrap();

    match Wal::open_with(tmp.path(), WalConfig::default()) {
        Err(StoreError::Corrupt(why)) => assert!(why.contains("history missing"), "{why}"),
        Err(e) => panic!("expected Corrupt, got {e:?}"),
        Ok(_) => panic!("expected Corrupt, got a successful open"),
    }
}
