//! XML type definition and validation (an XSD-flavoured subset).
//!
//! A [`Schema`] declares elements with typed simple content or structured
//! content (sequence / choice with occurrence bounds) and typed
//! attributes. [`Schema::validate`] checks a [`Document`] against the
//! declarations and reports every violation with an XPath-like location.
//!
//! Schemas can be built programmatically or loaded from a compact XML
//! dialect (see [`Schema::parse_xml`]), mirroring how the course pairs
//! "XML type definition and schema" with "XML validation".

use std::collections::BTreeMap;
use std::fmt;

use crate::dom::{Document, NodeId, NodeValue};
use crate::error::XmlResult;
use crate::reader::{Attribute, XmlEvent, XmlReader};

/// Built-in simple types for element text and attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// Any text.
    String,
    /// Optional sign + digits.
    Int,
    /// Digits with optional fraction and sign.
    Decimal,
    /// `true` / `false` / `1` / `0`.
    Boolean,
    /// `YYYY-MM-DD`.
    Date,
    /// A non-empty token without spaces (used for URIs and ids).
    Token,
}

impl DataType {
    /// Does `value` lex as this type?
    pub fn accepts(self, value: &str) -> bool {
        let v = value.trim();
        match self {
            DataType::String => true,
            DataType::Int => {
                let v = v.strip_prefix(['+', '-']).unwrap_or(v);
                !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit())
            }
            DataType::Decimal => {
                let v = v.strip_prefix(['+', '-']).unwrap_or(v);
                let (int, frac) = match v.split_once('.') {
                    Some((i, f)) => (i, f),
                    None => (v, "0"),
                };
                !(int.is_empty() && frac.is_empty())
                    && int.bytes().all(|b| b.is_ascii_digit())
                    && frac.bytes().all(|b| b.is_ascii_digit())
                    && !(int.is_empty() && frac.is_empty())
                    && !v.is_empty()
            }
            DataType::Boolean => matches!(v, "true" | "false" | "1" | "0"),
            DataType::Date => {
                let parts: Vec<&str> = v.split('-').collect();
                parts.len() == 3
                    && parts[0].len() == 4
                    && parts[1].len() == 2
                    && parts[2].len() == 2
                    && parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()))
                    && (1..=12).contains(&parts[1].parse::<u32>().unwrap_or(0))
                    && (1..=31).contains(&parts[2].parse::<u32>().unwrap_or(0))
            }
            DataType::Token => !v.is_empty() && !v.contains(char::is_whitespace),
        }
    }

    /// Parse from the schema dialect's `type` attribute.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "string" => DataType::String,
            "int" | "integer" => DataType::Int,
            "decimal" => DataType::Decimal,
            "boolean" | "bool" => DataType::Boolean,
            "date" => DataType::Date,
            "token" => DataType::Token,
            _ => return None,
        })
    }
}

/// Maximum occurrence bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Max {
    /// At most this many.
    Count(u32),
    /// No upper bound (`maxOccurs="unbounded"`).
    Unbounded,
}

impl Max {
    fn allows(self, n: u32) -> bool {
        match self {
            Max::Count(c) => n <= c,
            Max::Unbounded => true,
        }
    }
}

/// A reference to a child element with occurrence bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Particle {
    /// Name of the referenced element declaration.
    pub element: String,
    /// Minimum occurrences (0 = optional).
    pub min: u32,
    /// Maximum occurrences.
    pub max: Max,
}

impl Particle {
    /// Exactly-one particle.
    pub fn one(element: impl Into<String>) -> Self {
        Particle { element: element.into(), min: 1, max: Max::Count(1) }
    }

    /// Zero-or-one particle.
    pub fn optional(element: impl Into<String>) -> Self {
        Particle { element: element.into(), min: 0, max: Max::Count(1) }
    }

    /// One-or-more particle.
    pub fn many1(element: impl Into<String>) -> Self {
        Particle { element: element.into(), min: 1, max: Max::Unbounded }
    }

    /// Zero-or-more particle.
    pub fn many(element: impl Into<String>) -> Self {
        Particle { element: element.into(), min: 0, max: Max::Unbounded }
    }
}

/// Allowed content of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Text content of a simple type; no child elements.
    Simple(DataType),
    /// Child elements in the declared order, with occurrence bounds;
    /// no significant text.
    Sequence(Vec<Particle>),
    /// Exactly one of the alternatives.
    Choice(Vec<Particle>),
    /// No children and no text.
    Empty,
    /// Anything goes (schema hole; validation recurses only into
    /// children that have declarations).
    Any,
}

/// A typed attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Value type.
    pub ty: DataType,
    /// Must the attribute be present?
    pub required: bool,
}

/// An element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element (local) name.
    pub name: String,
    /// Content model.
    pub content: Content,
    /// Attribute declarations. Undeclared attributes are rejected
    /// (except `xmlns*`).
    pub attributes: Vec<AttrDecl>,
}

/// A validation problem, with an XPath-like location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Where in the document (`/order/item[2]`).
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// A set of element declarations with a distinguished root.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    root: String,
    decls: BTreeMap<String, ElementDecl>,
}

impl Schema {
    /// Start an empty schema whose document root must be `root`.
    pub fn new(root: impl Into<String>) -> Self {
        Schema { root: root.into(), decls: BTreeMap::new() }
    }

    /// Add (or replace) an element declaration; builder-style.
    pub fn element(mut self, decl: ElementDecl) -> Self {
        self.decls.insert(decl.name.clone(), decl);
        self
    }

    /// Declared root element name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Look up a declaration.
    pub fn decl(&self, name: &str) -> Option<&ElementDecl> {
        self.decls.get(name)
    }

    /// Validate `doc`, returning every violation (empty = valid).
    pub fn validate(&self, doc: &Document) -> Vec<SchemaError> {
        let mut errors = Vec::new();
        let root_name = doc.name(doc.root()).map(|q| q.local.clone()).unwrap_or_default();
        if root_name != self.root {
            errors.push(SchemaError {
                path: "/".into(),
                message: format!("root element is <{root_name}>, expected <{}>", self.root),
            });
            return errors;
        }
        self.validate_element(doc, doc.root(), &format!("/{root_name}"), &mut errors);
        errors
    }

    /// Convenience: validate and wrap violations in `Err`.
    pub fn check(&self, doc: &Document) -> Result<(), Vec<SchemaError>> {
        let errs = self.validate(doc);
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Validate `input` by streaming reader events through a
    /// [`StreamValidator`] — same verdicts and error list as parsing
    /// into a [`Document`] and calling [`Schema::validate`], but
    /// without materializing the tree. Parse errors surface as `Err`;
    /// the `Ok` payload is the violation list (empty = valid).
    pub fn validate_stream(&self, input: &str) -> XmlResult<Vec<SchemaError>> {
        let mut reader = XmlReader::new(input);
        let mut validator = StreamValidator::new(self);
        loop {
            let ev = reader.next_event()?;
            if matches!(ev, XmlEvent::EndDocument) {
                return Ok(validator.finish());
            }
            validator.observe(&ev, reader.attributes());
        }
    }

    fn validate_element(
        &self,
        doc: &Document,
        id: NodeId,
        path: &str,
        errors: &mut Vec<SchemaError>,
    ) {
        let name = doc.name(id).map(|q| q.local.clone()).unwrap_or_default();
        let Some(decl) = self.decls.get(&name) else {
            return; // Undeclared element: schema hole, skip.
        };

        // Attributes.
        for ad in &decl.attributes {
            match doc.attr(id, &ad.name) {
                Some(v) if !ad.ty.accepts(v) => errors.push(SchemaError {
                    path: path.into(),
                    message: format!("attribute {}={v:?} is not a valid {:?}", ad.name, ad.ty),
                }),
                Some(_) => {}
                None if ad.required => errors.push(SchemaError {
                    path: path.into(),
                    message: format!("missing required attribute {:?}", ad.name),
                }),
                None => {}
            }
        }
        for (aname, _) in doc.attributes(id) {
            if aname.is_xmlns() {
                continue;
            }
            if !decl.attributes.iter().any(|ad| ad.name == aname.local) {
                errors.push(SchemaError {
                    path: path.into(),
                    message: format!("undeclared attribute {:?}", aname.to_string()),
                });
            }
        }

        let child_elems: Vec<NodeId> = doc.child_elements(id).collect();
        let child_names: Vec<String> = child_elems
            .iter()
            .map(|&c| doc.name(c).map(|q| q.local.clone()).unwrap_or_default())
            .collect();
        let text = doc
            .children(id)
            .filter_map(|c| match doc.value(c) {
                NodeValue::Text(t) | NodeValue::CData(t) => Some(t),
                _ => None,
            })
            .collect::<String>();

        content_errors(&decl.content, &child_names, &text, path, errors);

        // Recurse with positional paths.
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (&c, cname) in child_elems.iter().zip(&child_names) {
            let n = seen.entry(cname.clone()).or_insert(0);
            *n += 1;
            let child_path = format!("{path}/{cname}[{n}]");
            self.validate_element(doc, c, &child_path, errors);
        }
    }

    /// Load a schema from the compact XML dialect:
    ///
    /// ```xml
    /// <schema root="order">
    ///   <element name="order">
    ///     <sequence>
    ///       <ref name="item" min="1" max="unbounded"/>
    ///     </sequence>
    ///     <attribute name="id" type="int" required="true"/>
    ///   </element>
    ///   <element name="item" type="string"/>
    /// </schema>
    /// ```
    pub fn parse_xml(src: &str) -> XmlResult<Result<Schema, String>> {
        let doc = Document::parse_str(src)?;
        let root = doc.root();
        let Some(root_attr) = doc.attr(root, "root") else {
            return Ok(Err("schema is missing the root attribute".into()));
        };
        let mut schema = Schema::new(root_attr);
        for el in doc.find_children(root, "element") {
            let Some(name) = doc.attr(el, "name") else {
                return Ok(Err("element declaration missing name".into()));
            };
            let content = if let Some(ty) = doc.attr(el, "type") {
                match DataType::parse(ty) {
                    Some(t) => Content::Simple(t),
                    None => return Ok(Err(format!("unknown type {ty:?}"))),
                }
            } else if let Some(seq) = doc.find_child(el, "sequence") {
                match parse_particles(&doc, seq) {
                    Ok(p) => Content::Sequence(p),
                    Err(e) => return Ok(Err(e)),
                }
            } else if let Some(ch) = doc.find_child(el, "choice") {
                match parse_particles(&doc, ch) {
                    Ok(p) => Content::Choice(p),
                    Err(e) => return Ok(Err(e)),
                }
            } else if doc.attr(el, "empty") == Some("true") {
                Content::Empty
            } else {
                Content::Any
            };
            let mut attributes = Vec::new();
            for at in doc.find_children(el, "attribute") {
                let Some(aname) = doc.attr(at, "name") else {
                    return Ok(Err("attribute declaration missing name".into()));
                };
                let ty = match DataType::parse(doc.attr(at, "type").unwrap_or("string")) {
                    Some(t) => t,
                    None => return Ok(Err("unknown attribute type".into())),
                };
                attributes.push(AttrDecl {
                    name: aname.to_string(),
                    ty,
                    required: doc.attr(at, "required") == Some("true"),
                });
            }
            schema = schema.element(ElementDecl { name: name.to_string(), content, attributes });
        }
        Ok(Ok(schema))
    }
}

/// Check an element's content model given its direct-child names (in
/// document order) and concatenated direct text. Shared by the DOM
/// walker and the streaming validator so both report identical errors.
fn content_errors(
    content: &Content,
    child_names: &[String],
    text: &str,
    path: &str,
    errors: &mut Vec<SchemaError>,
) {
    match content {
        Content::Simple(ty) => {
            if !child_names.is_empty() {
                errors.push(SchemaError {
                    path: path.into(),
                    message: "simple-content element has child elements".into(),
                });
            }
            if !ty.accepts(text) {
                errors.push(SchemaError {
                    path: path.into(),
                    message: format!("text {text:?} is not a valid {ty:?}"),
                });
            }
        }
        Content::Empty => {
            if !child_names.is_empty() || !text.trim().is_empty() {
                errors.push(SchemaError {
                    path: path.into(),
                    message: "element declared empty has content".into(),
                });
            }
        }
        Content::Sequence(particles) => {
            if !text.trim().is_empty() {
                errors.push(SchemaError {
                    path: path.into(),
                    message: "element-only content contains text".into(),
                });
            }
            validate_sequence(child_names, particles, path, errors);
        }
        Content::Choice(particles) => {
            if !text.trim().is_empty() {
                errors.push(SchemaError {
                    path: path.into(),
                    message: "element-only content contains text".into(),
                });
            }
            let matched: Vec<&Particle> =
                particles.iter().filter(|p| child_names.contains(&p.element)).collect();
            if matched.len() != 1 {
                errors.push(SchemaError {
                    path: path.into(),
                    message: format!(
                        "choice requires exactly one alternative, found {}",
                        matched.len()
                    ),
                });
            } else {
                let p = matched[0];
                let count = child_names.iter().filter(|n| **n == p.element).count() as u32;
                if count < p.min || !p.max.allows(count) {
                    errors.push(SchemaError {
                        path: path.into(),
                        message: format!(
                            "element <{}> occurs {count} times, outside its bounds",
                            p.element
                        ),
                    });
                }
            }
        }
        Content::Any => {}
    }
}

/// Greedy in-order matching of child names against sequence particles.
fn validate_sequence(
    children: &[String],
    particles: &[Particle],
    path: &str,
    errors: &mut Vec<SchemaError>,
) {
    let mut idx = 0usize;
    for p in particles {
        let mut count = 0u32;
        while idx < children.len() && children[idx] == p.element && p.max.allows(count + 1) {
            count += 1;
            idx += 1;
        }
        if count < p.min {
            errors.push(SchemaError {
                path: path.into(),
                message: format!("expected at least {} <{}>, found {count}", p.min, p.element),
            });
        }
    }
    if idx < children.len() {
        errors.push(SchemaError {
            path: path.into(),
            message: format!("unexpected element <{}> at position {}", children[idx], idx + 1),
        });
    }
}

/// One open element being validated by [`StreamValidator`].
struct Frame<'s> {
    decl: &'s ElementDecl,
    path: String,
    /// Local names of direct child elements, in document order.
    children: Vec<String>,
    /// Concatenated direct `Text`/`CData` content.
    text: String,
    /// Per-name child counts, for positional paths.
    seen: BTreeMap<String, usize>,
    /// Attribute errors, recorded when the start tag was observed.
    attr_errors: Vec<SchemaError>,
    /// Error blocks of completed children, in document order.
    child_errors: Vec<SchemaError>,
}

/// Streaming schema validation: feeds on borrowed [`XmlReader`] events
/// and keeps only an explicit stack of open elements — no [`Document`]
/// is ever built, so validation runs in memory proportional to nesting
/// depth, not document size.
///
/// Produces the *same* error list, in the same order, as
/// [`Schema::validate`] on the parsed tree: each frame buffers its
/// attribute errors and its children's error blocks, and flushes
/// `attributes ++ content ++ children` into its parent when the element
/// closes — exactly the order the recursive DOM walk emits.
///
/// ```
/// use soc_xml::schema::{Schema, ElementDecl, Content, DataType};
///
/// let schema = Schema::new("ping").element(ElementDecl {
///     name: "ping".into(),
///     content: Content::Simple(DataType::Int),
///     attributes: vec![],
/// });
/// assert!(schema.validate_stream("<ping>7</ping>").unwrap().is_empty());
/// assert_eq!(schema.validate_stream("<ping>x</ping>").unwrap().len(), 1);
/// ```
pub struct StreamValidator<'s> {
    schema: &'s Schema,
    frames: Vec<Frame<'s>>,
    /// Depth inside an undeclared subtree (a schema hole). While
    /// non-zero, events are counted for balance but not validated —
    /// mirroring the DOM walker, which does not recurse into
    /// undeclared elements.
    skip_depth: usize,
    /// Root-name mismatch halts validation after its single error,
    /// mirroring the DOM validator's early return.
    halted: bool,
    root_seen: bool,
    errors: Vec<SchemaError>,
}

impl<'s> StreamValidator<'s> {
    /// Start validating a document against `schema`.
    pub fn new(schema: &'s Schema) -> Self {
        StreamValidator {
            schema,
            frames: Vec::new(),
            skip_depth: 0,
            halted: false,
            root_seen: false,
            errors: Vec::new(),
        }
    }

    /// Feed one reader event. `attributes` is consulted only for
    /// `StartElement` events — pass [`XmlReader::attributes`] (the
    /// buffer is valid exactly until the next event is pulled).
    pub fn observe(&mut self, event: &XmlEvent<'_>, attributes: &[Attribute<'_>]) {
        if self.halted {
            return;
        }
        match event {
            XmlEvent::StartElement { name } => self.open(name.local, attributes),
            XmlEvent::EndElement { .. } => {
                if self.skip_depth > 0 {
                    self.skip_depth -= 1;
                } else if let Some(frame) = self.frames.pop() {
                    self.close(frame);
                }
            }
            XmlEvent::Text(t) => self.feed_text(t),
            XmlEvent::CData(t) => self.feed_text(t),
            _ => {}
        }
    }

    /// Finish the document and return every violation, in the order
    /// [`Schema::validate`] would report them.
    pub fn finish(self) -> Vec<SchemaError> {
        self.errors
    }

    fn feed_text(&mut self, t: &str) {
        if self.skip_depth == 0 {
            if let Some(frame) = self.frames.last_mut() {
                frame.text.push_str(t);
            }
        }
    }

    fn open(&mut self, local: &str, attributes: &[Attribute<'_>]) {
        if self.skip_depth > 0 {
            self.skip_depth += 1;
            return;
        }
        let path = match self.frames.last_mut() {
            Some(parent) => {
                parent.children.push(local.to_string());
                let n = parent.seen.entry(local.to_string()).or_insert(0);
                *n += 1;
                format!("{}/{local}[{n}]", parent.path)
            }
            None => {
                self.root_seen = true;
                if local != self.schema.root {
                    self.errors.push(SchemaError {
                        path: "/".into(),
                        message: format!(
                            "root element is <{local}>, expected <{}>",
                            self.schema.root
                        ),
                    });
                    self.halted = true;
                    return;
                }
                format!("/{local}")
            }
        };
        let Some(decl) = self.schema.decls.get(local) else {
            // Undeclared element: schema hole, skip the subtree.
            self.skip_depth = 1;
            return;
        };

        let mut attr_errors = Vec::new();
        for ad in &decl.attributes {
            let found =
                attributes.iter().find(|a| a.name.as_str() == ad.name || a.name.local == ad.name);
            match found {
                Some(a) if !ad.ty.accepts(&a.value) => attr_errors.push(SchemaError {
                    path: path.clone(),
                    message: format!(
                        "attribute {}={:?} is not a valid {:?}",
                        ad.name, &*a.value, ad.ty
                    ),
                }),
                Some(_) => {}
                None if ad.required => attr_errors.push(SchemaError {
                    path: path.clone(),
                    message: format!("missing required attribute {:?}", ad.name),
                }),
                None => {}
            }
        }
        for a in attributes {
            if a.name.is_xmlns() {
                continue;
            }
            if !decl.attributes.iter().any(|ad| ad.name == a.name.local) {
                attr_errors.push(SchemaError {
                    path: path.clone(),
                    message: format!("undeclared attribute {:?}", a.name.as_str()),
                });
            }
        }

        self.frames.push(Frame {
            decl,
            path,
            children: Vec::new(),
            text: String::new(),
            seen: BTreeMap::new(),
            attr_errors,
            child_errors: Vec::new(),
        });
    }

    /// Element closed: run its content checks and flush the frame's
    /// error block (`attributes ++ content ++ children`) to the parent
    /// — or to the output when the root closes.
    fn close(&mut self, frame: Frame<'s>) {
        let Frame { decl, path, children, text, attr_errors: mut errs, child_errors, .. } = frame;
        content_errors(&decl.content, &children, &text, &path, &mut errs);
        errs.extend(child_errors);
        match self.frames.last_mut() {
            Some(parent) => parent.child_errors.extend(errs),
            None => self.errors.extend(errs),
        }
    }
}

fn parse_particles(doc: &Document, parent: NodeId) -> Result<Vec<Particle>, String> {
    let mut out = Vec::new();
    for r in doc.find_children(parent, "ref") {
        let Some(name) = doc.attr(r, "name") else {
            return Err("ref missing name".into());
        };
        let min = doc.attr(r, "min").unwrap_or("1").parse::<u32>().map_err(|_| "bad min")?;
        let max = match doc.attr(r, "max").unwrap_or("1") {
            "unbounded" => Max::Unbounded,
            n => Max::Count(n.parse::<u32>().map_err(|_| "bad max")?),
        };
        out.push(Particle { element: name.to_string(), min, max });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_schema() -> Schema {
        Schema::new("order")
            .element(ElementDecl {
                name: "order".into(),
                content: Content::Sequence(vec![
                    Particle::one("customer"),
                    Particle::many1("item"),
                    Particle::optional("note"),
                ]),
                attributes: vec![AttrDecl { name: "id".into(), ty: DataType::Int, required: true }],
            })
            .element(ElementDecl {
                name: "customer".into(),
                content: Content::Simple(DataType::String),
                attributes: vec![],
            })
            .element(ElementDecl {
                name: "item".into(),
                content: Content::Simple(DataType::String),
                attributes: vec![AttrDecl {
                    name: "qty".into(),
                    ty: DataType::Int,
                    required: false,
                }],
            })
            .element(ElementDecl {
                name: "note".into(),
                content: Content::Simple(DataType::String),
                attributes: vec![],
            })
    }

    fn parse(s: &str) -> Document {
        Document::parse_str(s).unwrap()
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse(
            r#"<order id="7"><customer>ann</customer><item qty="2">book</item><item>pen</item></order>"#,
        );
        assert!(order_schema().check(&doc).is_ok());
    }

    #[test]
    fn wrong_root_rejected() {
        let doc = parse("<purchase/>");
        let errs = order_schema().validate(&doc);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("expected <order>"));
    }

    #[test]
    fn missing_required_attribute() {
        let doc = parse("<order><customer>a</customer><item>b</item></order>");
        let errs = order_schema().validate(&doc);
        assert!(errs.iter().any(|e| e.message.contains("missing required attribute")));
    }

    #[test]
    fn bad_attribute_type() {
        let doc = parse(r#"<order id="seven"><customer>a</customer><item>b</item></order>"#);
        let errs = order_schema().validate(&doc);
        assert!(errs.iter().any(|e| e.message.contains("not a valid Int")));
    }

    #[test]
    fn undeclared_attribute_rejected() {
        let doc = parse(r#"<order id="1" hacked="y"><customer>a</customer><item>b</item></order>"#);
        let errs = order_schema().validate(&doc);
        assert!(errs.iter().any(|e| e.message.contains("undeclared attribute")));
    }

    #[test]
    fn sequence_order_enforced() {
        let doc = parse(r#"<order id="1"><item>b</item><customer>a</customer></order>"#);
        let errs = order_schema().validate(&doc);
        assert!(!errs.is_empty());
    }

    #[test]
    fn occurrence_bounds_enforced() {
        let doc = parse(r#"<order id="1"><customer>a</customer></order>"#);
        let errs = order_schema().validate(&doc);
        assert!(errs.iter().any(|e| e.message.contains("at least 1 <item>")));
    }

    #[test]
    fn unexpected_trailing_element() {
        let doc = parse(r#"<order id="1"><customer>a</customer><item>b</item><bogus/></order>"#);
        let errs = order_schema().validate(&doc);
        assert!(errs.iter().any(|e| e.message.contains("unexpected element <bogus>")));
    }

    #[test]
    fn error_paths_are_positional() {
        let doc = parse(
            r#"<order id="1"><customer>a</customer><item qty="x">b</item><item qty="2">c</item></order>"#,
        );
        let errs = order_schema().validate(&doc);
        assert!(errs.iter().any(|e| e.path == "/order/item[1]"));
    }

    #[test]
    fn choice_content() {
        let schema = Schema::new("pay")
            .element(ElementDecl {
                name: "pay".into(),
                content: Content::Choice(vec![Particle::one("cash"), Particle::one("card")]),
                attributes: vec![],
            })
            .element(ElementDecl {
                name: "cash".into(),
                content: Content::Empty,
                attributes: vec![],
            })
            .element(ElementDecl {
                name: "card".into(),
                content: Content::Simple(DataType::Token),
                attributes: vec![],
            });
        assert!(schema.check(&parse("<pay><cash/></pay>")).is_ok());
        assert!(schema.check(&parse("<pay><card>visa-123</card></pay>")).is_ok());
        assert!(schema.check(&parse("<pay><cash/><card>v</card></pay>")).is_err());
        assert!(schema.check(&parse("<pay/>")).is_err());
    }

    #[test]
    fn datatype_lexing() {
        assert!(DataType::Int.accepts("-42"));
        assert!(!DataType::Int.accepts("4.2"));
        assert!(DataType::Decimal.accepts("4.25"));
        assert!(DataType::Decimal.accepts("-0.5"));
        assert!(!DataType::Decimal.accepts("4.2.5"));
        assert!(DataType::Boolean.accepts("true"));
        assert!(!DataType::Boolean.accepts("yes"));
        assert!(DataType::Date.accepts("2014-05-19"));
        assert!(!DataType::Date.accepts("2014-13-19"));
        assert!(!DataType::Date.accepts("14-05-19"));
        assert!(DataType::Token.accepts("urn:x"));
        assert!(!DataType::Token.accepts("two words"));
    }

    #[test]
    fn xml_schema_dialect_round_trip() {
        let schema = Schema::parse_xml(
            r#"<schema root="order">
                 <element name="order">
                   <sequence>
                     <ref name="customer"/>
                     <ref name="item" min="1" max="unbounded"/>
                   </sequence>
                   <attribute name="id" type="int" required="true"/>
                 </element>
                 <element name="customer" type="string"/>
                 <element name="item" type="string"/>
               </schema>"#,
        )
        .unwrap()
        .unwrap();
        let good = parse(r#"<order id="1"><customer>a</customer><item>b</item></order>"#);
        assert!(schema.check(&good).is_ok());
        let bad = parse(r#"<order id="1"><item>b</item></order>"#);
        assert!(schema.check(&bad).is_err());
    }

    #[test]
    fn empty_content_model() {
        let schema = Schema::new("ping").element(ElementDecl {
            name: "ping".into(),
            content: Content::Empty,
            attributes: vec![],
        });
        assert!(schema.check(&parse("<ping/>")).is_ok());
        assert!(schema.check(&parse("<ping>x</ping>")).is_err());
    }

    #[test]
    fn undeclared_children_are_schema_holes() {
        let schema = Schema::new("r").element(ElementDecl {
            name: "r".into(),
            content: Content::Any,
            attributes: vec![],
        });
        assert!(schema.check(&parse("<r><whatever x='1'>t</whatever></r>")).is_ok());
    }

    /// Every schema × every document in the module's corpus: the
    /// streaming validator must produce the *identical* error list
    /// (paths, messages, and order) as the DOM walk — including the
    /// cross products where the root doesn't even match.
    #[test]
    fn streaming_matches_dom_on_corpus() {
        let choice_schema = Schema::new("pay")
            .element(ElementDecl {
                name: "pay".into(),
                content: Content::Choice(vec![Particle::one("cash"), Particle::one("card")]),
                attributes: vec![],
            })
            .element(ElementDecl {
                name: "cash".into(),
                content: Content::Empty,
                attributes: vec![],
            })
            .element(ElementDecl {
                name: "card".into(),
                content: Content::Simple(DataType::Token),
                attributes: vec![],
            });
        let empty_schema = Schema::new("ping").element(ElementDecl {
            name: "ping".into(),
            content: Content::Empty,
            attributes: vec![],
        });
        let hole_schema = Schema::new("r").element(ElementDecl {
            name: "r".into(),
            content: Content::Any,
            attributes: vec![],
        });
        let schemas = [order_schema(), choice_schema, empty_schema, hole_schema];
        let docs = [
            r#"<order id="7"><customer>ann</customer><item qty="2">book</item><item>pen</item></order>"#,
            "<purchase/>",
            "<order><customer>a</customer><item>b</item></order>",
            r#"<order id="seven"><customer>a</customer><item>b</item></order>"#,
            r#"<order id="1" hacked="y"><customer>a</customer><item>b</item></order>"#,
            r#"<order id="1"><item>b</item><customer>a</customer></order>"#,
            r#"<order id="1"><customer>a</customer></order>"#,
            r#"<order id="1"><customer>a</customer><item>b</item><bogus/></order>"#,
            r#"<order id="1"><customer>a</customer><item qty="x">b</item><item qty="2">c</item></order>"#,
            "<pay><cash/></pay>",
            "<pay><card>visa-123</card></pay>",
            "<pay><cash/><card>v</card></pay>",
            "<pay/>",
            "<ping/>",
            "<ping>x</ping>",
            "<r><whatever x='1'>t</whatever></r>",
            // Mixed structure: comments, CDATA text, a deep hole with
            // declared-looking elements inside it, xmlns attributes.
            r#"<order id="2" xmlns:x="urn:x"><!-- c --><customer><![CDATA[ann]]></customer><item>b</item><blob><item qty="zzz">ignored</item></blob></order>"#,
            r#"<order id="3"><customer>a</customer><item qty="1">b</item><note>n</note></order>"#,
        ];
        for schema in &schemas {
            for doc in docs {
                let dom_errs = schema.validate(&parse(doc));
                let stream_errs = schema.validate_stream(doc).unwrap();
                assert_eq!(dom_errs, stream_errs, "root {:?} doc {doc}", schema.root());
            }
        }
    }

    #[test]
    fn streaming_reports_positional_paths() {
        let errs = order_schema()
            .validate_stream(
                r#"<order id="1"><customer>a</customer><item qty="x">b</item><item qty="2">c</item></order>"#,
            )
            .unwrap();
        assert!(errs.iter().any(|e| e.path == "/order/item[1]"));
    }

    #[test]
    fn streaming_surfaces_parse_errors() {
        assert!(order_schema().validate_stream("<order id='1'><item></order>").is_err());
    }
}
