//! Server-side session state, keyed by an opaque HttpOnly cookie.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use soc_http::cookies::{self, Cookie};
use soc_http::{Request, Response};
use soc_json::Value;

/// Name of the session cookie.
pub const SESSION_COOKIE: &str = "SOCSESSION";

struct Session {
    attributes: HashMap<String, Value>,
    expires_at: u64,
}

/// The session store. Time is a logical tick the host application
/// advances (one per request is typical), keeping expiry deterministic.
pub struct SessionStore {
    sessions: RwLock<HashMap<String, Session>>,
    ttl: u64,
    counter: AtomicU64,
    secret: u64,
}

impl SessionStore {
    /// Store with a session time-to-live in ticks.
    pub fn new(ttl: u64, secret: u64) -> Self {
        SessionStore {
            sessions: RwLock::new(HashMap::new()),
            ttl,
            counter: AtomicU64::new(1),
            secret,
        }
    }

    fn new_id(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Opaque, unguessable-enough id: counter mixed with the secret.
        let mut h = self.secret ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        format!("{h:016x}{n:08x}")
    }

    /// Create a session and return its id.
    pub fn create(&self, now: u64) -> String {
        let id = self.new_id();
        self.sessions
            .write()
            .insert(id.clone(), Session { attributes: HashMap::new(), expires_at: now + self.ttl });
        id
    }

    /// Is the session live at `now`? Touching refreshes the TTL.
    pub fn touch(&self, id: &str, now: u64) -> bool {
        let mut sessions = self.sessions.write();
        match sessions.get_mut(id) {
            Some(s) if s.expires_at > now => {
                s.expires_at = now + self.ttl;
                true
            }
            _ => false,
        }
    }

    /// Read an attribute.
    pub fn get(&self, id: &str, key: &str, now: u64) -> Option<Value> {
        let sessions = self.sessions.read();
        let s = sessions.get(id)?;
        if s.expires_at <= now {
            return None;
        }
        s.attributes.get(key).cloned()
    }

    /// Write an attribute; fails on a dead session.
    pub fn set(&self, id: &str, key: &str, value: impl Into<Value>, now: u64) -> bool {
        let mut sessions = self.sessions.write();
        match sessions.get_mut(id) {
            Some(s) if s.expires_at > now => {
                s.attributes.insert(key.to_string(), value.into());
                true
            }
            _ => false,
        }
    }

    /// Destroy a session (logout).
    pub fn destroy(&self, id: &str) -> bool {
        self.sessions.write().remove(id).is_some()
    }

    /// Drop expired sessions, returning how many died.
    pub fn sweep(&self, now: u64) -> usize {
        let mut sessions = self.sessions.write();
        let before = sessions.len();
        sessions.retain(|_, s| s.expires_at > now);
        before - sessions.len()
    }

    /// Live session count (including not-yet-swept expired ones).
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// No sessions at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The session id presented by a request, if any (does not check
    /// liveness — use [`SessionStore::touch`]).
    pub fn id_from_request(req: &Request) -> Option<String> {
        cookies::request_cookie(req, SESSION_COOKIE)
    }

    /// Attach a session cookie to a response.
    pub fn attach(resp: Response, id: &str) -> Response {
        cookies::set_cookie(resp, &Cookie::new(SESSION_COOKIE, id).http_only())
    }

    /// Attach a cookie-removal header (logout).
    pub fn detach(resp: Response) -> Response {
        resp.with_header("Set-Cookie", &Cookie::removal(SESSION_COOKIE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SessionStore {
        SessionStore::new(100, 0x5EC)
    }

    #[test]
    fn create_set_get() {
        let s = store();
        let id = s.create(0);
        assert!(s.set(&id, "user", "ann", 1));
        assert_eq!(
            s.get(&id, "user", 2).and_then(|v| v.as_str().map(String::from)),
            Some("ann".into())
        );
        assert_eq!(s.get(&id, "missing", 2), None);
    }

    #[test]
    fn sessions_expire_and_touch_refreshes() {
        let s = store();
        let id = s.create(0);
        assert!(s.touch(&id, 99));
        // touch at 99 pushed expiry to 199.
        assert!(s.touch(&id, 150));
        assert!(!s.touch(&id, 300));
        assert_eq!(s.get(&id, "x", 300), None);
    }

    #[test]
    fn destroy_and_sweep() {
        let s = store();
        let a = s.create(0);
        let _b = s.create(0);
        assert!(s.destroy(&a));
        assert!(!s.destroy(&a));
        assert_eq!(s.len(), 1);
        assert_eq!(s.sweep(1000), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn ids_are_unique_and_opaque() {
        let s = store();
        let ids: std::collections::HashSet<String> = (0..100).map(|_| s.create(0)).collect();
        assert_eq!(ids.len(), 100);
        assert!(ids.iter().all(|id| id.len() == 24));
    }

    #[test]
    fn cookie_round_trip() {
        let s = store();
        let id = s.create(0);
        let resp = SessionStore::attach(Response::text("ok"), &id);
        let set = resp.headers.get("Set-Cookie").unwrap();
        assert!(set.contains("HttpOnly"));
        // Simulate the browser echoing it back.
        let req = Request::get("/").with_header("Cookie", &format!("{SESSION_COOKIE}={id}"));
        assert_eq!(SessionStore::id_from_request(&req).as_deref(), Some(id.as_str()));
    }

    #[test]
    fn set_on_dead_session_fails() {
        let s = store();
        let id = s.create(0);
        s.destroy(&id);
        assert!(!s.set(&id, "k", 1, 1));
    }
}
