//! Per-upstream circuit breakers.
//!
//! A breaker watches the recent outcomes of one upstream replica and
//! trips (opens) when the failure rate over a sliding window crosses a
//! threshold. While open, requests are refused instantly — no point
//! queueing onto a dead replica, and the break gives it room to
//! recover. After a cool-down the breaker admits a few trial probes
//! (half-open); enough consecutive successes close it again, any
//! failure re-opens it.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Tuning knobs for one breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Failure rate over the window at which the breaker opens
    /// (`0.5` = half the recent requests failed).
    pub failure_threshold: f64,
    /// Sliding-window length in requests.
    pub window: usize,
    /// Minimum observations before the threshold is consulted, so one
    /// early failure cannot trip a cold breaker.
    pub min_samples: usize,
    /// How long an open breaker waits before letting probes through.
    pub cool_down: Duration,
    /// Trial requests admitted while half-open; the same number of
    /// consecutive successes closes the breaker.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 0.5,
            window: 10,
            min_samples: 5,
            cool_down: Duration::from_secs(1),
            half_open_probes: 2,
        }
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes are being watched.
    Closed,
    /// Tripped: all traffic refused until the cool-down elapses.
    Open,
    /// Cooling down finished: a bounded number of probes may pass.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label for stats output.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct Inner {
    state: BreakerState,
    outcomes: VecDeque<bool>,
    opened_at: Instant,
    probes_in_flight: usize,
    probe_successes: usize,
}

/// The breaker itself. Thread-safe; one per upstream endpoint.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                outcomes: VecDeque::new(),
                opened_at: Instant::now(),
                probes_in_flight: 0,
                probe_successes: 0,
            }),
        }
    }

    /// May a request go to this upstream right now? A half-open breaker
    /// admits at most `half_open_probes` concurrent trials.
    pub fn try_pass(&self) -> bool {
        let mut g = self.inner.lock();
        self.tick(&mut g);
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if g.probes_in_flight < self.config.half_open_probes {
                    g.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Give back a slot taken by [`CircuitBreaker::try_pass`] without
    /// sending a request — the load balancer admitted this upstream as
    /// a candidate but picked another. Without the release, unpicked
    /// half-open candidates would leak probe slots and wedge the
    /// breaker half-open forever.
    pub fn release_pass(&self) {
        let mut g = self.inner.lock();
        if g.state == BreakerState::HalfOpen {
            g.probes_in_flight = g.probes_in_flight.saturating_sub(1);
        }
    }

    /// Report the outcome of a request previously admitted by
    /// [`CircuitBreaker::try_pass`].
    pub fn on_result(&self, ok: bool) {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => {
                g.outcomes.push_back(ok);
                while g.outcomes.len() > self.config.window {
                    g.outcomes.pop_front();
                }
                let samples = g.outcomes.len();
                if samples >= self.config.min_samples {
                    let failures = g.outcomes.iter().filter(|o| !**o).count();
                    if failures as f64 / samples as f64 >= self.config.failure_threshold {
                        g.state = BreakerState::Open;
                        g.opened_at = Instant::now();
                        g.outcomes.clear();
                    }
                }
            }
            BreakerState::HalfOpen => {
                g.probes_in_flight = g.probes_in_flight.saturating_sub(1);
                if ok {
                    g.probe_successes += 1;
                    if g.probe_successes >= self.config.half_open_probes {
                        g.state = BreakerState::Closed;
                        g.outcomes.clear();
                    }
                } else {
                    g.state = BreakerState::Open;
                    g.opened_at = Instant::now();
                }
            }
            // A straggler from before the breaker opened; its outcome
            // is stale news.
            BreakerState::Open => {}
        }
    }

    /// Current state, with the open→half-open transition applied if the
    /// cool-down has elapsed.
    pub fn state(&self) -> BreakerState {
        let mut g = self.inner.lock();
        self.tick(&mut g);
        g.state
    }

    fn tick(&self, g: &mut Inner) {
        if g.state == BreakerState::Open && g.opened_at.elapsed() >= self.config.cool_down {
            g.state = BreakerState::HalfOpen;
            g.probes_in_flight = 0;
            g.probe_successes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(cool_down_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 0.5,
            window: 4,
            min_samples: 4,
            cool_down: Duration::from_millis(cool_down_ms),
            half_open_probes: 2,
        }
    }

    #[test]
    fn opens_at_the_failure_threshold() {
        let b = CircuitBreaker::new(fast(1_000));
        for ok in [true, false, true, false] {
            assert!(b.try_pass());
            b.on_result(ok);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_pass());
    }

    #[test]
    fn too_few_samples_never_trip() {
        let b = CircuitBreaker::new(fast(1_000));
        b.on_result(false);
        b.on_result(false);
        b.on_result(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_bounded_probes_then_closes() {
        let b = CircuitBreaker::new(fast(20));
        for _ in 0..4 {
            b.on_result(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_pass());
        assert!(b.try_pass());
        assert!(!b.try_pass(), "probe quota must be bounded");
        b.on_result(true);
        b.on_result(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn release_pass_frees_an_unused_probe_slot() {
        let b = CircuitBreaker::new(fast(20));
        for _ in 0..4 {
            b.on_result(false);
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.try_pass());
        assert!(b.try_pass());
        assert!(!b.try_pass());
        // One candidate was admitted but not picked: releasing its slot
        // lets the next probe through.
        b.release_pass();
        assert!(b.try_pass());
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(fast(20));
        for _ in 0..4 {
            b.on_result(false);
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.try_pass());
        b.on_result(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_pass());
    }

    #[test]
    fn window_slides_so_stale_history_does_not_count() {
        // Discriminates a sliding window from a cumulative rate: after
        // ten successes, three fresh failures are 3/13 cumulatively
        // (far under threshold) but 3/4 of the window — and must trip.
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0.6,
            window: 4,
            min_samples: 2,
            cool_down: Duration::from_secs(1),
            half_open_probes: 2,
        });
        for _ in 0..10 {
            b.on_result(true);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            b.on_result(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }
}
