/root/repo/target/debug/deps/tcp_stack-383f3f85244c5c7b.d: tests/tcp_stack.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_stack-383f3f85244c5c7b.rmeta: tests/tcp_stack.rs Cargo.toml

tests/tcp_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
