//! The messaging-buffer service: named bounded queues over
//! [`soc_parallel::sync::BoundedBuffer`] — the producer/consumer
//! primitive from unit 2, promoted to a service.
//!
//! [`DurableMessageBuffer`] is the same contract journalled to a
//! write-ahead log: every accepted send, consumed receive, and close is
//! a logged event, so a crashed broker reopens with exactly the
//! messages that were enqueued-but-not-consumed. The space check (send)
//! and the head read (receive) go through
//! [`soc_store::Durable::execute_when`] so the guard, the journal
//! write, and the state change are one atomic step.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use soc_json::Value;
use soc_parallel::sync::{BoundedBuffer, BufferError};
use soc_store::wal::{Lsn, WalConfig};
use soc_store::{Durable, StateMachine, StoreResult};

/// The service: a namespace of independently bounded queues.
pub struct MessageBufferService {
    queues: RwLock<HashMap<String, Arc<BoundedBuffer<String>>>>,
    default_capacity: usize,
}

impl MessageBufferService {
    /// Service whose queues hold `default_capacity` messages.
    pub fn new(default_capacity: usize) -> Self {
        MessageBufferService {
            queues: RwLock::new(HashMap::new()),
            default_capacity: default_capacity.max(1),
        }
    }

    fn queue(&self, name: &str) -> Arc<BoundedBuffer<String>> {
        if let Some(q) = self.queues.read().get(name) {
            return q.clone();
        }
        let mut queues = self.queues.write();
        queues
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(BoundedBuffer::new(self.default_capacity)))
            .clone()
    }

    /// Enqueue, waiting up to `timeout` for space. Returns `false` on
    /// timeout or a closed queue.
    pub fn send(&self, queue: &str, message: &str, timeout: Duration) -> bool {
        match self.queue(queue).put_timeout(message.to_string(), timeout) {
            Ok(()) => true,
            Err(BufferError::Closed(_) | BufferError::Timeout(_)) => false,
        }
    }

    /// Non-blocking receive.
    pub fn try_receive(&self, queue: &str) -> Option<String> {
        self.queue(queue).try_take()
    }

    /// Blocking receive with a timeout. `Ok(None)` means the queue was
    /// closed and drained; `Err(())` means timeout (the only failure
    /// mode, so the unit error is deliberate).
    #[allow(clippy::result_unit_err)]
    pub fn receive(&self, queue: &str, timeout: Duration) -> Result<Option<String>, ()> {
        self.queue(queue).take_timeout(timeout)
    }

    /// Messages waiting in a queue.
    pub fn depth(&self, queue: &str) -> usize {
        self.queues.read().get(queue).map(|q| q.len()).unwrap_or(0)
    }

    /// Close a queue: producers fail, consumers drain.
    pub fn close(&self, queue: &str) {
        if let Some(q) = self.queues.read().get(queue) {
            q.close();
        }
    }

    /// Names of all queues (sorted).
    pub fn queue_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.queues.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The journalled queue state: FIFO message lists plus a closed flag,
/// all mutations arriving as logged events.
#[derive(Default)]
pub struct BufferMachine {
    queues: HashMap<String, (VecDeque<String>, bool)>,
    capacity: usize,
}

impl BufferMachine {
    fn new(capacity: usize) -> Self {
        BufferMachine { queues: HashMap::new(), capacity: capacity.max(1) }
    }

    fn send_event(queue: &str, message: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "send");
        ev.set("queue", queue);
        ev.set("msg", message);
        ev.to_compact().into_bytes()
    }

    fn recv_event(queue: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "recv");
        ev.set("queue", queue);
        ev.to_compact().into_bytes()
    }

    fn close_event(queue: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "close");
        ev.set("queue", queue);
        ev.to_compact().into_bytes()
    }
}

impl StateMachine for BufferMachine {
    fn apply(&mut self, _lsn: Lsn, command: &[u8]) {
        let Ok(text) = std::str::from_utf8(command) else { return };
        let Ok(ev) = Value::parse(text) else { return };
        let queue = ev.get("queue").and_then(Value::as_str).unwrap_or_default().to_string();
        match ev.get("ev").and_then(Value::as_str) {
            Some("send") => {
                let msg = ev.get("msg").and_then(Value::as_str).unwrap_or_default().to_string();
                self.queues.entry(queue).or_default().0.push_back(msg);
            }
            Some("recv") => {
                if let Some((q, _)) = self.queues.get_mut(&queue) {
                    q.pop_front();
                }
            }
            Some("close") => {
                self.queues.entry(queue).or_default().1 = true;
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut names: Vec<&String> = self.queues.keys().collect();
        names.sort();
        let queues: Vec<Value> = names
            .into_iter()
            .map(|name| {
                let (msgs, closed) = &self.queues[name];
                let items: Vec<Value> = msgs.iter().map(|m| Value::from(m.as_str())).collect();
                let mut q = Value::object();
                q.set("name", name.as_str());
                q.set("messages", Value::Array(items));
                q.set("closed", *closed);
                q
            })
            .collect();
        let mut snap = Value::object();
        snap.set("queues", Value::Array(queues));
        snap.set("capacity", self.capacity as i64);
        snap.to_compact().into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
        let snap = Value::parse(text).map_err(|e| e.to_string())?;
        self.queues.clear();
        self.capacity = (snap.get("capacity").and_then(Value::as_i64).unwrap_or(1) as usize).max(1);
        for q in snap.get("queues").and_then(Value::as_array).ok_or("missing queues")? {
            let name =
                q.get("name").and_then(Value::as_str).ok_or("queue missing name")?.to_string();
            let msgs: VecDeque<String> = q
                .get("messages")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect();
            let closed = matches!(q.get("closed"), Some(Value::Bool(true)));
            self.queues.insert(name, (msgs, closed));
        }
        Ok(())
    }
}

/// A [`MessageBufferService`]-shaped broker whose queues survive a
/// crash: enqueued-but-unconsumed messages are replayed from the log on
/// reopen. Blocking waits poll the durable state (no condvar spans the
/// journal), so timeouts are approximate to a few milliseconds.
pub struct DurableMessageBuffer {
    store: Durable<BufferMachine>,
}

const POLL: Duration = Duration::from_millis(2);

impl DurableMessageBuffer {
    /// Open (or recover) a durable buffer in `dir`. `default_capacity`
    /// only seeds a fresh journal; a recovered one keeps its own.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        cfg: WalConfig,
        default_capacity: usize,
    ) -> StoreResult<Self> {
        let store = Durable::open(dir, cfg, BufferMachine::new(default_capacity))?;
        Ok(DurableMessageBuffer { store })
    }

    /// Enqueue, waiting up to `timeout` for space. Returns `false` on
    /// timeout or a closed queue. The accepted message is durable
    /// before this returns `true`.
    pub fn send(&self, queue: &str, message: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let accepted = self
                .store
                .execute_when(|m| {
                    let (len, closed) =
                        m.queues.get(queue).map(|(q, c)| (q.len(), *c)).unwrap_or((0, false));
                    if closed || len >= m.capacity {
                        return None;
                    }
                    Some((BufferMachine::send_event(queue, message), ()))
                })
                .expect("message buffer lost durability");
            if accepted.is_some() {
                return true;
            }
            // Refused: closed queues fail immediately, full ones wait.
            let closed =
                self.store.query(|m| m.queues.get(queue).map(|(_, c)| *c).unwrap_or(false));
            if closed || Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(POLL);
        }
    }

    /// Non-blocking receive. A returned message is consumed durably —
    /// it will not reappear after a crash.
    pub fn try_receive(&self, queue: &str) -> Option<String> {
        self.store
            .execute_when(|m| {
                let head = m.queues.get(queue)?.0.front()?.clone();
                Some((BufferMachine::recv_event(queue), head))
            })
            .expect("message buffer lost durability")
            .map(|(_, msg)| msg)
    }

    /// Blocking receive with a timeout. `Ok(None)` means closed and
    /// drained; `Err(())` means timeout.
    #[allow(clippy::result_unit_err)]
    pub fn receive(&self, queue: &str, timeout: Duration) -> Result<Option<String>, ()> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.try_receive(queue) {
                return Ok(Some(msg));
            }
            let closed = self
                .store
                .query(|m| m.queues.get(queue).map(|(q, c)| q.is_empty() && *c).unwrap_or(false));
            if closed {
                return Ok(None);
            }
            if Instant::now() >= deadline {
                return Err(());
            }
            std::thread::sleep(POLL);
        }
    }

    /// Messages waiting in a queue.
    pub fn depth(&self, queue: &str) -> usize {
        self.store.query(|m| m.queues.get(queue).map(|(q, _)| q.len()).unwrap_or(0))
    }

    /// Close a queue durably: producers fail, consumers drain.
    pub fn close(&self, queue: &str) {
        self.store
            .execute_when(|m| {
                let already = m.queues.get(queue).map(|(_, c)| *c).unwrap_or(false);
                if already {
                    None
                } else {
                    Some((BufferMachine::close_event(queue), ()))
                }
            })
            .expect("message buffer lost durability");
    }

    /// Names of all queues (sorted).
    pub fn queue_names(&self) -> Vec<String> {
        self.store.query(|m| {
            let mut names: Vec<String> = m.queues.keys().cloned().collect();
            names.sort();
            names
        })
    }

    /// Snapshot-then-truncate the journal.
    pub fn compact(&self) -> StoreResult<Lsn> {
        self.store.compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(100);

    #[test]
    fn send_receive_fifo() {
        let svc = MessageBufferService::new(8);
        assert!(svc.send("orders", "a", T));
        assert!(svc.send("orders", "b", T));
        assert_eq!(svc.depth("orders"), 2);
        assert_eq!(svc.receive("orders", T).unwrap().as_deref(), Some("a"));
        assert_eq!(svc.try_receive("orders").as_deref(), Some("b"));
        assert_eq!(svc.try_receive("orders"), None);
    }

    #[test]
    fn queues_are_independent() {
        let svc = MessageBufferService::new(8);
        svc.send("a", "1", T);
        svc.send("b", "2", T);
        assert_eq!(svc.depth("a"), 1);
        assert_eq!(svc.depth("b"), 1);
        assert_eq!(svc.queue_names(), vec!["a", "b"]);
    }

    #[test]
    fn capacity_bounds_producers() {
        let svc = MessageBufferService::new(1);
        assert!(svc.send("q", "1", T));
        // Queue full: short-timeout send fails.
        assert!(!svc.send("q", "2", Duration::from_millis(10)));
    }

    #[test]
    fn close_semantics() {
        let svc = MessageBufferService::new(4);
        svc.send("q", "last", T);
        svc.close("q");
        assert!(!svc.send("q", "after", T));
        assert_eq!(svc.receive("q", T).unwrap().as_deref(), Some("last"));
        assert_eq!(svc.receive("q", T).unwrap(), None);
    }

    #[test]
    fn receive_timeout() {
        let svc = MessageBufferService::new(4);
        assert_eq!(svc.receive("empty", Duration::from_millis(10)), Err(()));
    }

    #[test]
    fn cross_thread_transfer() {
        let svc = Arc::new(MessageBufferService::new(2));
        let svc2 = svc.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..20 {
                assert!(svc2.send("work", &format!("job-{i}"), Duration::from_secs(5)));
            }
            svc2.close("work");
        });
        let mut got = Vec::new();
        while let Ok(Some(msg)) = svc.receive("work", Duration::from_secs(5)) {
            got.push(msg);
        }
        producer.join().unwrap();
        assert_eq!(got.len(), 20);
        assert_eq!(got[0], "job-0");
        assert_eq!(got[19], "job-19");
    }

    #[test]
    fn durable_buffer_survives_crash_without_loss_or_duplication() {
        let tmp = soc_store::TempDir::new("buf-durable");
        {
            let buf = DurableMessageBuffer::open(tmp.path(), WalConfig::default(), 8).unwrap();
            assert!(buf.send("orders", "a", T));
            assert!(buf.send("orders", "b", T));
            assert!(buf.send("orders", "c", T));
            // A consumed message is gone durably.
            assert_eq!(buf.try_receive("orders").as_deref(), Some("a"));
            buf.close("audit");
            // Crash: drop without shutdown.
        }
        let buf = DurableMessageBuffer::open(tmp.path(), WalConfig::default(), 8).unwrap();
        assert_eq!(buf.depth("orders"), 2);
        assert_eq!(buf.try_receive("orders").as_deref(), Some("b"));
        assert_eq!(buf.try_receive("orders").as_deref(), Some("c"));
        assert_eq!(buf.try_receive("orders"), None);
        // The closed flag replays too.
        assert!(!buf.send("audit", "late", T));
        assert_eq!(buf.receive("audit", T).unwrap(), None);
    }

    #[test]
    fn durable_buffer_capacity_and_close() {
        let tmp = soc_store::TempDir::new("buf-cap");
        let buf = DurableMessageBuffer::open(tmp.path(), WalConfig::default(), 1).unwrap();
        assert!(buf.send("q", "1", T));
        assert!(!buf.send("q", "2", Duration::from_millis(10)), "full queue must time out");
        assert_eq!(buf.receive("q", T).unwrap().as_deref(), Some("1"));
        assert!(buf.send("q", "2", T), "space frees after receive");
        buf.close("q");
        assert!(!buf.send("q", "3", T));
        assert_eq!(buf.receive("q", T).unwrap().as_deref(), Some("2"));
        assert_eq!(buf.receive("q", T).unwrap(), None, "closed and drained");
    }

    #[test]
    fn durable_buffer_compaction_keeps_pending_messages() {
        let tmp = soc_store::TempDir::new("buf-compact");
        {
            let buf = DurableMessageBuffer::open(tmp.path(), WalConfig::default(), 8).unwrap();
            for i in 0..5 {
                assert!(buf.send("jobs", &format!("j{i}"), T));
            }
            assert_eq!(buf.try_receive("jobs").as_deref(), Some("j0"));
            buf.compact().unwrap();
            assert!(buf.send("jobs", "j5", T));
        }
        let buf = DurableMessageBuffer::open(tmp.path(), WalConfig::default(), 8).unwrap();
        assert_eq!(buf.depth("jobs"), 5);
        assert_eq!(buf.try_receive("jobs").as_deref(), Some("j1"));
    }

    #[test]
    fn durable_buffer_cross_thread_transfer() {
        let tmp = soc_store::TempDir::new("buf-threads");
        let buf =
            Arc::new(DurableMessageBuffer::open(tmp.path(), WalConfig::default(), 2).unwrap());
        let buf2 = buf.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..20 {
                assert!(buf2.send("work", &format!("job-{i}"), Duration::from_secs(5)));
            }
            buf2.close("work");
        });
        let mut got = Vec::new();
        while let Ok(Some(msg)) = buf.receive("work", Duration::from_secs(5)) {
            got.push(msg);
        }
        producer.join().unwrap();
        assert_eq!(got.len(), 20);
        assert_eq!(got[0], "job-0");
        assert_eq!(got[19], "job-19");
    }
}
