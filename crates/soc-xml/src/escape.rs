//! Escaping and entity expansion for text and attribute content.

use crate::error::{Position, XmlError, XmlResult};

/// Escape `<`, `>`, and `&` for element text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape text for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expand the five predefined entities plus decimal/hex character
/// references in `s`. `pos` is used only for error reporting.
pub fn unescape(s: &str, pos: Position) -> XmlResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let Some(end) = rest.find(';') else {
            return Err(XmlError::BadEntity { pos, entity: rest.chars().take(8).collect() });
        };
        let name = &rest[..end];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) =
                    name.strip_prefix("#x").or_else(|| name.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => {
                        return Err(XmlError::BadEntity { pos, entity: name.to_string() });
                    }
                }
            }
        }
        // Skip the entity body and the ';'.
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Position {
        Position::start()
    }

    #[test]
    fn escape_then_unescape_text_round_trips() {
        let original = "a < b && c > d";
        let escaped = escape_text(original);
        assert_eq!(escaped, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&escaped, p()).unwrap(), original);
    }

    #[test]
    fn escape_attr_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
        assert_eq!(unescape("say &quot;hi&quot;&#10;", p()).unwrap(), "say \"hi\"\n");
    }

    #[test]
    fn numeric_references_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", p()).unwrap(), "ABc");
    }

    #[test]
    fn unicode_references() {
        assert_eq!(unescape("&#x4E2D;&#x6587;", p()).unwrap(), "中文");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(matches!(unescape("&nbsp;", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        assert!(matches!(unescape("a&ltb", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn surrogate_char_reference_is_rejected() {
        assert!(matches!(unescape("&#xD800;", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn plain_string_is_untouched_fast_path() {
        assert_eq!(unescape("hello world", p()).unwrap(), "hello world");
    }
}
