//! Workflow-based integration (CSE446): the mortgage approval process
//! composed three ways over the same services — as a VPL-style dataflow
//! graph, as a BPEL-style structured process, and via the FSM module —
//! "generating executable directly from the flowchart".
//!
//! The dataflow variant calls the mortgage service through the
//! QoS-aware gateway (one registered replica is down; retries mask it)
//! and runs under a trace root, so the whole composition prints as one
//! span tree afterwards. A final saga variant lets a downstream step
//! fail terminally and compensates the application that was already
//! recorded.
//!
//! ```sh
//! cargo run --example workflow_mortgage
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use soc::gateway::{Gateway, GatewayConfig};
use soc::http::mem::Transport;
use soc::http::{MemNetwork, Request, Response, Status};
use soc::json::{json, Value};
use soc::workflow::activity::{Compute, Const, If, Merge, ServiceCall};
use soc::workflow::bpel::{int_var, Process, Scope, Step};
use soc::workflow::graph::WorkflowGraph;
use soc::workflow::saga::{ResiliencePolicy, SagaConfig, WorkflowOutcome};

fn main() {
    let net = MemNetwork::new();
    soc::services::bindings::host_all(&net, 11);
    // A second "replica" that is down — the paper's flaky public
    // service. Activities reach the mortgage service through the
    // gateway, which retries onto the live replica.
    net.host("services.down", |_req: Request| {
        Response::error(Status::SERVICE_UNAVAILABLE, "replica down")
    });
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let gw = Gateway::new(
        transport.clone(),
        // The apply call is a POST; the mortgage service is a pure
        // function of its input, so replaying it is safe here.
        GatewayConfig { retry_non_idempotent: true, ..GatewayConfig::default() },
    );
    gw.register("mortgage", &["mem://services.down", "mem://services.asu"]);

    // A deterministic applicant who qualifies (the score service is a
    // pure function of the SSN, so we can search for one).
    let ssn = (0..)
        .map(|i| format!("{i:09}"))
        .find(|s| soc::services::mortgage::CreditScoreService::score(s) >= 700)
        .unwrap();

    // ---- 1. VPL-style dataflow graph ----------------------------------
    // const(application) ──> mortgage service ──> If(approved) ──> Merge
    let mut graph = WorkflowGraph::new();
    let application = graph.add(
        "application",
        Const::new(json!({
            "name": "Ann", "ssn": (ssn.clone()),
            "annual_income": 120000, "loan_amount": 300000, "term_years": 30
        })),
    );
    let apply = graph.add("apply", ServiceCall::post_via_gateway(gw, "mortgage", "mortgage/apply"));
    let is_approved = graph.add(
        "is_approved",
        Compute::new(&["x"], |p| {
            Ok(Value::Bool(p["x"].get("decision").and_then(Value::as_str) == Some("approved")))
        }),
    );
    let passthrough = graph.add("passthrough", Compute::new(&["x"], |p| Ok(p["x"].clone())));
    let iff = graph.add("route", If::truthy());
    let congratulate = graph.add(
        "congratulate",
        Compute::new(&["x"], |p| {
            Ok(Value::from(format!(
                "APPROVED at {} bps, ${}/month",
                p["x"].get("rate_bps").and_then(Value::as_i64).unwrap_or(0),
                p["x"].get("monthly_payment").and_then(Value::as_i64).unwrap_or(0)
            )))
        }),
    );
    let console = graph.add(
        "letter",
        Compute::new(&["x"], |p| {
            Ok(match p["x"].as_str() {
                Some(s) => Value::from(s.to_string()),
                None => Value::from(format!(
                    "DECLINED: {}",
                    p["x"].get("reasons").map(|r| r.to_compact()).unwrap_or_default()
                )),
            })
        }),
    );
    let merge = graph.add_any("merge", Merge);

    graph.connect(application, "out", apply, "body").unwrap();
    graph.connect(apply, "out", is_approved, "x").unwrap();
    graph.connect(apply, "out", passthrough, "x").unwrap();
    graph.connect(is_approved, "out", iff, "cond").unwrap();
    graph.connect(passthrough, "out", iff, "value").unwrap();
    graph.connect(iff, "then", congratulate, "x").unwrap();
    graph.connect(iff, "else", merge, "b").unwrap();
    graph.connect(congratulate, "out", merge, "a").unwrap();
    graph.connect(merge, "out", console, "x").unwrap();

    let root = soc::observe::root_span("mortgage.dataflow", soc::observe::SpanKind::Internal);
    let trace_id = root.context().trace_id;
    let out = {
        let _active = root.activate();
        graph.run(&HashMap::new()).expect("workflow runs")
    };
    drop(root);
    println!("dataflow workflow  -> {}", out["letter.out"]);

    // The run above is one trace: workflow.run → each activity firing →
    // the gateway dispatch with one span per attempt (the first hits
    // the dead replica, the retry lands).
    let tree = soc::observe::trace_json(trace_id).expect("trace retained");
    println!(
        "trace {trace_id}     -> {} spans",
        tree.pointer("/span_count").and_then(Value::as_i64).unwrap_or(0)
    );
    let spans = tree.pointer("/spans").and_then(Value::as_array).unwrap();
    print_tree(spans, None, 1);

    // ---- 2. BPEL-style structured process ------------------------------
    // Sweep loan sizes until the service declines (While + Invoke).
    let ssn2 = ssn.clone();
    let process = Process::new(
        Step::Sequence(vec![
            Step::set("loan", 100_000),
            Step::set("approved_max", 0),
            Step::While {
                cond: Arc::new(|s: &soc::workflow::bpel::Scope| {
                    s.get("loan").and_then(Value::as_i64).unwrap_or(0) <= 800_000
                        && s.get("declined").is_none()
                }),
                body: Box::new(Step::Sequence(vec![
                    Step::assign("request", move |s| {
                        Ok(json!({
                            "name": "Ann", "ssn": (ssn2.clone()),
                            "annual_income": 120000,
                            "loan_amount": (int_var(s, "loan")?),
                            "term_years": 30
                        }))
                    }),
                    Step::Invoke {
                        endpoint: "mem://services.asu/mortgage/apply".into(),
                        input_var: Some("request".into()),
                        output_var: "decision".into(),
                    },
                    Step::assign("approved_max", |s| {
                        let approved = s["decision"].get("decision").and_then(Value::as_str)
                            == Some("approved");
                        if approved {
                            Ok(s["loan"].clone())
                        } else {
                            Ok(s["approved_max"].clone())
                        }
                    }),
                    Step::If {
                        cond: Arc::new(|s: &soc::workflow::bpel::Scope| {
                            s["decision"].get("decision").and_then(Value::as_str)
                                == Some("rejected")
                        }),
                        then: Box::new(Step::set("declined", true)),
                        otherwise: Box::new(Step::assign("loan", |s| {
                            Ok(Value::from(int_var(s, "loan")? + 100_000))
                        })),
                    },
                ])),
            },
        ]),
        transport.clone(),
    );
    let scope = process.run(Scope::new()).expect("process runs");
    println!(
        "BPEL loan sweep    -> largest approved loan: ${}",
        scope["approved_max"].as_i64().unwrap_or(0)
    );

    // ---- 3. Service composition: captcha-gated password issuing --------
    // (two repository services chained through one workflow)
    let rest = soc::rest::RestClient::new(transport.clone());
    let pw = rest
        .post("mem://services.asu/passwords/generate", &json!({ "length": 14 }))
        .expect("password service");
    println!(
        "composed services  -> generated {} password ({} bits)",
        pw.get("strength").and_then(Value::as_str).unwrap_or("?"),
        pw.get("entropy_bits").and_then(Value::as_f64).unwrap_or(0.0).round()
    );

    // ---- 4. Saga: roll back what already happened ----------------------
    // The apply step succeeds (and records an application under its
    // Idempotency-Key), then a downstream audit step fails terminally.
    // Run under saga semantics, the engine compensates the completed
    // step: a compensator fed apply's *outputs* cancels the recorded
    // application, so the books end balanced.
    let gw2 = Gateway::new(transport.clone(), GatewayConfig::default());
    gw2.register("mortgage", &["mem://services.asu"]);
    let mut saga_graph = WorkflowGraph::new();
    let application = saga_graph.add(
        "application",
        Const::new(json!({
            "name": "Ann", "ssn": (ssn.clone()),
            "annual_income": 120000, "loan_amount": 300000, "term_years": 30
        })),
    );
    let apply =
        saga_graph.add("apply", ServiceCall::post_via_gateway(gw2, "mortgage", "mortgage/apply"));
    let audit =
        saga_graph.add("audit", Compute::new(&["x"], |_| Err("audit service offline".to_string())));
    saga_graph.connect(application, "out", apply, "body").unwrap();
    saga_graph.connect(apply, "out", audit, "x").unwrap();
    saga_graph.set_policy(apply, ResiliencePolicy::retries(3)).unwrap();
    let canceller = soc::rest::RestClient::new(transport.clone());
    saga_graph
        .set_compensation(
            apply,
            Compute::new(&["out"], move |p| {
                let id = p["out"]
                    .get("application_id")
                    .and_then(Value::as_str)
                    .ok_or("apply output carries no application_id")?;
                canceller
                    .post("mem://services.asu/mortgage/cancel", &json!({ "application_id": id }))
                    .map_err(|e| e.to_string())
            }),
        )
        .unwrap();

    match saga_graph.run_saga(&HashMap::new(), &SagaConfig::default()).expect("saga runs") {
        WorkflowOutcome::Completed(_) => unreachable!("audit always fails"),
        WorkflowOutcome::Compensated { failed_at, compensated, .. } => {
            println!(
                "saga rollback      -> failed at {failed_at:?}; compensated {compensated:?} \
                 (application cancelled)"
            );
        }
    }
}

/// Print `spans` as an indented tree by following `parent_span_id`
/// links (the same JSON `/observe/traces/{id}` serves over HTTP).
fn print_tree(spans: &[Value], parent: Option<&str>, depth: usize) {
    for s in spans.iter().filter(|s| s.pointer("/parent_span_id").and_then(Value::as_str) == parent)
    {
        let name = s.pointer("/name").and_then(Value::as_str).unwrap_or("?");
        let us = s.pointer("/duration_us").and_then(Value::as_i64).unwrap_or(0);
        let status = s.pointer("/status").and_then(Value::as_str).unwrap_or("ok");
        let marker = if status == "ok" { "" } else { "  [error]" };
        let detail = ["node", "upstream"]
            .iter()
            .find_map(|k| s.pointer(&format!("/attrs/{k}")).and_then(Value::as_str))
            .map(|v| format!(" {v}"))
            .unwrap_or_default();
        println!("{:indent$}{name}{detail} ({us} µs){marker}", "", indent = depth * 4);
        print_tree(spans, s.pointer("/span_id").and_then(Value::as_str), depth + 1);
    }
}
