//! Pull-style XML parser (the event model that SAX is built on).
//!
//! [`XmlReader`] walks the input once, producing borrowed
//! [`XmlEvent`]s: names are [`RawName`] slices into the input and text
//! payloads are [`Cow`]s that only allocate when entity expansion
//! actually rewrites bytes. A clean document (no entities) parses with
//! zero per-event allocations. The reader enforces well-formedness:
//! tags must balance, attributes must be unique per element, exactly
//! one root element, no text outside it.
//!
//! Attributes of the most recent `StartElement` are exposed through
//! [`XmlReader::attributes`] — they live in a buffer the reader reuses
//! across elements, so pulling events never allocates a `Vec` per tag.
//!
//! For consumers that want `'static` data (or a single value carrying
//! both the name and the attributes), [`XmlReader::next_owned`] yields
//! [`OwnedEvent`]s with the same semantics as the borrowed stream.
//!
//! ```
//! use soc_xml::reader::{XmlReader, XmlEvent};
//!
//! let mut r = XmlReader::new("<a href='x'>hi</a>");
//! assert!(matches!(r.next_event().unwrap(), XmlEvent::StartElement { .. }));
//! assert_eq!(r.attributes()[0].value, "x");
//! assert!(matches!(r.next_event().unwrap(), XmlEvent::Text(t) if t == "hi"));
//! ```

use std::borrow::Cow;

use crate::error::{Position, XmlError, XmlResult};
use crate::escape::unescape;
use crate::name::{is_name_char, is_name_start, QName, RawName};
use crate::scan;

/// A single attribute as it appeared on a start tag, value already
/// entity-expanded (borrowing the input unless expansion rewrote it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name, possibly prefixed.
    pub name: RawName<'a>,
    /// Entity-expanded attribute value.
    pub value: Cow<'a, str>,
}

/// Borrowed events produced by [`XmlReader`]. All payloads are slices
/// of (or [`Cow`]s over) the input string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// The `<?xml … ?>` declaration, if present.
    StartDocument {
        /// `version` pseudo-attribute (defaults to "1.0").
        version: &'a str,
        /// `encoding` pseudo-attribute, if given.
        encoding: Option<&'a str>,
    },
    /// An opening tag. Its attributes are available from
    /// [`XmlReader::attributes`] until the next event is pulled.
    /// Self-closing tags produce a `StartElement` immediately followed
    /// by a synthetic `EndElement`.
    StartElement {
        /// Element name.
        name: RawName<'a>,
    },
    /// A closing tag (possibly synthetic, for `<x/>`).
    EndElement {
        /// Element name.
        name: RawName<'a>,
    },
    /// Character data between tags, entity-expanded.
    Text(Cow<'a, str>),
    /// A `<![CDATA[…]]>` section, verbatim.
    CData(&'a str),
    /// A `<!-- … -->` comment, verbatim.
    Comment(&'a str),
    /// A `<?target data?>` processing instruction (other than `<?xml?>`).
    ProcessingInstruction {
        /// PI target.
        target: &'a str,
        /// Everything after the target, trimmed.
        data: &'a str,
    },
    /// A `<!DOCTYPE …>` declaration, kept as raw text.
    Doctype(&'a str),
    /// End of input; returned forever after the document closes.
    EndDocument,
}

/// An owned attribute (see [`OwnedEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedAttribute {
    /// Attribute name, possibly prefixed.
    pub name: QName,
    /// Entity-expanded attribute value.
    pub value: String,
}

/// Owned events: the allocation-paying twin of [`XmlEvent`], carrying
/// `String` payloads and the start tag's attributes inline. Produced by
/// [`XmlReader::next_owned`]; byte-identical in content to the borrowed
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedEvent {
    /// The `<?xml … ?>` declaration, if present.
    StartDocument {
        /// `version` pseudo-attribute (defaults to "1.0").
        version: String,
        /// `encoding` pseudo-attribute, if given.
        encoding: Option<String>,
    },
    /// An opening tag with its attributes in document order.
    StartElement {
        /// Element name.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<OwnedAttribute>,
    },
    /// A closing tag (possibly synthetic, for `<x/>`).
    EndElement {
        /// Element name.
        name: QName,
    },
    /// Character data between tags, entity-expanded.
    Text(String),
    /// A `<![CDATA[…]]>` section, verbatim.
    CData(String),
    /// A `<!-- … -->` comment, verbatim.
    Comment(String),
    /// A `<?target data?>` processing instruction (other than `<?xml?>`).
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// Everything after the target, trimmed.
        data: String,
    },
    /// A `<!DOCTYPE …>` declaration, kept as raw text.
    Doctype(String),
    /// End of input; returned forever after the document closes.
    EndDocument,
}

/// Configuration for [`XmlReader`].
#[derive(Debug, Clone, Default)]
pub struct ReaderConfig {
    /// Drop text events that are entirely whitespace (common when
    /// parsing pretty-printed documents into data structures).
    pub trim_whitespace_text: bool,
    /// Skip comment events entirely.
    pub skip_comments: bool,
}

/// A streaming pull parser over a UTF-8 string.
pub struct XmlReader<'a> {
    input: &'a str,
    bytes: &'a [u8],
    /// Byte offset of the next unread byte. The hot path tracks *only*
    /// this; line/column are materialized lazily via
    /// [`Position::locate`] when an error or position query needs them.
    offset: usize,
    config: ReaderConfig,
    /// Open-element stack for balance checking (name slices, no copies).
    stack: Vec<RawName<'a>>,
    /// Attributes of the most recent start tag; reused across elements.
    attrs: Vec<Attribute<'a>>,
    /// Synthetic end-element queued by a self-closing tag.
    pending_end: Option<RawName<'a>>,
    /// Whether the root element has been closed.
    root_done: bool,
    /// Whether any root element has been seen.
    root_seen: bool,
    /// Whether the `<?xml?>` declaration may still appear.
    at_start: bool,
}

impl<'a> XmlReader<'a> {
    /// Create a reader with default configuration.
    pub fn new(input: &'a str) -> Self {
        Self::with_config(input, ReaderConfig::default())
    }

    /// Create a reader with explicit configuration.
    pub fn with_config(input: &'a str, config: ReaderConfig) -> Self {
        XmlReader {
            input,
            bytes: input.as_bytes(),
            offset: 0,
            config,
            stack: Vec::new(),
            attrs: Vec::new(),
            pending_end: None,
            root_done: false,
            root_seen: false,
            at_start: true,
        }
    }

    /// Current source position (start of the next unread byte).
    /// Computed on demand — the parse loop itself never pays for
    /// line/column bookkeeping.
    pub fn position(&self) -> Position {
        self.pos_at(self.offset)
    }

    fn pos_at(&self, offset: usize) -> Position {
        Position::locate(self.input, offset)
    }

    /// Attributes of the most recent [`XmlEvent::StartElement`], in
    /// document order. The backing buffer is reused: read them before
    /// pulling the next event.
    pub fn attributes(&self) -> &[Attribute<'a>] {
        &self.attrs
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.offset + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.offset..].starts_with(s)
    }

    fn consume_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.offset += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        self.offset += scan::skip_whitespace(&self.bytes[self.offset..]);
    }

    /// Consume input up to (not including) `delim`, returning the slice.
    fn take_until(&mut self, delim: &str, what: &'static str) -> XmlResult<&'a str> {
        let rest = &self.input[self.offset..];
        let Some(idx) = scan::find_substr(rest.as_bytes(), delim.as_bytes()) else {
            return Err(XmlError::UnexpectedEof { pos: self.pos_at(self.offset), expected: what });
        };
        self.offset += idx;
        Ok(&rest[..idx])
    }

    fn read_name(&mut self) -> XmlResult<RawName<'a>> {
        let rest = &self.input[self.offset..];
        let bytes = rest.as_bytes();
        // ASCII fast path: almost every name is ASCII, where the name
        // classes reduce to byte tests — no UTF-8 decode per char.
        match bytes.first() {
            Some(&b) if b.is_ascii_alphabetic() || b == b'_' || b == b':' => {}
            Some(&b) if b >= 0x80 && rest.chars().next().is_some_and(is_name_start) => {}
            Some(_) => {
                return Err(XmlError::Unexpected {
                    pos: self.pos_at(self.offset),
                    found: rest.chars().next().unwrap(),
                    expected: "name start",
                })
            }
            None => {
                return Err(XmlError::UnexpectedEof {
                    pos: self.pos_at(self.offset),
                    expected: "name",
                })
            }
        }
        let mut len = 0;
        while len < bytes.len() && is_ascii_name_byte(bytes[len]) {
            len += 1;
        }
        if bytes.get(len).is_some_and(|&b| b >= 0x80) {
            // Non-ASCII continuation: finish with char-exact classes.
            for c in rest[len..].chars() {
                if is_name_char(c) {
                    len += c.len_utf8();
                } else {
                    break;
                }
            }
        }
        let raw = &rest[..len];
        self.offset += len;
        Ok(RawName::parse(raw))
    }

    fn read_attr_value(&mut self) -> XmlResult<Cow<'a, str>> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(c) => {
                return Err(XmlError::Unexpected {
                    pos: self.pos_at(self.offset),
                    found: c as char,
                    expected: "quoted attribute value",
                })
            }
            None => {
                return Err(XmlError::UnexpectedEof {
                    pos: self.pos_at(self.offset),
                    expected: "attribute value",
                })
            }
        };
        let at = self.offset;
        let rest = &self.input[self.offset..];
        let bytes = rest.as_bytes();
        // One scan finds both the closing quote and whether any entity
        // needs expanding; escape-free values (the common case) borrow
        // without a second pass.
        let (end, has_entity) = match scan::find_byte2(bytes, quote, b'&') {
            Some(p) if bytes[p] == quote => (p, false),
            Some(p) => match scan::find_byte(&bytes[p..], quote) {
                Some(q) => (p + q, true),
                None => {
                    return Err(XmlError::UnexpectedEof {
                        pos: self.pos_at(at),
                        expected: "closing attribute quote",
                    })
                }
            },
            None => {
                return Err(XmlError::UnexpectedEof {
                    pos: self.pos_at(at),
                    expected: "closing attribute quote",
                })
            }
        };
        let raw = &rest[..end];
        self.offset += end + 1; // value + closing quote
        if !has_entity {
            return Ok(Cow::Borrowed(raw));
        }
        unescape(raw, Position::start()).map_err(|e| e.at(self.pos_at(at)))
    }

    /// Parse the inside of a start tag after the name: attributes (into
    /// the reusable buffer) and the closing `>` or `/>`. Returns
    /// `self_closing`.
    fn read_attributes(&mut self) -> XmlResult<bool> {
        self.attrs.clear();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.offset += 1;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(XmlError::Unexpected {
                            pos: self.pos_at(self.offset),
                            found: '/',
                            expected: "'/>'",
                        });
                    }
                    return Ok(true);
                }
                Some(_) => {
                    let at = self.offset;
                    let name = self.read_name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(XmlError::Unexpected {
                            pos: self.pos_at(self.offset),
                            found: self.peek().map(|b| b as char).unwrap_or('\0'),
                            expected: "'=' after attribute name",
                        });
                    }
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    if self.attrs.iter().any(|a| a.name.as_str() == name.as_str()) {
                        return Err(XmlError::DuplicateAttribute {
                            pos: self.pos_at(at),
                            name: name.to_string(),
                        });
                    }
                    self.attrs.push(Attribute { name, value });
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        pos: self.pos_at(self.offset),
                        expected: "'>'",
                    })
                }
            }
        }
    }

    fn read_xml_decl(&mut self) -> XmlResult<XmlEvent<'a>> {
        // Already consumed "<?xml".
        let at = self.offset;
        let body = self.take_until("?>", "'?>'")?;
        self.consume_str("?>");
        let mut version: &'a str = "1.0";
        let mut encoding = None;
        for part in body.split_whitespace() {
            if let Some((k, v)) = part.split_once('=') {
                let v = v.trim_matches(|c| c == '"' || c == '\'');
                match k {
                    "version" => version = v,
                    "encoding" => encoding = Some(v),
                    _ => {}
                }
            }
        }
        if encoding.is_some_and(|e| !e.eq_ignore_ascii_case("utf-8")) {
            return Err(XmlError::BadChar {
                pos: self.pos_at(at),
                detail: format!("unsupported encoding {:?} (only UTF-8)", encoding.unwrap()),
            });
        }
        Ok(XmlEvent::StartDocument { version, encoding })
    }

    /// Pull the next event from the input.
    pub fn next_event(&mut self) -> XmlResult<XmlEvent<'a>> {
        if let Some(name) = self.pending_end.take() {
            if self.stack.is_empty() {
                self.root_done = true;
            }
            return Ok(XmlEvent::EndElement { name });
        }
        loop {
            let Some(first) = self.peek() else {
                // End of input.
                if self.stack.last().is_some() {
                    return Err(XmlError::UnexpectedEof {
                        pos: self.pos_at(self.offset),
                        expected: "closing tag",
                    });
                }
                if !self.root_seen {
                    return Err(XmlError::NotWellFormed {
                        pos: self.pos_at(self.offset),
                        detail: "document has no root element".into(),
                    });
                }
                return Ok(XmlEvent::EndDocument);
            };

            if first == b'<' {
                let at = self.offset;
                self.bump();
                match self.peek() {
                    Some(b'?') => {
                        self.bump();
                        if self.at_start
                            && self.starts_with("xml")
                            && self.peek_at(3).is_none_or(|b| b.is_ascii_whitespace() || b == b'?')
                        {
                            self.consume_str("xml");
                            self.at_start = false;
                            return self.read_xml_decl();
                        }
                        self.at_start = false;
                        let target = self.read_name()?;
                        let data = self.take_until("?>", "'?>'")?.trim();
                        self.consume_str("?>");
                        return Ok(XmlEvent::ProcessingInstruction {
                            target: target.as_str(),
                            data,
                        });
                    }
                    Some(b'!') => {
                        self.bump();
                        self.at_start = false;
                        if self.consume_str("--") {
                            let text = self.take_until("-->", "'-->'")?;
                            self.consume_str("-->");
                            if self.config.skip_comments {
                                continue;
                            }
                            return Ok(XmlEvent::Comment(text));
                        }
                        if self.consume_str("[CDATA[") {
                            if self.stack.is_empty() {
                                return Err(XmlError::NotWellFormed {
                                    pos: self.pos_at(at),
                                    detail: "CDATA outside root element".into(),
                                });
                            }
                            let text = self.take_until("]]>", "']]>'")?;
                            self.consume_str("]]>");
                            return Ok(XmlEvent::CData(text));
                        }
                        if self.consume_str("DOCTYPE") {
                            // Keep it simple: no internal subsets with nested '>'.
                            let text = self.take_until(">", "'>'")?.trim();
                            self.bump();
                            return Ok(XmlEvent::Doctype(text));
                        }
                        return Err(XmlError::Unexpected {
                            pos: self.pos_at(at),
                            found: '!',
                            expected: "comment, CDATA, or DOCTYPE",
                        });
                    }
                    Some(b'/') => {
                        self.bump();
                        let name = self.read_name()?;
                        self.skip_ws();
                        if self.bump() != Some(b'>') {
                            return Err(XmlError::UnexpectedEof {
                                pos: self.pos_at(self.offset),
                                expected: "'>'",
                            });
                        }
                        match self.stack.pop() {
                            Some(open) if open.as_str() == name.as_str() => {
                                if self.stack.is_empty() {
                                    self.root_done = true;
                                }
                                return Ok(XmlEvent::EndElement { name });
                            }
                            Some(open) => {
                                return Err(XmlError::MismatchedTag {
                                    pos: self.pos_at(at),
                                    open: open.to_string(),
                                    close: name.to_string(),
                                })
                            }
                            None => {
                                return Err(XmlError::UnbalancedClose {
                                    pos: self.pos_at(at),
                                    name: name.to_string(),
                                })
                            }
                        }
                    }
                    _ => {
                        self.at_start = false;
                        if self.root_done {
                            return Err(XmlError::NotWellFormed {
                                pos: self.pos_at(at),
                                detail: "content after the root element".into(),
                            });
                        }
                        if self.stack.is_empty() && self.root_seen {
                            return Err(XmlError::NotWellFormed {
                                pos: self.pos_at(at),
                                detail: "multiple root elements".into(),
                            });
                        }
                        let name = self.read_name()?;
                        let self_closing = self.read_attributes()?;
                        self.root_seen = true;
                        if self_closing {
                            self.pending_end = Some(name);
                        } else {
                            self.stack.push(name);
                        }
                        return Ok(XmlEvent::StartElement { name });
                    }
                }
            }

            // Character data. One scan finds both the run's end and
            // whether any entity needs expanding; clean runs borrow.
            let at = self.offset;
            let rest = &self.input[self.offset..];
            let bytes = rest.as_bytes();
            let (end, has_entity) = match scan::find_byte2(bytes, b'<', b'&') {
                None => (bytes.len(), false),
                Some(p) if bytes[p] == b'<' => (p, false),
                Some(p) => {
                    (scan::find_byte(&bytes[p..], b'<').map_or(bytes.len(), |q| p + q), true)
                }
            };
            let raw = &rest[..end];
            self.offset += end;
            self.at_start = false;
            let outside = self.stack.is_empty();
            if outside {
                if !raw.trim().is_empty() {
                    return Err(XmlError::NotWellFormed {
                        pos: self.pos_at(at),
                        detail: "text outside the root element".into(),
                    });
                }
                continue;
            }
            if self.config.trim_whitespace_text && raw.trim().is_empty() {
                continue;
            }
            let text = if has_entity {
                unescape(raw, Position::start()).map_err(|e| e.at(self.pos_at(at)))?
            } else {
                Cow::Borrowed(raw)
            };
            return Ok(XmlEvent::Text(text));
        }
    }

    /// Pull the next event with owned (`String`) payloads and the start
    /// tag's attributes attached. Same stream, same order, same errors
    /// as [`XmlReader::next_event`].
    pub fn next_owned(&mut self) -> XmlResult<OwnedEvent> {
        let ev = self.next_event()?;
        Ok(match ev {
            XmlEvent::StartDocument { version, encoding } => OwnedEvent::StartDocument {
                version: version.to_string(),
                encoding: encoding.map(str::to_string),
            },
            XmlEvent::StartElement { name } => OwnedEvent::StartElement {
                name: name.to_qname(),
                attributes: self
                    .attrs
                    .iter()
                    .map(|a| OwnedAttribute {
                        name: a.name.to_qname(),
                        value: a.value.clone().into_owned(),
                    })
                    .collect(),
            },
            XmlEvent::EndElement { name } => OwnedEvent::EndElement { name: name.to_qname() },
            XmlEvent::Text(t) => OwnedEvent::Text(t.into_owned()),
            XmlEvent::CData(t) => OwnedEvent::CData(t.to_string()),
            XmlEvent::Comment(t) => OwnedEvent::Comment(t.to_string()),
            XmlEvent::ProcessingInstruction { target, data } => OwnedEvent::ProcessingInstruction {
                target: target.to_string(),
                data: data.to_string(),
            },
            XmlEvent::Doctype(t) => OwnedEvent::Doctype(t.to_string()),
            XmlEvent::EndDocument => OwnedEvent::EndDocument,
        })
    }

    /// Drain the remaining events, checking well-formedness of the whole
    /// document. Useful for validation without building a DOM.
    pub fn validate_to_end(&mut self) -> XmlResult<()> {
        loop {
            if matches!(self.next_event()?, XmlEvent::EndDocument) {
                return Ok(());
            }
        }
    }
}

/// ASCII subset of [`is_name_char`], as a byte test for the scan fast
/// path. Bytes `>= 0x80` return false and are handed to the char-exact
/// classifier.
#[inline(always)]
fn is_ascii_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
}

impl<'a> Iterator for XmlReader<'a> {
    type Item = XmlResult<XmlEvent<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(XmlEvent::EndDocument) => None,
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent<'_>> {
        XmlReader::new(input).collect::<XmlResult<Vec<_>>>().unwrap()
    }

    #[test]
    fn simple_element_with_text() {
        let ev = events("<a>hi</a>");
        assert_eq!(
            ev,
            vec![
                XmlEvent::StartElement { name: RawName::parse("a") },
                XmlEvent::Text("hi".into()),
                XmlEvent::EndElement { name: RawName::parse("a") },
            ]
        );
    }

    #[test]
    fn clean_text_is_borrowed() {
        let mut r = XmlReader::new("<a>plain text</a>");
        r.next_event().unwrap();
        let XmlEvent::Text(t) = r.next_event().unwrap() else { panic!() };
        assert!(matches!(t, Cow::Borrowed(_)));
    }

    #[test]
    fn entity_text_is_owned() {
        let mut r = XmlReader::new("<a>a&amp;b</a>");
        r.next_event().unwrap();
        let XmlEvent::Text(t) = r.next_event().unwrap() else { panic!() };
        assert!(matches!(t, Cow::Owned(_)));
        assert_eq!(t, "a&b");
    }

    #[test]
    fn self_closing_produces_synthetic_end() {
        let ev = events("<a><b/></a>");
        assert_eq!(ev.len(), 4);
        assert!(matches!(&ev[1], XmlEvent::StartElement { name } if name.local == "b"));
        assert!(matches!(&ev[2], XmlEvent::EndElement { name } if name.local == "b"));
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let mut r = XmlReader::new(r#"<s id="1" name='echo &amp; co'/>"#);
        r.next_event().unwrap();
        let attrs = r.attributes();
        assert_eq!(attrs[0].value, "1");
        assert!(matches!(attrs[0].value, Cow::Borrowed(_)));
        assert_eq!(attrs[1].value, "echo & co");
        assert!(matches!(attrs[1].value, Cow::Owned(_)));
    }

    #[test]
    fn attribute_buffer_reused_across_elements() {
        let mut r = XmlReader::new(r#"<a x="1"><b y="2" z="3"/></a>"#);
        r.next_event().unwrap();
        assert_eq!(r.attributes().len(), 1);
        r.next_event().unwrap();
        assert_eq!(r.attributes().len(), 2);
        assert_eq!(r.attributes()[0].name.local, "y");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut r = XmlReader::new(r#"<s a="1" a="2"/>"#);
        assert!(matches!(r.next_event(), Err(XmlError::DuplicateAttribute { .. })));
    }

    #[test]
    fn xml_declaration_parsed() {
        let ev = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
        assert_eq!(ev[0], XmlEvent::StartDocument { version: "1.0", encoding: Some("UTF-8") });
    }

    #[test]
    fn non_utf8_encoding_rejected() {
        let mut r = XmlReader::new("<?xml version=\"1.0\" encoding=\"latin-1\"?><r/>");
        assert!(matches!(r.next_event(), Err(XmlError::BadChar { .. })));
    }

    #[test]
    fn cdata_is_verbatim() {
        let ev = events("<a><![CDATA[1 < 2 && 3 > 2]]></a>");
        assert!(matches!(&ev[1], XmlEvent::CData(t) if *t == "1 < 2 && 3 > 2"));
    }

    #[test]
    fn comments_and_pis() {
        let ev = events("<a><!-- note --><?php echo ?></a>");
        assert!(matches!(&ev[1], XmlEvent::Comment(t) if *t == " note "));
        assert!(matches!(&ev[2],
            XmlEvent::ProcessingInstruction { target, data } if *target == "php" && *data == "echo"));
    }

    #[test]
    fn skip_comments_config() {
        let cfg = ReaderConfig { skip_comments: true, ..Default::default() };
        let ev: Vec<_> =
            XmlReader::with_config("<a><!--x-->t</a>", cfg).collect::<XmlResult<_>>().unwrap();
        assert_eq!(ev.len(), 3);
        assert!(matches!(&ev[1], XmlEvent::Text(t) if t == "t"));
    }

    #[test]
    fn trim_whitespace_config() {
        let cfg = ReaderConfig { trim_whitespace_text: true, ..Default::default() };
        let ev: Vec<_> =
            XmlReader::with_config("<a>\n  <b/>\n</a>", cfg).collect::<XmlResult<_>>().unwrap();
        assert_eq!(ev.len(), 4); // no text events
    }

    #[test]
    fn mismatched_tags_rejected() {
        let mut r = XmlReader::new("<a><b></a></b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert!(matches!(r.next_event(), Err(XmlError::MismatchedTag { .. })));
    }

    #[test]
    fn unbalanced_close_rejected() {
        let mut r = XmlReader::new("</a>");
        assert!(matches!(r.next_event(), Err(XmlError::UnbalancedClose { .. })));
    }

    #[test]
    fn unclosed_root_rejected() {
        let mut r = XmlReader::new("<a><b></b>");
        assert!(r.validate_to_end().is_err());
    }

    #[test]
    fn multiple_roots_rejected() {
        let mut r = XmlReader::new("<a/><b/>");
        assert!(r.validate_to_end().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        let mut r = XmlReader::new("<a/>junk");
        assert!(r.validate_to_end().is_err());
    }

    #[test]
    fn empty_input_rejected() {
        let mut r = XmlReader::new("   ");
        assert!(matches!(r.next_event(), Err(XmlError::NotWellFormed { .. })));
    }

    #[test]
    fn doctype_is_reported() {
        let ev = events("<!DOCTYPE html><a/>");
        assert!(matches!(&ev[0], XmlEvent::Doctype(t) if *t == "html"));
    }

    #[test]
    fn prefixed_names() {
        let ev = events("<soap:Envelope xmlns:soap='urn:s'><soap:Body/></soap:Envelope>");
        assert!(matches!(&ev[0], XmlEvent::StartElement { name }
            if name.prefix == "soap" && name.local == "Envelope"));
    }

    #[test]
    fn position_reported_in_errors() {
        let mut r = XmlReader::new("<a>\n  <b></c></b></a>");
        r.next_event().unwrap(); // <a>
        r.next_event().unwrap(); // text
        r.next_event().unwrap(); // <b>
        let err = r.next_event().unwrap_err();
        let XmlError::MismatchedTag { pos, .. } = err else { panic!("{err}") };
        assert_eq!(pos.line, 2);
    }

    #[test]
    fn whitespace_between_prolog_and_root_ok() {
        let ev = events("<?xml version='1.0'?>\n\n<r/>");
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn unicode_text_round_trips() {
        let ev = events("<a>中文 → ok</a>");
        assert!(matches!(&ev[1], XmlEvent::Text(t) if t == "中文 → ok"));
    }

    #[test]
    fn owned_stream_matches_borrowed() {
        let input = r#"<?xml version="1.0"?><a x="1&amp;2"><b>t</b><![CDATA[c]]></a>"#;
        let mut r = XmlReader::new(input);
        let mut owned = Vec::new();
        loop {
            let ev = r.next_owned().unwrap();
            let done = matches!(ev, OwnedEvent::EndDocument);
            owned.push(ev);
            if done {
                break;
            }
        }
        assert!(matches!(&owned[1], OwnedEvent::StartElement { name, attributes }
            if name.local == "a" && attributes[0].value == "1&2"));
        assert!(matches!(&owned[3], OwnedEvent::Text(t) if t == "t"));
        assert!(matches!(owned.last(), Some(OwnedEvent::EndDocument)));
    }
}
