//! A miniature template-rule transformation engine ("XML Stylesheet
//! language" from the course unit, reduced to its teachable core).
//!
//! A stylesheet is itself XML: `<template match="name">` rules whose
//! bodies are literal result elements plus two instructions,
//! `<value-of select="xpath"/>` and `<apply-templates select="xpath"/>`.
//!
//! ```
//! use soc_xml::{Document, xslt::Stylesheet};
//!
//! let sheet = Stylesheet::parse(r#"
//!   <stylesheet>
//!     <template match="catalog"><ul><apply-templates select="service"/></ul></template>
//!     <template match="service"><li><value-of select="name"/></li></template>
//!   </stylesheet>"#).unwrap();
//! let input = Document::parse_str(
//!   "<catalog><service><name>echo</name></service></catalog>").unwrap();
//! let out = sheet.transform(&input).unwrap();
//! assert_eq!(out.to_xml(), "<ul><li>echo</li></ul>");
//! ```

use crate::dom::{Document, NodeId, NodeValue};
use crate::error::{XmlError, XmlResult};
use crate::xpath;

/// A compiled stylesheet.
#[derive(Debug, Clone)]
pub struct Stylesheet {
    /// The stylesheet document; rules reference nodes inside it.
    rules_doc: Document,
    /// (match-name, template-body element id) pairs in document order.
    rules: Vec<(String, NodeId)>,
}

impl Stylesheet {
    /// Parse a stylesheet document.
    pub fn parse(src: &str) -> XmlResult<Self> {
        let doc = Document::parse_str(src)?;
        let mut rules = Vec::new();
        for t in doc.find_children(doc.root(), "template") {
            let Some(m) = doc.attr(t, "match") else {
                return Err(XmlError::XPathSyntax {
                    detail: "template missing match attribute".into(),
                });
            };
            rules.push((m.to_string(), t));
        }
        if rules.is_empty() {
            return Err(XmlError::XPathSyntax { detail: "stylesheet has no templates".into() });
        }
        Ok(Stylesheet { rules_doc: doc, rules })
    }

    fn rule_for(&self, name: &str) -> Option<NodeId> {
        self.rules
            .iter()
            .find(|(m, _)| m == name)
            .or_else(|| self.rules.iter().find(|(m, _)| m == "*"))
            .map(|&(_, id)| id)
    }

    /// Transform `input`, producing a new document. If the matched
    /// templates emit more than one top-level element the result is
    /// wrapped in `<result>`.
    pub fn transform(&self, input: &Document) -> XmlResult<Document> {
        let mut out = Document::new("result");
        let root = out.root();
        self.apply_to(input, input.root(), &mut out, root)?;
        // Unwrap single-element results.
        let top: Vec<NodeId> = out.child_elements(root).collect();
        if top.len() == 1 && out.children(root).count() == 1 {
            let mut unwrapped = Document::new(out.name(top[0]).expect("element").clone());
            for (n, v) in out.attributes(top[0]) {
                unwrapped.set_attr(unwrapped.root(), n.clone(), v);
            }
            for k in out.children(top[0]) {
                unwrapped.graft(unwrapped.root(), &out, k);
            }
            return Ok(unwrapped);
        }
        Ok(out)
    }

    /// Apply the matching template for `node` (or the default rule),
    /// appending output under `out_parent`.
    fn apply_to(
        &self,
        input: &Document,
        node: NodeId,
        out: &mut Document,
        out_parent: NodeId,
    ) -> XmlResult<()> {
        match input.value(node) {
            NodeValue::Text(t) | NodeValue::CData(t) => {
                out.add_text(out_parent, t);
                return Ok(());
            }
            NodeValue::Element(name) => {
                if let Some(rule) = self.rule_for(&name.local) {
                    return self.instantiate(rule, input, node, out, out_parent);
                }
                // Default rule: recurse into children.
                for c in input.children(node) {
                    self.apply_to(input, c, out, out_parent)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Copy a template body, executing instructions against `context`.
    fn instantiate(
        &self,
        template_node: NodeId,
        input: &Document,
        context: NodeId,
        out: &mut Document,
        out_parent: NodeId,
    ) -> XmlResult<()> {
        let body: Vec<NodeId> = self.rules_doc.children(template_node).collect();
        for b in body {
            self.emit(b, input, context, out, out_parent)?;
        }
        Ok(())
    }

    fn emit(
        &self,
        tnode: NodeId,
        input: &Document,
        context: NodeId,
        out: &mut Document,
        out_parent: NodeId,
    ) -> XmlResult<()> {
        let sheet = &self.rules_doc;
        match sheet.value(tnode) {
            NodeValue::Element(name) if name.local == "value-of" => {
                let select = sheet.attr(tnode, "select").unwrap_or(".");
                let texts =
                    xpath::XPath::parse(select)?.eval_from(input, context, false).strings(input);
                if let Some(first) = texts.first() {
                    out.add_text(out_parent, first);
                }
            }
            NodeValue::Element(name) if name.local == "apply-templates" => {
                let select = sheet.attr(tnode, "select");
                let targets: Vec<NodeId> = match select {
                    Some(expr) => xpath::XPath::parse(expr)?
                        .eval_from(input, context, false)
                        .nodes()
                        .into_vec(),
                    None => input.children(context).collect(),
                };
                for t in targets {
                    self.apply_to(input, t, out, out_parent)?;
                }
            }
            NodeValue::Element(name) => {
                let el = out.add_element(out_parent, name.clone());
                for (n, v) in sheet.attributes(tnode) {
                    out.set_attr(el, n.clone(), v);
                }
                let kids: Vec<NodeId> = sheet.children(tnode).collect();
                for k in kids {
                    self.emit(k, input, context, out, out_parent_child(el))?;
                }
            }
            NodeValue::Text(t) => {
                out.add_text(out_parent, t);
            }
            NodeValue::CData(t) => {
                out.add_cdata(out_parent, t);
            }
            _ => {}
        }
        Ok(())
    }
}

// Tiny identity helper to make the recursive call above read clearly.
fn out_parent_child(el: NodeId) -> NodeId {
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Document {
        Document::parse_str(
            "<catalog><service><name>echo</name><cost>0</cost></service>\
             <service><name>cart</name><cost>5</cost></service></catalog>",
        )
        .unwrap()
    }

    #[test]
    fn basic_transform() {
        let sheet = Stylesheet::parse(
            r#"<stylesheet>
                 <template match="catalog"><ul><apply-templates select="service"/></ul></template>
                 <template match="service"><li><value-of select="name"/></li></template>
               </stylesheet>"#,
        )
        .unwrap();
        let out = sheet.transform(&catalog()).unwrap();
        assert_eq!(out.to_xml(), "<ul><li>echo</li><li>cart</li></ul>");
    }

    #[test]
    fn literal_attributes_copied() {
        let sheet = Stylesheet::parse(
            r#"<stylesheet>
                 <template match="catalog"><div class="c"><value-of select="service/name"/></div></template>
               </stylesheet>"#,
        )
        .unwrap();
        let out = sheet.transform(&catalog()).unwrap();
        assert_eq!(out.to_xml(), r#"<div class="c">echo</div>"#);
    }

    #[test]
    fn wildcard_rule_and_wrapping() {
        let sheet = Stylesheet::parse(
            r#"<stylesheet>
                 <template match="*"><x/><y/></template>
               </stylesheet>"#,
        )
        .unwrap();
        let out = sheet.transform(&catalog()).unwrap();
        assert_eq!(out.to_xml(), "<result><x/><y/></result>");
    }

    #[test]
    fn default_rule_descends_to_text() {
        let sheet = Stylesheet::parse(
            r#"<stylesheet>
                 <template match="name"><b><value-of select="."/></b></template>
               </stylesheet>"#,
        )
        .unwrap();
        // catalog and service have no rules: default recursion applies,
        // copying descendant text and applying the name rule.
        let out = sheet.transform(&catalog()).unwrap();
        let s = out.to_xml();
        assert!(s.contains("<b>echo</b>"));
        assert!(s.contains("<b>cart</b>"));
    }

    #[test]
    fn apply_templates_without_select() {
        let sheet = Stylesheet::parse(
            r#"<stylesheet>
                 <template match="catalog"><all><apply-templates/></all></template>
                 <template match="service"><s/></template>
               </stylesheet>"#,
        )
        .unwrap();
        let out = sheet.transform(&catalog()).unwrap();
        assert_eq!(out.to_xml(), "<all><s/><s/></all>");
    }

    #[test]
    fn missing_templates_is_error() {
        assert!(Stylesheet::parse("<stylesheet/>").is_err());
        assert!(Stylesheet::parse("<stylesheet><template/></stylesheet>").is_err());
    }
}
