/root/repo/target/debug/deps/fig2_fsm-b1163837d0f7d1c7.d: crates/soc-bench/src/bin/fig2_fsm.rs

/root/repo/target/debug/deps/fig2_fsm-b1163837d0f7d1c7: crates/soc-bench/src/bin/fig2_fsm.rs

crates/soc-bench/src/bin/fig2_fsm.rs:
