//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface
//! this workspace's benches use: [`Criterion`] with `sample_size` /
//! `measurement_time` / `warm_up_time` builders, [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. No statistics
//! beyond mean/min/max per sample batch, no HTML reports — results are
//! printed one line per benchmark.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier `function_name/parameter` for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id with no parameter part.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing configuration and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, &id.into().id, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, self.throughput, f);
        self
    }

    /// Run one benchmark that closes over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` performs the timing.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Mean nanoseconds per iteration over all samples.
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher<'_> {
    /// Time `routine`, repeating it until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses and estimate
        // the per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Size each sample so `sample_size` samples fill the budget.
        let budget_ns = self.cfg.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.cfg.sample_size as f64;
        let batch = ((per_sample_ns / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        let (mut min, mut max) = (f64::INFINITY, 0f64);
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            min = min.min(ns);
            max = max.max(ns);
            total_ns += ns * batch as f64;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters as f64;
        self.min_ns = min;
        self.max_ns = max;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{:.1} ns", ns)
    }
}

fn run_one(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { cfg, mean_ns: 0.0, min_ns: 0.0, max_ns: 0.0 };
    f(&mut b);
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let per_sec = n as f64 / (b.mean_ns / 1e9);
            format!("  thrpt: {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => {
            let per_sec = n as f64 / (b.mean_ns / 1e9);
            format!("  thrpt: {per_sec:.0} elem/s")
        }
    });
    println!(
        "{label:<48} time: [{} {} {}]{}",
        fmt_ns(b.min_ns),
        fmt_ns(b.mean_ns),
        fmt_ns(b.max_ns),
        rate.unwrap_or_default(),
    );
}

/// Define a bench group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum_100", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        targets = spin
    }

    #[test]
    fn harness_runs_and_measures() {
        benches();
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("direct", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
