//! Event primitives ("events and event coordination" from unit 2),
//! modeled after the .NET event types the course uses, but built from
//! a raw atomic + thread parking, *Rust Atomics and Locks* chapter 9
//! style.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A manually reset event: once [`set`](ManualResetEvent::set), every
/// current and future waiter passes until [`reset`](ManualResetEvent::reset).
///
/// State is a single atomic word; waiters register themselves in a
/// parked-thread list and re-check the word after every unpark (spurious
/// wakeup safe).
pub struct ManualResetEvent {
    /// 0 = unset, 1 = set.
    state: AtomicU32,
    waiters: Mutex<Vec<Thread>>,
}

impl ManualResetEvent {
    /// Create in the given state.
    pub fn new(set: bool) -> Self {
        ManualResetEvent { state: AtomicU32::new(set as u32), waiters: Mutex::new(Vec::new()) }
    }

    /// Is the event currently set?
    pub fn is_set(&self) -> bool {
        // Acquire pairs with the Release in `set`, so a waiter that sees
        // 1 also sees everything the setter wrote before setting.
        self.state.load(Ordering::Acquire) == 1
    }

    /// Set the event and wake all waiters.
    pub fn set(&self) {
        self.state.store(1, Ordering::Release);
        let waiters = std::mem::take(&mut *self.waiters.lock());
        for t in waiters {
            t.unpark();
        }
    }

    /// Clear the event.
    pub fn reset(&self) {
        self.state.store(0, Ordering::Release);
    }

    /// Block until the event is set.
    pub fn wait(&self) {
        loop {
            if self.is_set() {
                return;
            }
            // Register, then re-check to close the set-before-park race:
            // if `set` ran between our check and registration, it either
            // sees us in the list (unparks us) or we see state==1 below.
            self.waiters.lock().push(thread::current());
            if self.is_set() {
                return;
            }
            thread::park();
        }
    }

    /// Block until set or until `timeout` elapses; `true` when set.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_set() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.waiters.lock().push(thread::current());
            if self.is_set() {
                return true;
            }
            thread::park_timeout(deadline - now);
        }
    }
}

/// An auto-reset event: [`set`](AutoResetEvent::set) releases exactly one
/// waiter (or the next arriving one) and the event falls back to unset.
/// Equivalent to a binary semaphore that never exceeds one permit.
pub struct AutoResetEvent {
    /// Number of pending "releases", capped at 1.
    signals: Mutex<bool>,
    cond: parking_lot::Condvar,
}

impl AutoResetEvent {
    /// Create in the given state.
    pub fn new(set: bool) -> Self {
        AutoResetEvent { signals: Mutex::new(set), cond: parking_lot::Condvar::new() }
    }

    /// Release one waiter (the signal is *not* cumulative).
    pub fn set(&self) {
        let mut s = self.signals.lock();
        *s = true;
        drop(s);
        self.cond.notify_one();
    }

    /// Block until signaled; consumes the signal.
    pub fn wait(&self) {
        let mut s = self.signals.lock();
        while !*s {
            self.cond.wait(&mut s);
        }
        *s = false;
    }

    /// Wait with a timeout; `true` when signaled.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.signals.lock();
        while !*s {
            if self.cond.wait_until(&mut s, deadline).timed_out() {
                return false;
            }
        }
        *s = false;
        true
    }
}

/// A countdown event: starts at `n`, [`signal`](CountdownEvent::signal)
/// decrements, waiters pass when the count reaches zero. This is the
/// "latch" used for fork/join coordination in the thread pool.
pub struct CountdownEvent {
    remaining: AtomicUsize,
    done: ManualResetEvent,
}

impl CountdownEvent {
    /// Create with an initial count (0 means already signaled).
    pub fn new(count: usize) -> Self {
        CountdownEvent {
            remaining: AtomicUsize::new(count),
            done: ManualResetEvent::new(count == 0),
        }
    }

    /// Decrement; the final decrement wakes all waiters.
    /// Panics on underflow — that is always a caller bug worth surfacing.
    pub fn signal(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(prev != 0, "CountdownEvent signaled below zero");
        if prev == 1 {
            self.done.set();
        }
    }

    /// Add `n` more expected signals. Must not be called after the count
    /// has already reached zero (the event does not reset).
    pub fn add(&self, n: usize) {
        let prev = self.remaining.fetch_add(n, Ordering::AcqRel);
        assert!(prev != 0 || !self.done.is_set() || n == 0, "CountdownEvent::add after completion");
    }

    /// Current remaining count (racy; monitoring only).
    pub fn count(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Block until the count reaches zero.
    pub fn wait(&self) {
        self.done.wait();
    }

    /// Wait with timeout; `true` when completed.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        self.done.wait_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn manual_reset_releases_all_waiters() {
        let ev = Arc::new(ManualResetEvent::new(false));
        let released = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (ev, released) = (ev.clone(), released.clone());
            handles.push(thread::spawn(move || {
                ev.wait();
                released.fetch_add(1, Ordering::SeqCst);
            }));
        }
        thread::sleep(Duration::from_millis(10));
        assert_eq!(released.load(Ordering::SeqCst), 0);
        ev.set();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 4);
        // Still set: a late waiter passes immediately.
        ev.wait();
    }

    #[test]
    fn manual_reset_reset_blocks_again() {
        let ev = ManualResetEvent::new(true);
        ev.wait(); // passes
        ev.reset();
        assert!(!ev.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn auto_reset_releases_exactly_one() {
        let ev = Arc::new(AutoResetEvent::new(false));
        let passed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (ev, passed) = (ev.clone(), passed.clone());
            handles.push(thread::spawn(move || {
                if ev.wait_timeout(Duration::from_millis(200)) {
                    passed.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        thread::sleep(Duration::from_millis(20));
        ev.set(); // exactly one passes
        thread::sleep(Duration::from_millis(50));
        assert_eq!(passed.load(Ordering::SeqCst), 1);
        for h in handles {
            h.join().unwrap();
        }
        // The other two timed out: signal was not cumulative.
        assert_eq!(passed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn auto_reset_signal_before_wait_is_remembered_once() {
        let ev = AutoResetEvent::new(false);
        ev.set();
        ev.set(); // collapses into one pending signal
        ev.wait();
        assert!(!ev.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn countdown_completes_at_zero() {
        let cd = Arc::new(CountdownEvent::new(3));
        assert!(!cd.wait_timeout(Duration::from_millis(5)));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cd = cd.clone();
            handles.push(thread::spawn(move || cd.signal()));
        }
        cd.wait();
        assert_eq!(cd.count(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn countdown_zero_is_immediately_set() {
        CountdownEvent::new(0).wait();
    }

    #[test]
    #[should_panic(expected = "below zero")]
    fn countdown_underflow_panics() {
        let cd = CountdownEvent::new(1);
        cd.signal();
        cd.signal();
    }

    #[test]
    fn countdown_add_extends() {
        let cd = CountdownEvent::new(1);
        cd.add(1);
        cd.signal();
        assert!(!cd.wait_timeout(Duration::from_millis(5)));
        cd.signal();
        cd.wait();
    }
}
