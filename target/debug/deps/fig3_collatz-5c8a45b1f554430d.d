/root/repo/target/debug/deps/fig3_collatz-5c8a45b1f554430d.d: crates/soc-bench/src/bin/fig3_collatz.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_collatz-5c8a45b1f554430d.rmeta: crates/soc-bench/src/bin/fig3_collatz.rs Cargo.toml

crates/soc-bench/src/bin/fig3_collatz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
