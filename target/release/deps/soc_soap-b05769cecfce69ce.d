/root/repo/target/release/deps/soc_soap-b05769cecfce69ce.d: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

/root/repo/target/release/deps/libsoc_soap-b05769cecfce69ce.rlib: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

/root/repo/target/release/deps/libsoc_soap-b05769cecfce69ce.rmeta: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

crates/soc-soap/src/lib.rs:
crates/soc-soap/src/client.rs:
crates/soc-soap/src/contract.rs:
crates/soc-soap/src/envelope.rs:
crates/soc-soap/src/service.rs:
crates/soc-soap/src/wsdl.rs:
